//! Failure handling (Section II-E, last paragraph).
//!
//! When a task fails despite the offset, Sizey allocates the maximum amount
//! of memory ever observed for this (task type, machine) combination; every
//! further attempt doubles the allocation until the machine's resources are
//! exhausted (the replay engine clamps to the node capacity).

/// Computes the allocation for retry `attempt` (≥ 1) of a failed task.
///
/// * `max_observed_bytes` — the largest peak (or exhausted allocation) ever
///   recorded for this task type on this machine, if any.
/// * `failed_allocation_bytes` — the allocation of the attempt that just
///   failed; the retry never allocates less than this.
pub fn failure_allocation(
    max_observed_bytes: Option<f64>,
    failed_allocation_bytes: f64,
    attempt: u32,
) -> f64 {
    debug_assert!(attempt >= 1, "failure handling starts at attempt 1");
    let base = max_observed_bytes
        .unwrap_or(failed_allocation_bytes)
        .max(failed_allocation_bytes);
    base * 2.0_f64.powi(attempt.saturating_sub(1) as i32)
}

/// Like [`failure_allocation`], but clamped to the capacity of the largest
/// node in the cluster: no resource manager can grant more memory than its
/// biggest machine has, so doubling saturates at `node_capacity_bytes`.
///
/// The result is monotone non-decreasing in `attempt` (doubling grows the
/// unclamped value; the clamp is a constant ceiling) and never exceeds the
/// node capacity — both properties are load-bearing for the replay engine:
/// a retry that shrank or overshot the largest node would either loop
/// forever or request an unschedulable allocation.
pub fn failure_allocation_clamped(
    max_observed_bytes: Option<f64>,
    failed_allocation_bytes: f64,
    attempt: u32,
    node_capacity_bytes: f64,
) -> f64 {
    failure_allocation(max_observed_bytes, failed_allocation_bytes, attempt)
        .min(node_capacity_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_retry_uses_max_observed_when_larger() {
        assert_eq!(failure_allocation(Some(10e9), 4e9, 1), 10e9);
    }

    #[test]
    fn first_retry_never_shrinks_below_failed_allocation() {
        assert_eq!(failure_allocation(Some(2e9), 4e9, 1), 4e9);
        assert_eq!(failure_allocation(None, 4e9, 1), 4e9);
    }

    #[test]
    fn subsequent_retries_double() {
        assert_eq!(failure_allocation(Some(10e9), 4e9, 2), 20e9);
        assert_eq!(failure_allocation(Some(10e9), 4e9, 3), 40e9);
        assert_eq!(failure_allocation(None, 4e9, 4), 32e9);
    }

    // Regression: doubling at the node-capacity clamp boundary. An 80 GB base
    // on a 128 GB node doubles to 160 GB, which must saturate at the node
    // capacity rather than exceed it — and once saturated it must stay there
    // (monotone in `attempt`), not oscillate or shrink.
    #[test]
    fn clamped_doubling_saturates_at_node_capacity() {
        let cap = 128e9;
        assert_eq!(failure_allocation_clamped(Some(80e9), 40e9, 1, cap), 80e9);
        assert_eq!(failure_allocation_clamped(Some(80e9), 40e9, 2, cap), cap);
        assert_eq!(failure_allocation_clamped(Some(80e9), 40e9, 3, cap), cap);
    }

    #[test]
    fn clamped_retries_never_exceed_capacity_and_are_monotone() {
        let cap = 128e9;
        for &(max_obs, failed) in &[
            (Some(10e9), 4e9),
            (Some(127e9), 4e9),
            (Some(128e9), 128e9),
            (None, 64e9),
            (None, 1e9),
        ] {
            let mut prev = 0.0;
            for attempt in 1..=12u32 {
                let alloc = failure_allocation_clamped(max_obs, failed, attempt, cap);
                assert!(alloc <= cap, "attempt {attempt} exceeded the largest node");
                assert!(
                    alloc >= prev,
                    "attempt {attempt} shrank: {alloc} < {prev} (base {max_obs:?}/{failed})"
                );
                prev = alloc;
            }
        }
    }

    /// Fault-injection regression: a preempted/crash-killed attempt is
    /// requeued by the engines with an **unchanged** `AttemptContext`
    /// (attempt 0, no last allocation), so it must re-predict the same
    /// allocation — only a genuine OOM (attempt >= 1) enters the
    /// max-observed-then-double escalation this module implements.
    #[test]
    fn preemption_requeue_is_not_an_oom_escalation() {
        use crate::sizey::SizeyPredictor;
        use sizey_provenance::{MachineId, TaskTypeId};
        use sizey_sim::{AttemptContext, MemoryPredictor, TaskSubmission};

        let sizey = SizeyPredictor::with_defaults();
        let task = TaskSubmission {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: 2e9,
            preset_memory_bytes: 8e9,
        };
        let first = AttemptContext {
            attempt: 0,
            last_allocation_bytes: None,
        };
        let original = sizey.predict(&task, first).allocation_bytes;
        // The requeue after a fault kill: same context, same allocation.
        assert_eq!(sizey.predict(&task, first).allocation_bytes, original);
        // A real OOM retry escalates (never below the failed allocation) and
        // then doubles per further attempt.
        let oom_retry = |attempt: u32| {
            sizey
                .predict(
                    &task,
                    AttemptContext {
                        attempt,
                        last_allocation_bytes: Some(original),
                    },
                )
                .allocation_bytes
        };
        assert!(oom_retry(1) >= original);
        assert_eq!(oom_retry(2), 2.0 * oom_retry(1));
    }

    #[test]
    fn clamp_at_exact_boundary_is_stable() {
        // Base exactly at capacity: every retry allocates the full node.
        let cap = 128e9;
        for attempt in 1..=6u32 {
            assert_eq!(
                failure_allocation_clamped(Some(cap), cap, attempt, cap),
                cap
            );
        }
    }
}
