//! The Sizey predictor: the paper's method end to end, behind the split
//! read/write predictor API.
//!
//! For every submitted task, Sizey
//!
//! 1. looks up the provenance history of the (task type, machine)
//!    combination; unknown task types fall back to the user preset,
//! 2. lets every pool member produce an estimate, scores them with the RAQ
//!    score, and gates them into a single estimate (Argmax or Interpolation),
//! 3. adds a dynamically selected safety offset,
//! 4. on failure escalates to the maximum memory ever observed and then
//!    doubles,
//! 5. after every completed task updates its models online (incremental or
//!    full retrain).
//!
//! Steps 1–4 are the **read path**: [`SizeyPredictor`] implements
//! [`MemoryPredictor::predict`] on `&self`, so any number of threads can
//! size tasks concurrently (the concurrent serving layer in
//! [`crate::serve`] relies on this). Step 5 is the **write path**,
//! [`MemoryPredictor::observe`] on `&mut self` — the only place model state
//! changes. The predictor holds **no per-task retry state**: the allocation
//! a retry escalates from arrives in the engine-owned
//! [`AttemptContext`], which is what makes leaks
//! of in-flight bookkeeping structurally impossible (terminally failed
//! tasks used to strand an `inflight_allocations` entry forever).

// Serving threads size tasks through this module on every submission;
// the marker opts it into the no-panic-hot-path lint rule.
#![doc = "lint:hot-path"]

use crate::config::{OffsetMode, SizeyConfig};
use crate::failure::{failure_allocation, failure_allocation_clamped};
use crate::offset::{select_dynamic_offset_with, OffsetScratch, OffsetStrategy};
use crate::pool::{ModelPool, PoolScratch, RetrainJob, RetrainPolicy, RetrainedModels};
use sizey_provenance::{
    KeyQuery, KeyRef, ProvenanceStore, TaskMachineKey, TaskOutcome, TaskRecord,
};
use sizey_sim::{
    AttemptContext, CheckpointPredictor, MemoryPredictor, Prediction, PredictorState, StateError,
    TaskSubmission,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

thread_local! {
    /// Scratch buffers for the read path. `predict` is `&self` and may run
    /// on any number of threads concurrently, so the buffers are recycled
    /// per thread rather than per predictor; after the first prediction on a
    /// thread the steady-state predict path performs zero heap allocations
    /// (asserted by the counting-allocator harness behind
    /// `cargo xtask lint --dynamic`).
    static PREDICT_SCRATCH: RefCell<PoolScratch> = RefCell::new(PoolScratch::default());
}

/// The Sizey online memory predictor.
pub struct SizeyPredictor {
    config: SizeyConfig,
    // A BTreeMap, not HashMap: snapshot/install/drain paths iterate the
    // pools, and the deterministic-replay contract needs a stable,
    // platform-independent order (enforced by the no-hash-iter lint).
    pools: BTreeMap<TaskMachineKey, ModelPool>,
    /// Retrain policy applied to every pool (existing and future). Serial
    /// engines keep the default [`RetrainPolicy::Inline`]; the concurrent
    /// serving layer opts pools into deferred retrains so the training runs
    /// off the observe hot path.
    retrain_policy: RetrainPolicy,
    store: ProvenanceStore,
    /// Wall-clock time of every online-learning step (Fig. 9 telemetry).
    training_times: Vec<Duration>,
    /// How often each offset strategy was selected (diagnostics), indexed by
    /// position in [`OffsetStrategy::ALL`]. Atomic because the selection
    /// happens on the lock-free read path.
    offset_selections: [AtomicUsize; OffsetStrategy::ALL.len()],
    /// Cumulative queue delay reported by observed records, and the number of
    /// records carrying it — contention telemetry from the event-driven
    /// scheduler (a tenant whose tasks keep waiting is being starved by
    /// someone's over-allocation).
    queue_delay_total_seconds: f64,
    queue_delay_observations: usize,
}

/// Cloning deep-copies every pool (models included) and snapshots the
/// provenance store, producing an independent predictor whose `predict`
/// results are bit-identical to the original's at the moment of the clone.
/// This is what the serving layer publishes as an immutable snapshot for
/// lock-free reads: the clone shares nothing mutable with the original, so
/// readers of the clone can never observe a concurrent write. The
/// offset-selection diagnostics are carried over by value (the counters are
/// telemetry, not prediction inputs).
impl Clone for SizeyPredictor {
    fn clone(&self) -> Self {
        let offset_selections: [AtomicUsize; OffsetStrategy::ALL.len()] = Default::default();
        for (ours, theirs) in offset_selections.iter().zip(&self.offset_selections) {
            ours.store(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        SizeyPredictor {
            config: self.config.clone(),
            pools: self.pools.clone(),
            retrain_policy: self.retrain_policy,
            store: self.store.clone(),
            training_times: self.training_times.clone(),
            offset_selections,
            queue_delay_total_seconds: self.queue_delay_total_seconds,
            queue_delay_observations: self.queue_delay_observations,
        }
    }
}

impl std::fmt::Debug for SizeyPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SizeyPredictor")
            .field("pools", &self.pools.len())
            .field("records", &self.store.len())
            .field("config", &self.config)
            .finish()
    }
}

impl SizeyPredictor {
    /// Ceiling on the retained training-time telemetry when the predictor
    /// runs with a bounded [`SizeyConfig::history_window`] (trimmed
    /// amortised, like the training data).
    const TRAINING_TIMES_WINDOW: usize = 256;

    /// Creates a Sizey predictor with the given configuration.
    pub fn new(config: SizeyConfig) -> Self {
        // A bounded-history predictor also bounds its provenance store: the
        // store is snapshot/diagnostic state (predictions read the pools),
        // so retaining a recent window keeps memory O(window) while the
        // all-time per-key peaks the store tracks survive eviction.
        let store = match config.history_window {
            Some(window) => ProvenanceStore::with_retention(window.max(1)),
            None => ProvenanceStore::new(),
        };
        SizeyPredictor {
            config,
            pools: BTreeMap::new(),
            retrain_policy: RetrainPolicy::default(),
            store,
            training_times: Vec::new(),
            offset_selections: Default::default(),
            queue_delay_total_seconds: 0.0,
            queue_delay_observations: 0,
        }
    }

    /// Creates a Sizey predictor with the paper's default configuration
    /// (α = 0, Interpolation gating, dynamic offset, incremental updates).
    pub fn with_defaults() -> Self {
        SizeyPredictor::new(SizeyConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &SizeyConfig {
        &self.config
    }

    /// The internal provenance store (all observed records).
    pub fn provenance(&self) -> &ProvenanceStore {
        &self.store
    }

    /// Wall-clock durations of every online-learning step performed so far.
    pub fn training_times(&self) -> &[Duration] {
        &self.training_times
    }

    /// How often each offset strategy won the dynamic selection (strategies
    /// that never won are omitted).
    pub fn offset_selections(&self) -> BTreeMap<OffsetStrategy, usize> {
        OffsetStrategy::ALL
            .iter()
            .zip(&self.offset_selections)
            .filter_map(|(&strategy, count)| {
                let n = count.load(Ordering::Relaxed);
                (n > 0).then_some((strategy, n))
            })
            .collect()
    }

    /// Number of (task type, machine) pools instantiated so far.
    pub fn n_pools(&self) -> usize {
        self.pools.len()
    }

    /// Switches every pool (existing and future) between inline full
    /// retrains and deferred ones. With deferred retrains, `observe` only
    /// *stages* the periodic full retrain; the caller drains the staged work
    /// with [`drain_retrain_jobs`](SizeyPredictor::drain_retrain_jobs),
    /// executes it off the hot path and commits results via
    /// [`install_retrain`](SizeyPredictor::install_retrain). Predictions
    /// keep serving the previous models until the install.
    pub fn set_deferred_retrains(&mut self, deferred: bool) {
        self.retrain_policy = if deferred {
            RetrainPolicy::Deferred
        } else {
            RetrainPolicy::Inline
        };
        for pool in self.pools.values_mut() {
            pool.set_retrain_policy(self.retrain_policy);
        }
    }

    /// Drains every staged retrain into executable jobs, key-sorted for
    /// deterministic execution order.
    pub fn drain_retrain_jobs(&mut self) -> Vec<(TaskMachineKey, RetrainJob)> {
        let mut jobs: Vec<(TaskMachineKey, RetrainJob)> = Vec::new();
        for (key, pool) in &mut self.pools {
            if let Some(job) = pool.take_retrain_job(&self.config) {
                jobs.push((key.clone(), job));
            }
        }
        jobs.sort_by(|(a, _), (b, _)| a.cmp(b));
        jobs
    }

    /// Like [`drain_retrain_jobs`](SizeyPredictor::drain_retrain_jobs) but
    /// takes at most `cap` staged jobs, key-sorted so the selection is
    /// deterministic. Pools whose jobs were not taken keep their staged
    /// request for a later drain — this is how the serving layer bounds the
    /// retrain work attributed to a single observe batch instead of letting
    /// one unlucky batch absorb every pool's periodic retrain at once (the
    /// observe p99 tail). `cap == usize::MAX` is equivalent to the uncapped
    /// drain.
    pub fn drain_retrain_jobs_capped(&mut self, cap: usize) -> Vec<(TaskMachineKey, RetrainJob)> {
        let mut jobs: Vec<(TaskMachineKey, RetrainJob)> = Vec::new();
        // BTreeMap iteration is already key-sorted, so taking the first `cap`
        // staged jobs in iteration order is the deterministic selection.
        for (key, pool) in &mut self.pools {
            if jobs.len() >= cap {
                break;
            }
            if let Some(job) = pool.take_retrain_job(&self.config) {
                jobs.push((key.clone(), job));
            }
        }
        jobs
    }

    /// Number of pools with a staged-but-not-yet-drained retrain — the
    /// backlog a capped drain left behind (retrain-stall telemetry).
    pub fn pending_retrains(&self) -> usize {
        self.pools
            .values()
            .filter(|pool| pool.has_pending_retrain())
            .count()
    }

    /// Total full retrains that have landed across all pools (each pool's
    /// model epoch counts its installed or inline full retrains).
    pub fn total_full_retrains(&self) -> u64 {
        self.pools.values().map(|pool| pool.model_epoch()).sum()
    }

    /// Commits the models trained by a drained [`RetrainJob`]. Returns
    /// `false` when the pool no longer exists or already retrained past the
    /// job's epoch (the stale result is discarded).
    pub fn install_retrain(&mut self, key: &TaskMachineKey, trained: RetrainedModels) -> bool {
        self.pools
            .get_mut(key)
            .is_some_and(|pool| pool.install_retrain(trained))
    }

    /// Per-pool completions since the last full retrain (diagnostics; also
    /// exercised by the lifecycle round-trip tests to pin the counter's
    /// snapshot/restore behaviour).
    pub fn since_full_retrain(&self) -> BTreeMap<TaskMachineKey, usize> {
        self.pools
            .iter()
            .map(|(key, pool)| (key.clone(), pool.since_full_retrain()))
            .collect()
    }

    /// Cumulative queue delay (seconds) across all observed attempts — the
    /// contention this predictor's tasks experienced in the cluster queue.
    pub fn total_queue_delay_seconds(&self) -> f64 {
        self.queue_delay_total_seconds
    }

    /// Mean queue delay per observed attempt in seconds (zero before any
    /// observation).
    pub fn mean_queue_delay_seconds(&self) -> f64 {
        if self.queue_delay_observations == 0 {
            0.0
        } else {
            self.queue_delay_total_seconds / self.queue_delay_observations as f64
        }
    }

    /// Looks the task's pool up without cloning the two key `String`s: the
    /// `BTreeMap` is probed through the [`KeyQuery`] borrowed-key view.
    fn pool_for(&self, task: &TaskSubmission) -> Option<&ModelPool> {
        let probe = KeyRef {
            task_type: task.task_type.as_str(),
            machine: task.machine.as_str(),
        };
        self.pools.get(&probe as &dyn KeyQuery)
    }

    /// Computes the offset for the given pool's current state. Read-path
    /// method: the selection diagnostics are the only thing written, through
    /// an atomic. The offset window
    /// ([`crate::pool::OFFSET_HISTORY_WINDOW`]) is borrowed straight from
    /// the pool's aggregate history — no per-predict copy of the window.
    fn offset_for(&self, pool: &ModelPool, scratch: &mut OffsetScratch) -> f64 {
        let h = pool.aggregate_history();
        // lint:allow(no-panic-hot-path): the range start is
        // saturating_sub-clamped to at most h.len(), so the window slice
        // cannot be out of bounds for any history length.
        let history = &h[h.len().saturating_sub(crate::pool::OFFSET_HISTORY_WINDOW)..];
        if history.is_empty() {
            return 0.0;
        }
        match self.config.offset {
            OffsetMode::None => 0.0,
            OffsetMode::Fixed(strategy) => strategy.offset_with(history, scratch),
            OffsetMode::Dynamic => {
                let (strategy, offset) = select_dynamic_offset_with(history, scratch);
                // `select_dynamic_offset_with` only returns candidates drawn
                // from `OffsetStrategy::ALL`, so the lookup always succeeds;
                // the telemetry is best-effort either way, so a (impossible)
                // miss skips the tally instead of panicking the hot path.
                if let Some(idx) = OffsetStrategy::ALL.iter().position(|s| *s == strategy) {
                    // lint:allow(no-panic-hot-path): idx comes from
                    // position() over ALL, and the counter array is sized
                    // ALL.len() — always in bounds.
                    self.offset_selections[idx].fetch_add(1, Ordering::Relaxed);
                }
                offset
            }
        }
    }
}

impl MemoryPredictor for SizeyPredictor {
    fn name(&self) -> String {
        "Sizey".to_string()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        if ctx.attempt > 0 {
            // Failure handling: maximum ever observed, then doubling —
            // saturating at the largest node when the capacity is known. The
            // failed attempt's allocation is engine-owned state handed in
            // through the context; with no record of it, escalation starts
            // from the user preset.
            let last = ctx
                .last_allocation_bytes
                .unwrap_or(task.preset_memory_bytes);
            let max_observed = self.pool_for(task).and_then(ModelPool::max_observed);
            let allocation = match self.config.node_capacity_bytes {
                Some(capacity) => {
                    failure_allocation_clamped(max_observed, last, ctx.attempt, capacity)
                }
                None => failure_allocation(max_observed, last, ctx.attempt),
            };
            return Prediction {
                allocation_bytes: allocation,
                raw_estimate_bytes: None,
                selected_model: None,
            };
        }

        // One pool lookup serves the whole first-attempt path; the feature
        // vector lives on the stack (same single value
        // `TaskSubmission::features` would box).
        let Some(pool) = self.pool_for(task) else {
            // Unknown task type: submit with the user-provided, usually
            // conservative estimate.
            return Prediction {
                allocation_bytes: task.preset_memory_bytes,
                raw_estimate_bytes: None,
                selected_model: None,
            };
        };
        let features = [task.input_bytes];
        PREDICT_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            match pool.gated_estimate_with(&features, &self.config, scratch) {
                None => {
                    // Not enough history yet: fall back to the preset.
                    Prediction {
                        allocation_bytes: task.preset_memory_bytes,
                        raw_estimate_bytes: None,
                        selected_model: None,
                    }
                }
                Some(gating) => {
                    let offset = self.offset_for(pool, &mut scratch.offset);
                    let mut allocation = (gating.estimate + offset).max(0.0);
                    // Cold-start guard: while the offset histories are still
                    // too short to be trustworthy, keep a relative head-room
                    // above the raw estimate. A failure of a large,
                    // long-running task costs far more than a few percent of
                    // temporary over-allocation, and the regular offsets
                    // take over once enough history exists.
                    // `OffsetMode::None` promises the raw estimate
                    // untouched, so the guard only applies when an offset
                    // policy is active.
                    if self.config.offset != OffsetMode::None
                        && pool.n_observations() < self.config.cold_start_observations
                    {
                        allocation = allocation.max(gating.estimate * 1.15);
                    }
                    Prediction {
                        allocation_bytes: allocation,
                        raw_estimate_bytes: Some(gating.estimate),
                        selected_model: Some(gating.dominant.name()),
                    }
                }
            }
        })
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.store.insert(record.clone());
        self.queue_delay_total_seconds += record.queue_delay_seconds.max(0.0);
        self.queue_delay_observations += 1;
        let key = record.key();
        let policy = self.retrain_policy;
        let pool = self.pools.entry(key).or_insert_with(|| {
            let mut pool = ModelPool::new(&self.config);
            pool.set_retrain_policy(policy);
            pool
        });

        match record.outcome {
            TaskOutcome::Succeeded => {
                let duration = pool.observe_success(
                    &record.features(),
                    record.peak_memory_bytes,
                    &self.config,
                );
                self.training_times.push(duration);
                if self.config.history_window.is_some()
                    && self.training_times.len() >= 2 * Self::TRAINING_TIMES_WINDOW
                {
                    let excess = self.training_times.len() - Self::TRAINING_TIMES_WINDOW;
                    self.training_times.drain(..excess);
                }
            }
            TaskOutcome::FailedOutOfMemory => {
                // The exhausted allocation is a lower bound on the true peak.
                pool.observe_failure(record.allocated_memory_bytes, &self.config);
            }
        }
    }
}

/// Counter-name prefix under which the offset-selection diagnostics are
/// carried in a [`PredictorState`] (one counter per
/// [`OffsetStrategy`], suffixed with the strategy's
/// [`name`](OffsetStrategy::name)).
const OFFSET_COUNTER_PREFIX: &str = "offset-selected.";

/// Event-sourced snapshot/restore: Sizey's learned state — model pools,
/// offset histories, provenance, queue-delay telemetry — is a deterministic
/// function of the observation stream (the stochastic pool members are
/// seeded from [`SizeyConfig::seed`]), so the snapshot is the provenance
/// store's record journal plus the predict-path offset-selection counters.
/// Restoring replays the journal through [`MemoryPredictor::observe`] on a
/// freshly built predictor with the *same configuration*, which reconstructs
/// every pool bit for bit; per-step wall-clock training times are
/// re-measured during the replay rather than carried over.
impl CheckpointPredictor for SizeyPredictor {
    fn snapshot(&self) -> PredictorState {
        // The journal *shares* the store's records (satellite fix for the
        // observe/snapshot double clone): `observe` deep-clones each record
        // exactly once into the store's `Arc`, and a snapshot only bumps
        // reference counts.
        let journal = self.store.all_records();
        let mut counters: Vec<(String, u64)> = OffsetStrategy::ALL
            .iter()
            .zip(&self.offset_selections)
            .filter_map(|(strategy, count)| {
                let n = count.load(Ordering::Relaxed) as u64;
                (n > 0).then(|| (format!("{OFFSET_COUNTER_PREFIX}{}", strategy.name()), n))
            })
            .collect();
        // Name-sorted, matching the `PredictorState` contract — and the
        // order `ServiceCheckpoint::merged` produces, so a snapshot of a
        // restored merged state compares equal to the merged state.
        counters.sort();
        PredictorState { journal, counters }
    }

    fn restore(&mut self, state: &PredictorState) -> Result<(), StateError> {
        if !self.store.is_empty() {
            return Err(StateError::NotFresh {
                observed: self.store.len(),
            });
        }
        for record in &state.journal {
            self.observe(record);
        }
        for (name, value) in &state.counters {
            let idx = name
                .strip_prefix(OFFSET_COUNTER_PREFIX)
                .and_then(|n| OffsetStrategy::ALL.iter().position(|s| s.name() == n))
                .ok_or_else(|| StateError::UnknownCounter { name: name.clone() })?;
            // lint:allow(no-panic-hot-path): idx comes from position() over
            // ALL, and the counter array is sized ALL.len() — in bounds.
            self.offset_selections[idx].store(*value as usize, Ordering::Relaxed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GatingStrategy;
    use sizey_provenance::{MachineId, TaskTypeId};

    fn submission(seq: u64, input: f64) -> TaskSubmission {
        TaskSubmission {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: input,
            preset_memory_bytes: 20e9,
        }
    }

    fn success(seq: u64, input: f64, peak: f64) -> TaskRecord {
        TaskRecord {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: input,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 1.5,
            runtime_seconds: 60.0,
            concurrent_tasks: 1,
            queue_delay_seconds: 0.0,
            outcome: TaskOutcome::Succeeded,
        }
    }

    /// Teaches the predictor a clean linear relationship peak = 2·input + 1 GB.
    fn train(p: &mut SizeyPredictor, n: u64) {
        for i in 1..=n {
            let input = i as f64 * 1e9;
            p.observe(&success(i, input, 2.0 * input + 1e9));
        }
    }

    #[test]
    fn retry_escalation_saturates_at_the_configured_node_capacity() {
        let cfg = SizeyConfig {
            node_capacity_bytes: Some(32e9),
            ..SizeyConfig::default()
        };
        let p = SizeyPredictor::new(cfg);
        // No history and no engine context: escalation starts from the 20 GB
        // preset. Doubling would reach 40/80 GB on attempts 2/3; the clamp
        // holds it at 32 GB. The engine feeds each granted allocation back
        // through the context.
        let task = submission(0, 1e9);
        let a1 = p
            .predict(&task, AttemptContext::retry(1, 20e9))
            .allocation_bytes;
        assert_eq!(a1, 20e9);
        let a2 = p
            .predict(&task, AttemptContext::retry(2, a1))
            .allocation_bytes;
        assert_eq!(a2, 32e9);
        let a3 = p
            .predict(&task, AttemptContext::retry(3, a2))
            .allocation_bytes;
        assert_eq!(a3, 32e9);
        // A retry without a recorded previous allocation falls back to the
        // preset as the escalation base.
        let ctx = AttemptContext {
            attempt: 1,
            last_allocation_bytes: None,
        };
        assert_eq!(p.predict(&task, ctx).allocation_bytes, 20e9);
        // Without a configured capacity the escalation is unbounded.
        let unclamped = SizeyPredictor::with_defaults();
        assert_eq!(
            unclamped
                .predict(&task, AttemptContext::retry(2, 20e9))
                .allocation_bytes,
            40e9
        );
    }

    #[test]
    fn unknown_task_type_uses_preset() {
        let p = SizeyPredictor::with_defaults();
        let pred = p.predict(&submission(0, 1e9), AttemptContext::first());
        assert_eq!(pred.allocation_bytes, 20e9);
        assert!(pred.raw_estimate_bytes.is_none());
        assert!(pred.selected_model.is_none());
    }

    #[test]
    fn learns_and_beats_the_preset() {
        let mut p = SizeyPredictor::with_defaults();
        train(&mut p, 15);
        let pred = p.predict(&submission(100, 5e9), AttemptContext::first());
        let truth = 11e9;
        assert!(pred.raw_estimate_bytes.is_some());
        assert!(
            pred.allocation_bytes < 20e9,
            "learned allocation {} should beat the 20 GB preset",
            pred.allocation_bytes
        );
        assert!(
            pred.allocation_bytes >= truth * 0.6,
            "allocation {} suspiciously below the true peak {}",
            pred.allocation_bytes,
            truth
        );
        assert!(pred.selected_model.is_some());
    }

    #[test]
    fn drift_policy_adapts_faster_after_a_regime_change() {
        use crate::config::DriftPolicy;
        let mut adaptive = SizeyPredictor::new(SizeyConfig::default().with_drift_policy(
            DriftPolicy::Retrain {
                window: 8,
                threshold: 0.6,
                keep_recent: 20,
            },
        ));
        let mut frozen = SizeyPredictor::with_defaults();
        // Regime A: peak = 2·input + 1 GB over inputs 1..=15 GB.
        train(&mut adaptive, 15);
        train(&mut frozen, 15);
        // Regime B: the same input range suddenly needs 6·input + 9 GB.
        let mut seq = 16;
        for round in 0..2 {
            for i in 1..=15u64 {
                let input = i as f64 * 1e9;
                let record = success(seq + round * 15 + i, input, 6.0 * input + 9e9);
                adaptive.observe(&record);
                frozen.observe(&record);
            }
        }
        seq += 31;
        let query = submission(seq, 8e9);
        let truth = 6.0 * 8e9 + 9e9;
        let a = adaptive.predict(&query, AttemptContext::first());
        let f = frozen.predict(&query, AttemptContext::first());
        let a_raw = a.raw_estimate_bytes.unwrap();
        let f_raw = f.raw_estimate_bytes.unwrap();
        assert!(
            a_raw > f_raw,
            "the drift-aware predictor ({a_raw:.3e}) should sit above the frozen one \
             ({f_raw:.3e}) after the regime change"
        );
        assert!(
            a_raw >= 0.75 * truth,
            "drift-aware raw estimate {a_raw:.3e} still far below the new-regime truth {truth:.3e}"
        );
    }

    #[test]
    fn offset_makes_allocation_at_least_the_raw_estimate() {
        let mut p = SizeyPredictor::with_defaults();
        train(&mut p, 20);
        let pred = p.predict(&submission(200, 7e9), AttemptContext::first());
        let raw = pred.raw_estimate_bytes.unwrap();
        assert!(pred.allocation_bytes >= raw);
    }

    #[test]
    fn failure_handling_escalates_to_max_observed_then_doubles() {
        let mut p = SizeyPredictor::with_defaults();
        train(&mut p, 10);
        // Max observed peak so far: 2*10 GB + 1 GB = 21 GB.
        let first_retry = p.predict(&submission(50, 3e9), AttemptContext::retry(1, 20e9));
        assert!((first_retry.allocation_bytes - 21e9).abs() < 1e-3);
        let second_retry = p.predict(
            &submission(50, 3e9),
            AttemptContext::retry(2, first_retry.allocation_bytes),
        );
        assert!((second_retry.allocation_bytes - 42e9).abs() < 1e-3);
    }

    #[test]
    fn failed_attempts_raise_the_failure_baseline() {
        let mut p = SizeyPredictor::with_defaults();
        train(&mut p, 5);
        let mut failed = success(60, 3e9, 30e9);
        failed.outcome = TaskOutcome::FailedOutOfMemory;
        failed.allocated_memory_bytes = 30e9;
        p.observe(&failed);
        let retry = p.predict(&submission(61, 3e9), AttemptContext::retry(1, 20e9));
        assert!(retry.allocation_bytes >= 30e9);
    }

    #[test]
    fn argmax_configuration_reports_model_classes() {
        let cfg = SizeyConfig::default().with_gating(GatingStrategy::Argmax);
        let mut p = SizeyPredictor::new(cfg);
        train(&mut p, 12);
        let pred = p.predict(&submission(80, 4e9), AttemptContext::first());
        let model = pred.selected_model.unwrap();
        assert!(
            [
                "linear-regression",
                "knn-regression",
                "mlp-regression",
                "random-forest-regression"
            ]
            .contains(&model),
            "unexpected model name {model}"
        );
    }

    #[test]
    fn training_times_are_recorded_per_completion() {
        let mut p = SizeyPredictor::with_defaults();
        train(&mut p, 8);
        assert_eq!(p.training_times().len(), 8);
        assert_eq!(p.provenance().len(), 8);
        assert_eq!(p.n_pools(), 1);
    }

    #[test]
    fn dynamic_offset_selection_is_tracked() {
        let mut p = SizeyPredictor::with_defaults();
        train(&mut p, 15);
        let _ = p.predict(&submission(99, 3e9), AttemptContext::first());
        let total: usize = p.offset_selections().values().sum();
        assert!(total >= 1);
    }

    #[test]
    fn no_offset_mode_returns_raw_estimate() {
        let cfg = SizeyConfig {
            offset: OffsetMode::None,
            ..SizeyConfig::default()
        };
        let mut p = SizeyPredictor::new(cfg);
        train(&mut p, 10);
        let pred = p.predict(&submission(70, 6e9), AttemptContext::first());
        assert_eq!(pred.allocation_bytes, pred.raw_estimate_bytes.unwrap());
    }

    /// Satellite regression: the 1.15× cold-start head-room used to be
    /// applied even under `OffsetMode::None`, so a pool with fewer than
    /// `cold_start_observations` (default 10) observations violated the
    /// "raw estimate" contract. The old `no_offset_mode_returns_raw_estimate`
    /// test only passed because it trained exactly 10 tasks.
    #[test]
    fn no_offset_mode_returns_raw_estimate_during_cold_start() {
        let cfg = SizeyConfig {
            offset: OffsetMode::None,
            ..SizeyConfig::default()
        };
        assert_eq!(cfg.cold_start_observations, 10);
        let mut p = SizeyPredictor::new(cfg);
        // Fewer observations than the cold-start threshold, but enough for
        // the pool to produce a gated estimate.
        train(&mut p, 6);
        let pred = p.predict(&submission(70, 4e9), AttemptContext::first());
        let raw = pred.raw_estimate_bytes.expect("pool is warm enough");
        assert_eq!(
            pred.allocation_bytes, raw,
            "OffsetMode::None must return the raw estimate even before \
             cold_start_observations tasks have been observed"
        );
        // The guard still protects cold starts whenever offsets are active.
        let mut dynamic = SizeyPredictor::with_defaults();
        train(&mut dynamic, 6);
        let guarded = dynamic.predict(&submission(70, 4e9), AttemptContext::first());
        let raw = guarded.raw_estimate_bytes.unwrap();
        assert!(guarded.allocation_bytes >= raw * 1.15 - 1e-3);
    }

    /// Regression for the in-flight allocation leak: the predictor used to
    /// keep a per-task `inflight_allocations` entry that was only evicted on
    /// success, so every task that exhausted `max_attempts` leaked one entry
    /// forever. Retry state is engine-owned now — predict is `&self` and
    /// cannot retain anything — so a terminally failed task leaves no trace:
    /// a later retry of the same sequence number with no engine context
    /// escalates from the preset, never from a stale allocation.
    #[test]
    fn terminally_failed_tasks_leave_no_retry_state_behind() {
        let p = SizeyPredictor::with_defaults();
        let task = submission(7, 3e9);
        // Simulate an exhausted retry chain: escalating failures, none of
        // which succeed. Records carry the escalated allocations.
        let mut allocation = 20e9;
        for attempt in 1..=4u32 {
            allocation = p
                .predict(&task, AttemptContext::retry(attempt, allocation))
                .allocation_bytes;
        }
        assert!(allocation > 100e9, "escalation reached {allocation}");
        // The task is abandoned. A fresh task recycling sequence 7 with no
        // engine-recorded previous attempt starts from the preset, exactly
        // like a brand-new predictor — stale in-flight state cannot exist.
        let ctx = AttemptContext {
            attempt: 1,
            last_allocation_bytes: None,
        };
        let fresh = SizeyPredictor::with_defaults();
        assert_eq!(
            p.predict(&task, ctx).allocation_bytes,
            fresh.predict(&task, ctx).allocation_bytes
        );
        assert_eq!(p.predict(&task, ctx).allocation_bytes, 20e9);
    }

    /// Snapshot → restore reconstructs the learned state bit for bit: the
    /// restored predictor's decisions, provenance and diagnostics equal the
    /// uninterrupted original's, and its own snapshot equals the state it
    /// was restored from.
    #[test]
    fn snapshot_restore_round_trip_is_bit_identical() {
        let mut original = SizeyPredictor::with_defaults();
        train(&mut original, 18);
        let mut failed = success(60, 3e9, 30e9);
        failed.outcome = TaskOutcome::FailedOutOfMemory;
        failed.allocated_memory_bytes = 30e9;
        original.observe(&failed);
        // Exercise the predict path so the offset-selection counters are
        // non-trivial (they cannot be reproduced by replaying the journal).
        for seq in 100..110 {
            let _ = original.predict(&submission(seq, 4e9), AttemptContext::first());
        }
        let state = original.snapshot();
        assert_eq!(state.journal.len(), 19);
        assert!(!state.counters.is_empty());

        let mut restored = SizeyPredictor::with_defaults();
        restored.restore(&state).unwrap();
        for (seq, input) in [(200u64, 2.5e9), (201, 7e9), (202, 13.5e9)] {
            let task = submission(seq, input);
            assert_eq!(
                original.predict(&task, AttemptContext::first()),
                restored.predict(&task, AttemptContext::first()),
                "restored decision diverged for input {input}"
            );
            assert_eq!(
                original.predict(&task, AttemptContext::retry(1, 20e9)),
                restored.predict(&task, AttemptContext::retry(1, 20e9))
            );
        }
        assert_eq!(restored.provenance().len(), original.provenance().len());
        assert_eq!(restored.n_pools(), original.n_pools());
        // Counters were not inflated by the restore's own replay, and the
        // comparison predicts above advanced both sides in lockstep.
        assert_eq!(restored.snapshot().counters, original.snapshot().counters);
    }

    #[test]
    fn restore_rejects_non_fresh_targets_and_foreign_counters() {
        let mut original = SizeyPredictor::with_defaults();
        train(&mut original, 5);
        let state = original.snapshot();
        assert!(matches!(
            original.restore(&state),
            Err(StateError::NotFresh { observed: 5 })
        ));
        let mut fresh = SizeyPredictor::with_defaults();
        let foreign = PredictorState {
            journal: Vec::new(),
            counters: vec![("not-a-sizey-counter".to_string(), 1)],
        };
        assert!(matches!(
            fresh.restore(&foreign),
            Err(StateError::UnknownCounter { .. })
        ));
    }

    /// The read path is `&self` and the predictor is `Sync`: concurrent
    /// predictions between observes are safe by construction.
    #[test]
    fn predictor_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<SizeyPredictor>();
    }

    /// The bounded-history mode behind million-task streaming replays:
    /// provenance, training telemetry and (via the pools) training data all
    /// stay bounded while the predictor keeps learning from the recent
    /// window.
    #[test]
    fn bounded_history_window_keeps_predictor_state_bounded() {
        let cfg = SizeyConfig::default().with_history_window(32);
        let mut p = SizeyPredictor::new(cfg);
        for i in 1..=700u64 {
            let input = (i % 40 + 1) as f64 * 1e9;
            p.observe(&success(i, input, 2.0 * input + 1e9));
        }
        assert!(p.provenance().len() <= 32, "store {}", p.provenance().len());
        assert_eq!(p.provenance().total_inserted(), 700);
        assert!(
            p.training_times().len() < 2 * SizeyPredictor::TRAINING_TIMES_WINDOW,
            "telemetry {}",
            p.training_times().len()
        );
        // Still predicting sensibly from the retained window.
        let pred = p.predict(&submission(1000, 5e9), AttemptContext::first());
        assert!(pred.raw_estimate_bytes.is_some());
        assert!(
            pred.allocation_bytes < 20e9,
            "learned allocation {} should beat the 20 GB preset",
            pred.allocation_bytes
        );
    }

    #[test]
    fn separate_machines_get_separate_pools() {
        let mut p = SizeyPredictor::with_defaults();
        train(&mut p, 5);
        let mut other = success(200, 1e9, 3e9);
        other.machine = MachineId::new("other-machine");
        p.observe(&other);
        assert_eq!(p.n_pools(), 2);
    }
}
