//! Feature scaling utilities.
//!
//! The MLP and k-NN models are sensitive to the absolute magnitude of the
//! inputs (peak memory in bytes spans nine orders of magnitude), so both are
//! trained on scaled features and targets.

/// Scaling strategy applied to each feature column (and optionally the target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalerKind {
    /// Scale each column to zero mean and unit variance.
    Standard,
    /// Scale each column into the `[0, 1]` interval.
    MinMax,
    /// Leave values untouched.
    Identity,
}

/// Per-column affine transform `x -> (x - shift) / scale` fitted on training
/// data and applied to training and query points alike.
///
/// Besides the batch [`fit`](Scaler::fit) entry points, the scaler carries
/// per-column **running statistics** (count, Welford mean/M2, min/max) so a
/// single new observation can update the parameters in O(columns) via
/// [`observe_row`](Scaler::observe_row) — no pass over the history. For
/// [`ScalerKind::MinMax`] the incremental parameters are **bit-identical**
/// to a batch fit on the same rows (the min/max fold is order-exact); for
/// [`ScalerKind::Standard`] the Welford variance is bounded-divergent from
/// the batch two-pass variance (the workspace proptests pin both claims).
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    kind: ScalerKind,
    shift: Vec<f64>,
    scale: Vec<f64>,
    fitted: bool,
    /// Rows folded into the running statistics below.
    count: usize,
    /// Welford running mean per column.
    mean: Vec<f64>,
    /// Welford running sum of squared deviations per column.
    m2: Vec<f64>,
    /// Running minimum per column.
    lo: Vec<f64>,
    /// Running maximum per column.
    hi: Vec<f64>,
}

impl Scaler {
    /// Creates an unfitted scaler of the given kind.
    pub fn new(kind: ScalerKind) -> Self {
        Scaler {
            kind,
            shift: Vec::new(),
            scale: Vec::new(),
            fitted: false,
            count: 0,
            mean: Vec::new(),
            m2: Vec::new(),
            lo: Vec::new(),
            hi: Vec::new(),
        }
    }

    /// The per-column shifts of the fitted transform (empty before fitting).
    pub fn shift(&self) -> &[f64] {
        &self.shift
    }

    /// The per-column scales of the fitted transform (empty before fitting).
    pub fn scale(&self) -> &[f64] {
        &self.scale
    }

    /// Number of rows folded into the running statistics.
    pub fn n_rows(&self) -> usize {
        self.count
    }

    /// The scaler kind.
    pub fn kind(&self) -> ScalerKind {
        self.kind
    }

    /// True once [`Scaler::fit`] has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Fits the per-column parameters on a set of feature rows.
    pub fn fit(&mut self, rows: &[Vec<f64>]) {
        let n_cols = rows.first().map_or(0, Vec::len);
        self.fit_columns(n_cols, rows.len(), || rows.iter().map(Vec::as_slice));
    }

    /// Fits the per-column parameters on a flattened row-major buffer of
    /// `n_cols`-wide rows — the allocation-free path used by models that
    /// keep flat feature buffers. Bit-identical to [`Scaler::fit`] on the
    /// same rows: both feed the shared per-column kernel in row order.
    /// The buffer length must be a whole number of rows: a trailing partial
    /// row would otherwise be silently dropped by the integer division,
    /// fitting on fewer rows than the caller passed (debug-asserted).
    pub fn fit_flat(&mut self, data: &[f64], n_cols: usize) {
        debug_assert!(
            n_cols == 0 || data.len().is_multiple_of(n_cols),
            "fit_flat buffer of {} values is not a whole number of {}-wide rows",
            data.len(),
            n_cols
        );
        let n_rows = data.len().checked_div(n_cols).unwrap_or(0);
        self.fit_columns(n_cols, n_rows, || data.chunks_exact(n_cols));
    }

    /// The single implementation of the column statistics, shared by the
    /// row-based and flat fit entry points. `make_rows` yields the feature
    /// rows in order and is re-invoked per pass, so neither caller has to
    /// materialise an intermediate copy of the data.
    fn fit_columns<'a, I: Iterator<Item = &'a [f64]>>(
        &mut self,
        n_cols: usize,
        n_rows: usize,
        make_rows: impl Fn() -> I,
    ) {
        self.shift = vec![0.0; n_cols];
        self.scale = vec![1.0; n_cols];
        // Rebuild the running statistics alongside the batch parameters so
        // later `observe_row` calls continue from exactly this data. One
        // extra pass — batch fits are off the hot path by design.
        self.count = n_rows;
        self.mean = vec![0.0; n_cols];
        self.m2 = vec![0.0; n_cols];
        self.lo = vec![f64::INFINITY; n_cols];
        self.hi = vec![f64::NEG_INFINITY; n_cols];
        for (r, row) in make_rows().enumerate() {
            for (c, &x) in row.iter().enumerate().take(n_cols) {
                let delta = x - self.mean[c];
                self.mean[c] += delta / (r + 1) as f64;
                self.m2[c] += delta * (x - self.mean[c]);
                self.lo[c] = self.lo[c].min(x);
                self.hi[c] = self.hi[c].max(x);
            }
        }
        if n_rows == 0 || n_cols == 0 {
            self.fitted = true;
            return;
        }
        match self.kind {
            ScalerKind::Identity => {}
            ScalerKind::Standard => {
                let n = n_rows as f64;
                for c in 0..n_cols {
                    let mean = make_rows().map(|r| r[c]).sum::<f64>() / n;
                    let var = make_rows()
                        .map(|r| (r[c] - mean) * (r[c] - mean))
                        .sum::<f64>()
                        / n;
                    let std = var.sqrt();
                    self.shift[c] = mean;
                    self.scale[c] = if std > 1e-12 { std } else { 1.0 };
                }
            }
            ScalerKind::MinMax => {
                for c in 0..n_cols {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for r in make_rows() {
                        lo = lo.min(r[c]);
                        hi = hi.max(r[c]);
                    }
                    let range = hi - lo;
                    self.shift[c] = lo;
                    self.scale[c] = if range > 1e-12 { range } else { 1.0 };
                }
            }
        }
        self.fitted = true;
    }

    /// Folds one feature row into the running statistics and refreshes the
    /// affine parameters from them — the O(columns) incremental update used
    /// by the online-learning hot path.
    ///
    /// For [`ScalerKind::MinMax`] the resulting parameters are bit-identical
    /// to a batch [`fit`](Scaler::fit) on the same rows in the same order;
    /// for [`ScalerKind::Standard`] the Welford mean/variance is
    /// bounded-divergent from the batch two-pass statistics. A row of a
    /// different width than the current statistics resets them (treated as
    /// the first row of a fresh fit).
    pub fn observe_row(&mut self, row: &[f64]) {
        if self.mean.len() != row.len() {
            let n_cols = row.len();
            self.count = 0;
            self.mean = vec![0.0; n_cols];
            self.m2 = vec![0.0; n_cols];
            self.lo = vec![f64::INFINITY; n_cols];
            self.hi = vec![f64::NEG_INFINITY; n_cols];
        }
        self.count += 1;
        for (c, &x) in row.iter().enumerate() {
            let delta = x - self.mean[c];
            self.mean[c] += delta / self.count as f64;
            self.m2[c] += delta * (x - self.mean[c]);
            self.lo[c] = self.lo[c].min(x);
            self.hi[c] = self.hi[c].max(x);
        }
        self.refresh_params_from_stats();
    }

    /// Recomputes `shift`/`scale` from the running statistics.
    fn refresh_params_from_stats(&mut self) {
        let n_cols = self.mean.len();
        self.shift = vec![0.0; n_cols];
        self.scale = vec![1.0; n_cols];
        match self.kind {
            ScalerKind::Identity => {}
            ScalerKind::Standard => {
                for c in 0..n_cols {
                    let var = self.m2[c] / self.count.max(1) as f64;
                    let std = var.sqrt();
                    self.shift[c] = self.mean[c];
                    self.scale[c] = if std > 1e-12 { std } else { 1.0 };
                }
            }
            ScalerKind::MinMax => {
                for c in 0..n_cols {
                    let range = self.hi[c] - self.lo[c];
                    self.shift[c] = self.lo[c];
                    self.scale[c] = if range > 1e-12 { range } else { 1.0 };
                }
            }
        }
        self.fitted = true;
    }

    /// Largest relative per-column difference between this scaler's affine
    /// parameters and `frozen`'s, measured in units of the frozen scale —
    /// the staleness signal deciding when an amortised consumer (the k-NN
    /// buffer) must rescale its history against the live parameters.
    /// Returns `f64::INFINITY` when the column counts differ.
    pub fn param_drift(&self, frozen: &Scaler) -> f64 {
        if self.shift.len() != frozen.shift.len() {
            return f64::INFINITY;
        }
        let mut drift = 0.0f64;
        for c in 0..self.shift.len() {
            let unit = frozen.scale[c].abs().max(1e-300);
            drift = drift.max((self.shift[c] - frozen.shift[c]).abs() / unit);
            drift = drift.max((self.scale[c] - frozen.scale[c]).abs() / unit);
        }
        drift
    }

    /// Transforms a flattened row-major buffer into scaled space, writing
    /// into `out` (cleared and reused across refreshes). Values match
    /// [`Scaler::transform`] applied row by row.
    pub fn transform_flat_into(&self, data: &[f64], n_cols: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(data.len());
        if !self.fitted || self.kind == ScalerKind::Identity || n_cols == 0 {
            out.extend_from_slice(data);
            return;
        }
        for row in data.chunks_exact(n_cols) {
            for (c, &v) in row.iter().enumerate() {
                if c < self.shift.len() {
                    out.push((v - self.shift[c]) / self.scale[c]);
                } else {
                    out.push(v);
                }
            }
        }
    }

    /// Transforms one feature row into scaled space.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(row.len());
        self.transform_into(row, &mut out);
        out
    }

    /// Transforms one feature row into a caller-owned buffer (cleared
    /// first) — the allocation-free twin of [`Scaler::transform`], with
    /// identical arithmetic.
    pub fn transform_into(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        if !self.fitted || self.kind == ScalerKind::Identity {
            out.extend_from_slice(row);
            return;
        }
        out.extend(row.iter().enumerate().map(|(c, &v)| {
            if c < self.shift.len() {
                (v - self.shift[c]) / self.scale[c]
            } else {
                v
            }
        }));
    }

    /// Transforms a batch of rows.
    pub fn transform_batch(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Fits and immediately transforms the training rows.
    pub fn fit_transform(&mut self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.fit(rows);
        self.transform_batch(rows)
    }
}

/// Scalar target transform used so the MLP trains on values of magnitude ~1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetScaler {
    shift: f64,
    scale: f64,
    fitted: bool,
}

impl Default for TargetScaler {
    fn default() -> Self {
        TargetScaler {
            shift: 0.0,
            scale: 1.0,
            fitted: false,
        }
    }
}

impl TargetScaler {
    /// Creates an unfitted target scaler.
    pub fn new() -> Self {
        TargetScaler::default()
    }

    /// Fits a standard (mean / std) transform to the targets.
    pub fn fit(&mut self, targets: &[f64]) {
        if targets.is_empty() {
            self.shift = 0.0;
            self.scale = 1.0;
            self.fitted = true;
            return;
        }
        let n = targets.len() as f64;
        let mean = targets.iter().sum::<f64>() / n;
        let var = targets.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        self.shift = mean;
        self.scale = if std > 1e-12 { std } else { 1.0 };
        self.fitted = true;
    }

    /// True once fitted.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Maps a raw target to scaled space.
    pub fn transform(&self, y: f64) -> f64 {
        (y - self.shift) / self.scale
    }

    /// Maps a scaled prediction back to raw space.
    pub fn inverse(&self, y_scaled: f64) -> f64 {
        y_scaled * self.scale + self.shift
    }

    /// Transforms a batch of targets.
    pub fn transform_batch(&self, ys: &[f64]) -> Vec<f64> {
        ys.iter().map(|&y| self.transform(y)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_scaler_centres_and_scales() {
        let rows = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let mut s = Scaler::new(ScalerKind::Standard);
        let t = s.fit_transform(&rows);
        // Column means of the transformed data must be ~0.
        for c in 0..2 {
            let mean: f64 = t.iter().map(|r| r[c]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
        }
        // And variance ~1.
        for c in 0..2 {
            let var: f64 = t.iter().map(|r| r[c] * r[c]).sum::<f64>() / 3.0;
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn minmax_scaler_maps_to_unit_interval() {
        let rows = vec![vec![2.0], vec![4.0], vec![6.0]];
        let mut s = Scaler::new(ScalerKind::MinMax);
        let t = s.fit_transform(&rows);
        assert_eq!(t[0][0], 0.0);
        assert_eq!(t[2][0], 1.0);
        assert!((t[1][0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let rows = vec![vec![7.0], vec![7.0]];
        let mut s = Scaler::new(ScalerKind::Standard);
        let t = s.fit_transform(&rows);
        assert!(t.iter().all(|r| r[0].is_finite()));
        let mut m = Scaler::new(ScalerKind::MinMax);
        let t2 = m.fit_transform(&rows);
        assert!(t2.iter().all(|r| r[0].is_finite()));
    }

    #[test]
    fn identity_scaler_is_a_noop() {
        let rows = vec![vec![1.0, 2.0]];
        let mut s = Scaler::new(ScalerKind::Identity);
        let t = s.fit_transform(&rows);
        assert_eq!(t, rows);
    }

    #[test]
    fn unfitted_scaler_passes_through() {
        let s = Scaler::new(ScalerKind::Standard);
        assert_eq!(s.transform(&[5.0]), vec![5.0]);
        assert!(!s.is_fitted());
    }

    #[test]
    fn flat_fit_and_transform_match_the_row_based_path() {
        let rows = vec![
            vec![1.0, 100.0],
            vec![3.0, 250.0],
            vec![5.0, 500.0],
            vec![2.0, 50.0],
        ];
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        for kind in [
            ScalerKind::Standard,
            ScalerKind::MinMax,
            ScalerKind::Identity,
        ] {
            let mut by_rows = Scaler::new(kind);
            by_rows.fit(&rows);
            let mut by_flat = Scaler::new(kind);
            by_flat.fit_flat(&flat, 2);
            assert_eq!(by_rows, by_flat, "{kind:?} params diverged");
            let mut scaled_flat = Vec::new();
            by_flat.transform_flat_into(&flat, 2, &mut scaled_flat);
            let scaled_rows: Vec<f64> = by_rows
                .transform_batch(&rows)
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(scaled_flat, scaled_rows, "{kind:?} transform diverged");
        }
    }

    /// Satellite regression: `fit_flat` used to floor away a trailing
    /// partial row (`data.len().checked_div(n_cols)`), silently fitting on
    /// fewer rows than the caller passed. Non-multiple buffer lengths are a
    /// caller bug and are debug-asserted.
    #[test]
    #[should_panic(expected = "whole number of")]
    #[cfg(debug_assertions)]
    fn fit_flat_rejects_partial_trailing_rows() {
        let mut s = Scaler::new(ScalerKind::MinMax);
        // Five values cannot be rows of width two.
        s.fit_flat(&[1.0, 2.0, 3.0, 4.0, 5.0], 2);
    }

    #[test]
    fn incremental_minmax_params_are_bit_identical_to_batch() {
        let rows = vec![
            vec![3.0, -7.5e9],
            vec![1.0, 2.0e9],
            vec![4.0, 0.0],
            vec![1.5, 9.1e9],
        ];
        let mut batch = Scaler::new(ScalerKind::MinMax);
        batch.fit(&rows);
        let mut incremental = Scaler::new(ScalerKind::MinMax);
        for row in &rows {
            incremental.observe_row(row);
        }
        assert_eq!(batch.shift(), incremental.shift());
        assert_eq!(batch.scale(), incremental.scale());
        // Continuing incrementally from a batch prefix is also exact.
        let mut resumed = Scaler::new(ScalerKind::MinMax);
        resumed.fit(&rows[..2]);
        for row in &rows[2..] {
            resumed.observe_row(row);
        }
        assert_eq!(batch.shift(), resumed.shift());
        assert_eq!(batch.scale(), resumed.scale());
    }

    #[test]
    fn incremental_standard_params_track_batch_closely() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64 * 0.73).sin() * 1e9, i as f64])
            .collect();
        let mut batch = Scaler::new(ScalerKind::Standard);
        batch.fit(&rows);
        let mut incremental = Scaler::new(ScalerKind::Standard);
        for row in &rows {
            incremental.observe_row(row);
        }
        for c in 0..2 {
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
            assert!(rel(incremental.shift()[c], batch.shift()[c]) < 1e-9);
            assert!(rel(incremental.scale()[c], batch.scale()[c]) < 1e-9);
        }
    }

    #[test]
    fn param_drift_is_zero_for_identical_and_grows_with_range() {
        let rows = vec![vec![0.0], vec![10.0]];
        let mut a = Scaler::new(ScalerKind::MinMax);
        a.fit(&rows);
        let frozen = a.clone();
        assert_eq!(a.param_drift(&frozen), 0.0);
        // A new out-of-range row moves both min and the range.
        a.observe_row(&[20.0]);
        assert!(a.param_drift(&frozen) > 0.5);
        // Width mismatch is infinite drift.
        let wide = Scaler::new(ScalerKind::MinMax);
        assert_eq!(wide.param_drift(&frozen), f64::INFINITY);
    }

    #[test]
    fn target_scaler_round_trips() {
        let ys = [100.0, 200.0, 300.0, 400.0];
        let mut s = TargetScaler::new();
        s.fit(&ys);
        for &y in &ys {
            let back = s.inverse(s.transform(y));
            assert!((back - y).abs() < 1e-9);
        }
    }

    #[test]
    fn target_scaler_handles_constant_and_empty() {
        let mut s = TargetScaler::new();
        s.fit(&[5.0, 5.0]);
        assert!(s.transform(5.0).abs() < 1e-12);
        let mut e = TargetScaler::new();
        e.fit(&[]);
        assert_eq!(e.inverse(e.transform(3.0)), 3.0);
    }
}
