//! Random-forest regression.
//!
//! The paper includes a random forest in the model pool because ensembles of
//! decorrelated trees are robust to overfitting when only a few historical
//! task executions exist. Trees are trained on bootstrap resamples with
//! per-tree feature subsampling and are fitted in parallel.
//!
//! The incremental update ([`Regressor::partial_fit`]) appends the new
//! observations to the retained training set and refits only a rotating
//! subset of trees, which is the classic cheap approximation of online random
//! forests and is what gives the "Sizey-Incremental" variant its speed
//! advantage in Fig. 9.

use crate::dataset::Dataset;
use crate::model::{validate_query, validate_training_data, ModelClass, ModelError, Regressor};
use crate::parallel::{default_parallelism, parallel_map};
use crate::tree::{RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for [`RandomForestRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Fraction of features considered per split (1.0 = all features).
    pub max_features_fraction: f64,
    /// Fraction of trees refitted per observation fed to `partial_fit`.
    /// Fractional budgets are banked as credit across calls, so values below
    /// `1 / n_trees` refresh a tree only every few observations — this is
    /// what caps per-observe work on the hot path.
    pub incremental_refresh_fraction: f64,
    /// Trees refreshed by `partial_fit` bootstrap-resample only from the most
    /// recent `incremental_window` observations (`0` = full history). A full
    /// `fit` always trains on the complete dataset.
    pub incremental_window: usize,
    /// Seed for bootstrap resampling and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 32,
            max_depth: 10,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features_fraction: 1.0,
            incremental_refresh_fraction: 0.25,
            incremental_window: 512,
            seed: 42,
        }
    }
}

/// Random-forest regressor.
#[derive(Clone)]
pub struct RandomForestRegression {
    config: ForestConfig,
    trees: Vec<RegressionTree>,
    /// Retained training data so incremental updates and tree refreshes can
    /// resample from the full history.
    history: Dataset,
    n_features: usize,
    fitted: bool,
    /// Index of the next tree to refresh on an incremental update.
    refresh_cursor: usize,
    /// Banked fractional refresh budget; `partial_fit` refreshes
    /// `floor(credit)` trees and carries the remainder forward.
    refresh_credit: f64,
    /// Monotonic counter so each (re)fit uses fresh bootstrap seeds.
    fit_generation: u64,
}

impl std::fmt::Debug for RandomForestRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomForestRegression")
            .field("config", &self.config)
            .field("n_trees", &self.trees.len())
            .field("history_len", &self.history.len())
            .field("fitted", &self.fitted)
            .finish()
    }
}

impl RandomForestRegression {
    /// Creates an unfitted forest with the given configuration.
    pub fn new(config: ForestConfig) -> Self {
        RandomForestRegression {
            config,
            trees: Vec::new(),
            history: Dataset::new(),
            n_features: 0,
            fitted: false,
            refresh_cursor: 0,
            refresh_credit: 0.0,
            fit_generation: 0,
        }
    }

    /// Creates an unfitted forest with default configuration.
    pub fn with_defaults() -> Self {
        RandomForestRegression::new(ForestConfig::default())
    }

    /// The configuration used by this forest.
    pub fn config(&self) -> ForestConfig {
        self.config
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of retained training observations.
    pub fn n_observations(&self) -> usize {
        self.history.len()
    }

    fn tree_config(&self, n_features: usize) -> TreeConfig {
        let max_features = if self.config.max_features_fraction >= 1.0 {
            None
        } else {
            let k = ((n_features as f64) * self.config.max_features_fraction).ceil() as usize;
            Some(k.max(1))
        };
        TreeConfig {
            max_depth: self.config.max_depth,
            min_samples_split: self.config.min_samples_split,
            min_samples_leaf: self.config.min_samples_leaf,
            max_features,
        }
    }

    /// Trains a single tree on a bootstrap resample drawn with `seed`. The
    /// resample stays an index buffer into the retained history — the tree
    /// trains through [`RegressionTree::fit_with_indices`], so no per-tree
    /// copy of the dataset is materialised (the rng consumption and the
    /// resulting tree are bit-identical to the former subset-cloning path).
    fn train_tree(&self, seed: u64, window_start: usize) -> Result<RegressionTree, ModelError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.history.len();
        // The bootstrap draws only from `window_start..n`; a full fit passes
        // `window_start == 0`, which consumes the rng identically to the
        // pre-window implementation.
        let indices: Vec<usize> = (0..n - window_start)
            .map(|_| rng.gen_range(window_start..n))
            .collect();
        let mut tree = RegressionTree::new(self.tree_config(self.history.n_features()));
        let mut order: Vec<usize> = (0..self.history.n_features()).collect();
        order.shuffle(&mut rng);
        tree.set_feature_order(order);
        tree.fit_with_indices(&self.history, indices)?;
        Ok(tree)
    }

    fn fit_trees(&mut self, tree_indices: &[usize], window_start: usize) -> Result<(), ModelError> {
        let generation = self.fit_generation;
        let seeds: Vec<(usize, u64)> = tree_indices
            .iter()
            .map(|&i| {
                (
                    i,
                    self.config
                        .seed
                        .wrapping_add(generation.wrapping_mul(10_007))
                        .wrapping_add(i as u64 * 7919),
                )
            })
            .collect();
        let this = &*self;
        let results = parallel_map(&seeds, default_parallelism(), |&(_, seed)| {
            this.train_tree(seed, window_start)
        });
        let mut trained = Vec::with_capacity(results.len());
        for r in results {
            trained.push(r?);
        }
        if self.trees.len() != self.config.n_trees {
            self.trees =
                vec![RegressionTree::new(self.tree_config(self.n_features)); self.config.n_trees];
        }
        for ((i, _), tree) in seeds.iter().zip(trained) {
            self.trees[*i] = tree;
        }
        self.fit_generation += 1;
        Ok(())
    }
}

impl Regressor for RandomForestRegression {
    fn fit(&mut self, data: &Dataset) -> Result<(), ModelError> {
        validate_training_data(data)?;
        // Train the replacement ensemble into a staging forest before
        // touching any fitted state: a failed refit must leave the previous
        // model serving. The staging forest inherits this instance's seed
        // generation so a successful refit is bit-identical to the former
        // in-place path.
        let mut staged = RandomForestRegression::new(self.config);
        staged.history.clone_from(data);
        staged.n_features = data.n_features();
        staged.fit_generation = self.fit_generation;
        let all: Vec<usize> = (0..self.config.n_trees).collect();
        staged.fit_trees(&all, 0)?;
        self.history = staged.history;
        self.n_features = staged.n_features;
        self.trees = staged.trees;
        self.fit_generation = staged.fit_generation;
        self.fitted = true;
        self.refresh_cursor = 0;
        self.refresh_credit = 0.0;
        Ok(())
    }

    fn partial_fit(&mut self, data: &Dataset) -> Result<(), ModelError> {
        validate_training_data(data)?;
        if !self.fitted {
            return self.fit(data);
        }
        if data.n_features() != self.n_features {
            return Err(ModelError::FeatureMismatch {
                expected: self.n_features,
                got: data.n_features(),
            });
        }
        for (f, t) in data.iter() {
            self.history.push(f.to_vec(), t);
        }
        // Bank the per-observation refresh budget and spend whole trees; a
        // fraction below `1 / n_trees` therefore refreshes nothing on most
        // observes, keeping the hot path cheap.
        let earned = self.config.n_trees as f64
            * self.config.incremental_refresh_fraction
            * data.len() as f64;
        self.refresh_credit = (self.refresh_credit + earned).min(self.config.n_trees as f64);
        let refresh = (self.refresh_credit.floor() as usize).min(self.config.n_trees);
        if refresh == 0 {
            return Ok(());
        }
        self.refresh_credit -= refresh as f64;
        let indices: Vec<usize> = (0..refresh)
            .map(|i| (self.refresh_cursor + i) % self.config.n_trees)
            .collect();
        self.refresh_cursor = (self.refresh_cursor + refresh) % self.config.n_trees;
        let window_start = if self.config.incremental_window == 0 {
            0
        } else {
            self.history
                .len()
                .saturating_sub(self.config.incremental_window)
        };
        self.fit_trees(&indices, window_start)
    }

    fn predict(&self, features: &[f64]) -> Result<f64, ModelError> {
        if !self.fitted || self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        validate_query(features, self.n_features)?;
        let mut sum = 0.0;
        let mut count = 0usize;
        for tree in &self.trees {
            if tree.is_fitted() {
                sum += tree.predict(features)?;
                count += 1;
            }
        }
        if count == 0 {
            return Err(ModelError::NotFitted);
        }
        Ok(sum / count as f64)
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn class(&self) -> ModelClass {
        ModelClass::RandomForest
    }

    fn clone_box(&self) -> Box<dyn Regressor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_dataset(n: usize) -> Dataset {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < n as f64 / 2.0 { 100.0 } else { 500.0 })
            .collect();
        Dataset::from_univariate(&xs, &ys)
    }

    #[test]
    fn learns_step_function() {
        let data = step_dataset(60);
        let mut f = RandomForestRegression::new(ForestConfig {
            n_trees: 16,
            ..ForestConfig::default()
        });
        f.fit(&data).unwrap();
        assert!((f.predict(&[5.0]).unwrap() - 100.0).abs() < 40.0);
        assert!((f.predict(&[55.0]).unwrap() - 500.0).abs() < 40.0);
    }

    #[test]
    fn prediction_is_bounded_by_observed_targets() {
        let data = step_dataset(40);
        let mut f = RandomForestRegression::with_defaults();
        f.fit(&data).unwrap();
        let p = f.predict(&[1_000.0]).unwrap();
        assert!((100.0 - 1e-9..=500.0 + 1e-9).contains(&p));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = step_dataset(50);
        let cfg = ForestConfig {
            n_trees: 8,
            seed: 7,
            ..ForestConfig::default()
        };
        let mut a = RandomForestRegression::new(cfg);
        let mut b = RandomForestRegression::new(cfg);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        for x in [3.0, 20.0, 45.0] {
            assert_eq!(a.predict(&[x]).unwrap(), b.predict(&[x]).unwrap());
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let xs: Vec<f64> = (0..80).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| x * 3.0 + (x * 0.7).sin() * 10.0)
            .collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut a = RandomForestRegression::new(ForestConfig {
            seed: 1,
            n_trees: 4,
            ..ForestConfig::default()
        });
        let mut b = RandomForestRegression::new(ForestConfig {
            seed: 2,
            n_trees: 4,
            ..ForestConfig::default()
        });
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        let pa = a.predict(&[40.5]).unwrap();
        let pb = b.predict(&[40.5]).unwrap();
        assert!(
            (pa - pb).abs() > 1e-12,
            "bootstrap should differ across seeds"
        );
    }

    #[test]
    fn partial_fit_incorporates_new_observations() {
        let data = step_dataset(30);
        let mut f = RandomForestRegression::new(ForestConfig {
            n_trees: 8,
            incremental_refresh_fraction: 1.0,
            ..ForestConfig::default()
        });
        f.fit(&data).unwrap();
        // Teach it a new, much larger regime.
        let new = Dataset::from_univariate(&[100.0, 101.0, 102.0, 103.0], &[5_000.0; 4]);
        f.partial_fit(&new).unwrap();
        assert_eq!(f.n_observations(), 34);
        let p = f.predict(&[102.0]).unwrap();
        assert!(p > 500.0, "new regime should raise the prediction, got {p}");
    }

    #[test]
    fn partial_fit_refreshes_only_a_subset() {
        let data = step_dataset(30);
        let mut f = RandomForestRegression::new(ForestConfig {
            n_trees: 8,
            incremental_refresh_fraction: 0.25,
            ..ForestConfig::default()
        });
        f.fit(&data).unwrap();
        let new = Dataset::from_univariate(&[40.0], &[900.0]);
        f.partial_fit(&new).unwrap();
        assert_eq!(f.n_trees(), 8);
        assert_eq!(f.n_observations(), 31);
    }

    #[test]
    fn partial_fit_before_fit_acts_as_fit() {
        let mut f = RandomForestRegression::new(ForestConfig {
            n_trees: 4,
            ..ForestConfig::default()
        });
        f.partial_fit(&step_dataset(20)).unwrap();
        assert!(f.is_fitted());
    }

    #[test]
    fn errors_before_fit_and_on_bad_query() {
        let f = RandomForestRegression::with_defaults();
        assert!(matches!(f.predict(&[1.0]), Err(ModelError::NotFitted)));
        let mut fitted = RandomForestRegression::new(ForestConfig {
            n_trees: 2,
            ..ForestConfig::default()
        });
        fitted.fit(&step_dataset(10)).unwrap();
        assert!(matches!(
            fitted.predict(&[1.0, 2.0]),
            Err(ModelError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn fractional_refresh_credit_is_banked_across_observes() {
        let data = step_dataset(30);
        let cfg = ForestConfig {
            n_trees: 4,
            // 4 * 0.1 = 0.4 trees of credit per observation: the first two
            // observes refresh nothing, the third spends one tree.
            incremental_refresh_fraction: 0.1,
            ..ForestConfig::default()
        };
        let mut f = RandomForestRegression::new(cfg);
        f.fit(&data).unwrap();
        let baseline = f.predict(&[15.0]).unwrap();
        let row = |x: f64| Dataset::from_univariate(&[x], &[9_000.0]);
        f.partial_fit(&row(50.0)).unwrap();
        f.partial_fit(&row(51.0)).unwrap();
        assert_eq!(
            f.predict(&[15.0]).unwrap().to_bits(),
            baseline.to_bits(),
            "no tree should refresh before a whole credit accrues"
        );
        f.partial_fit(&row(52.0)).unwrap();
        assert!(
            f.predict(&[52.0]).unwrap() > 500.0,
            "the banked credit should eventually refresh a tree"
        );
    }

    #[test]
    fn windowed_refresh_trains_on_recent_history_only() {
        let data = step_dataset(20);
        let mut f = RandomForestRegression::new(ForestConfig {
            n_trees: 4,
            incremental_refresh_fraction: 1.0,
            incremental_window: 4,
            ..ForestConfig::default()
        });
        f.fit(&data).unwrap();
        // Saturate the window with a constant new regime: every refreshed
        // tree bootstraps only from rows whose target is exactly 7000.
        for i in 0..6 {
            let new = Dataset::from_univariate(&[100.0 + i as f64], &[7_000.0]);
            f.partial_fit(&new).unwrap();
        }
        assert_eq!(f.predict(&[3.0]).unwrap(), 7_000.0);
    }

    #[test]
    fn failed_refit_keeps_the_previous_forest_serving() {
        let data = step_dataset(30);
        let mut f = RandomForestRegression::new(ForestConfig {
            n_trees: 4,
            ..ForestConfig::default()
        });
        f.fit(&data).unwrap();
        let before = f.predict(&[10.0]).unwrap();
        assert!(f.fit(&Dataset::new()).is_err());
        assert!(f.is_fitted());
        assert_eq!(f.predict(&[10.0]).unwrap().to_bits(), before.to_bits());
        assert_eq!(f.n_observations(), 30);
    }

    #[test]
    fn feature_fraction_below_one_still_learns() {
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..60 {
            let x = i as f64;
            features.push(vec![x, (i % 5) as f64, (i % 3) as f64]);
            targets.push(if x < 30.0 { 10.0 } else { 90.0 });
        }
        let data = Dataset::from_parts(features, targets);
        let mut f = RandomForestRegression::new(ForestConfig {
            n_trees: 24,
            max_features_fraction: 0.4,
            ..ForestConfig::default()
        });
        f.fit(&data).unwrap();
        let low = f.predict(&[5.0, 1.0, 1.0]).unwrap();
        let high = f.predict(&[55.0, 1.0, 1.0]).unwrap();
        assert!(high > low + 30.0);
    }
}
