//! Multi-layer-perceptron regression.
//!
//! The MLP is the pool member that captures complex non-linear relationships
//! (e.g. memory that grows with the square of the input size, the
//! BaseRecalibrator example from the paper's introduction). The network is a
//! small fully connected net trained with mini-batch Adam on standardised
//! features and targets. `partial_fit` runs a few epochs over the new data
//! (warm start), which is what keeps the incremental Sizey variant fast.

use crate::dataset::Dataset;
use crate::model::{
    validate_query, validate_training_data, ModelClass, ModelError, PredictScratch, Regressor,
};
use crate::scaler::{Scaler, ScalerKind, TargetScaler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Activation function used in the hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    #[inline]
    fn forward(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    #[inline]
    fn derivative(&self, activated: f64) -> f64 {
        match self {
            Activation::Relu => {
                if activated > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - activated * activated,
        }
    }
}

/// Hyper-parameters for [`MlpRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Sizes of the hidden layers.
    pub hidden_layers: Vec<usize>,
    /// Hidden-layer activation.
    pub activation: Activation,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Maximum number of passes over the training data for a full fit.
    pub max_epochs: usize,
    /// Number of passes used by `partial_fit`.
    pub incremental_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Stop early when the training loss improves by less than this value
    /// for `patience` consecutive epochs.
    pub tolerance: f64,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// RNG seed for weight initialisation and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden_layers: vec![16, 16],
            activation: Activation::Relu,
            learning_rate: 0.01,
            weight_decay: 1e-4,
            max_epochs: 300,
            incremental_epochs: 30,
            batch_size: 16,
            tolerance: 1e-6,
            patience: 12,
            seed: 42,
        }
    }
}

/// One fully connected layer with Adam optimiser state.
#[derive(Debug, Clone)]
struct Layer {
    /// Row-major weights: `outputs x inputs`.
    weights: Vec<f64>,
    biases: Vec<f64>,
    inputs: usize,
    outputs: usize,
    // Adam moments.
    m_w: Vec<f64>,
    v_w: Vec<f64>,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // He-style initialisation keeps ReLU nets trainable.
        let scale = (2.0 / inputs.max(1) as f64).sqrt();
        let weights: Vec<f64> = (0..inputs * outputs)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            weights,
            biases: vec![0.0; outputs],
            inputs,
            outputs,
            m_w: vec![0.0; inputs * outputs],
            v_w: vec![0.0; inputs * outputs],
            m_b: vec![0.0; outputs],
            v_b: vec![0.0; outputs],
        }
    }

    fn forward(&self, input: &[f64], output: &mut Vec<f64>) {
        output.clear();
        output.reserve(self.outputs);
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut sum = self.biases[o];
            for (w, x) in row.iter().zip(input.iter()) {
                sum += w * x;
            }
            output.push(sum);
        }
    }
}

/// Gradient accumulators for one layer.
#[derive(Debug, Clone, Default)]
struct LayerGrad {
    d_w: Vec<f64>,
    d_b: Vec<f64>,
}

/// Reusable buffers of the training loop — gradient accumulators, per-layer
/// activations and the backpropagated deltas. Owned by one `train_epochs`
/// call and threaded through every batch, so the per-sample inner loops
/// allocate nothing.
#[derive(Debug, Default)]
struct TrainScratch {
    grads: Vec<LayerGrad>,
    activations: Vec<Vec<f64>>,
    delta: Vec<f64>,
    next_delta: Vec<f64>,
}

/// MLP regressor with Adam optimisation.
#[derive(Debug, Clone)]
pub struct MlpRegression {
    config: MlpConfig,
    layers: Vec<Layer>,
    feature_scaler: Scaler,
    target_scaler: TargetScaler,
    n_features: usize,
    fitted: bool,
    adam_step: u64,
}

impl MlpRegression {
    /// Creates an unfitted MLP with the given configuration.
    pub fn new(config: MlpConfig) -> Self {
        MlpRegression {
            config,
            layers: Vec::new(),
            feature_scaler: Scaler::new(ScalerKind::Standard),
            target_scaler: TargetScaler::new(),
            n_features: 0,
            fitted: false,
            adam_step: 0,
        }
    }

    /// Creates an unfitted MLP with default configuration.
    pub fn with_defaults() -> Self {
        MlpRegression::new(MlpConfig::default())
    }

    /// The configuration used by this model.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    fn init_layers(&mut self, n_features: usize) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut sizes = Vec::with_capacity(self.config.hidden_layers.len() + 2);
        sizes.push(n_features);
        sizes.extend_from_slice(&self.config.hidden_layers);
        sizes.push(1);
        self.layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        self.adam_step = 0;
    }

    /// Forward pass recording the activations of every layer (input first)
    /// into `activations`, whose buffers are reused across samples — the
    /// training loop runs thousands of forward passes per observe, and
    /// per-sample activation vectors dominated its cost. Arithmetic matches
    /// the predict path ([`MlpRegression::forward_scalar`]) bit for bit.
    fn forward_into(&self, input: &[f64], activations: &mut Vec<Vec<f64>>) {
        activations.resize(self.layers.len() + 1, Vec::new());
        activations[0].clear();
        activations[0].extend_from_slice(input);
        for li in 0..self.layers.len() {
            let (prev, rest) = activations.split_at_mut(li + 1);
            let output = &mut rest[0];
            self.layers[li].forward(&prev[li], output);
            if li != self.layers.len() - 1 {
                for z in output.iter_mut() {
                    *z = self.config.activation.forward(*z);
                }
            }
        }
    }

    /// Forward pass returning only the output value, ping-ponging two
    /// caller-owned activation buffers (cleared and refilled layer by
    /// layer). The training pass needs every layer's activations
    /// ([`MlpRegression::forward_all`]); the predict hot path does not, so
    /// it skips the per-layer activation vectors entirely. Arithmetic is
    /// identical, so predictions match `forward_all` bit for bit — and no
    /// allocations happen once the buffers have grown to the widest layer.
    fn forward_scalar_into(
        &self,
        input: &[f64],
        current: &mut Vec<f64>,
        next: &mut Vec<f64>,
    ) -> f64 {
        current.clear();
        current.extend_from_slice(input);
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(current, next);
            if li != self.layers.len() - 1 {
                for z in next.iter_mut() {
                    *z = self.config.activation.forward(*z);
                }
            }
            std::mem::swap(current, next);
        }
        current[0]
    }

    /// Runs one Adam update over a mini-batch. Returns the batch mean squared
    /// error (in scaled target space). `scratch` carries the gradient
    /// accumulators and per-sample buffers across batches and epochs, so the
    /// inner loop performs no allocations.
    fn train_batch(&mut self, batch: &[(Vec<f64>, f64)], scratch: &mut TrainScratch) -> f64 {
        scratch
            .grads
            .resize_with(self.layers.len(), LayerGrad::default);
        for (layer, grad) in self.layers.iter().zip(scratch.grads.iter_mut()) {
            grad.d_w.clear();
            grad.d_w.resize(layer.weights.len(), 0.0);
            grad.d_b.clear();
            grad.d_b.resize(layer.biases.len(), 0.0);
        }
        let mut loss = 0.0;

        for (features, target) in batch {
            self.forward_into(features, &mut scratch.activations);
            let activations = &scratch.activations;
            let prediction = activations.last().expect("output")[0];
            let error = prediction - target;
            loss += error * error;

            // Backward pass: delta for the output layer is just the error
            // (linear output + squared loss).
            scratch.delta.clear();
            scratch.delta.push(error);
            for li in (0..self.layers.len()).rev() {
                let layer = &self.layers[li];
                let input_act = &activations[li];
                let grad = &mut scratch.grads[li];
                for (o, &d) in scratch.delta.iter().enumerate().take(layer.outputs) {
                    grad.d_b[o] += d;
                    let row = &mut grad.d_w[o * layer.inputs..(o + 1) * layer.inputs];
                    for (g, x) in row.iter_mut().zip(input_act.iter()) {
                        *g += d * x;
                    }
                }
                if li == 0 {
                    break;
                }
                // Propagate delta to the previous layer.
                scratch.next_delta.clear();
                scratch.next_delta.resize(layer.inputs, 0.0);
                for (o, &d) in scratch.delta.iter().enumerate().take(layer.outputs) {
                    let row = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                    for (nd, w) in scratch.next_delta.iter_mut().zip(row.iter()) {
                        *nd += w * d;
                    }
                }
                // Multiply by the activation derivative of the previous
                // layer's (activated) outputs.
                let prev_act = &activations[li];
                for (nd, a) in scratch.next_delta.iter_mut().zip(prev_act.iter()) {
                    *nd *= self.config.activation.derivative(*a);
                }
                std::mem::swap(&mut scratch.delta, &mut scratch.next_delta);
            }
        }

        // Adam update. The bias-correction denominators depend only on the
        // step, not the parameter index — hoisted out of the weight loops
        // (`powf` per weight dominated the warm-start update's cost).
        let n = batch.len() as f64;
        self.adam_step += 1;
        let t = self.adam_step as f64;
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bias_correction1 = 1.0 - beta1.powf(t);
        let bias_correction2 = 1.0 - beta2.powf(t);
        let lr = self.config.learning_rate;
        let decay = self.config.weight_decay;
        for (layer, grad) in self.layers.iter_mut().zip(scratch.grads.iter()) {
            for i in 0..layer.weights.len() {
                let g = grad.d_w[i] / n + decay * layer.weights[i];
                layer.m_w[i] = beta1 * layer.m_w[i] + (1.0 - beta1) * g;
                layer.v_w[i] = beta2 * layer.v_w[i] + (1.0 - beta2) * g * g;
                let m_hat = layer.m_w[i] / bias_correction1;
                let v_hat = layer.v_w[i] / bias_correction2;
                layer.weights[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            for i in 0..layer.biases.len() {
                let g = grad.d_b[i] / n;
                layer.m_b[i] = beta1 * layer.m_b[i] + (1.0 - beta1) * g;
                layer.v_b[i] = beta2 * layer.v_b[i] + (1.0 - beta2) * g * g;
                let m_hat = layer.m_b[i] / bias_correction1;
                let v_hat = layer.v_b[i] / bias_correction2;
                layer.biases[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        loss / n
    }

    /// Trains for up to `epochs` passes over `data` (already raw-space).
    fn train_epochs(&mut self, data: &Dataset, epochs: usize) {
        let scaled_features = self.feature_scaler.transform_batch(data.features());
        let scaled_targets = self.target_scaler.transform_batch(data.targets());
        let mut samples: Vec<(Vec<f64>, f64)> =
            scaled_features.into_iter().zip(scaled_targets).collect();
        let mut scratch = TrainScratch::default();
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(self.adam_step));
        let mut best_loss = f64::INFINITY;
        let mut stall = 0usize;
        for _ in 0..epochs {
            samples.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in samples.chunks(self.config.batch_size.max(1)) {
                epoch_loss += self.train_batch(batch, &mut scratch);
                batches += 1;
            }
            let epoch_loss = epoch_loss / batches.max(1) as f64;
            if best_loss - epoch_loss > self.config.tolerance {
                best_loss = epoch_loss;
                stall = 0;
            } else {
                stall += 1;
                if stall >= self.config.patience {
                    break;
                }
            }
        }
    }
}

impl Regressor for MlpRegression {
    fn fit(&mut self, data: &Dataset) -> Result<(), ModelError> {
        validate_training_data(data)?;
        self.n_features = data.n_features();
        self.feature_scaler = Scaler::new(ScalerKind::Standard);
        self.feature_scaler.fit(data.features());
        self.target_scaler = TargetScaler::new();
        self.target_scaler.fit(data.targets());
        self.init_layers(self.n_features);
        self.train_epochs(data, self.config.max_epochs);
        self.fitted = true;
        Ok(())
    }

    fn partial_fit(&mut self, data: &Dataset) -> Result<(), ModelError> {
        validate_training_data(data)?;
        if !self.fitted {
            return self.fit(data);
        }
        if data.n_features() != self.n_features {
            return Err(ModelError::FeatureMismatch {
                expected: self.n_features,
                got: data.n_features(),
            });
        }
        // Warm start: keep the existing weights and scalers, run a few epochs
        // on the new observations only.
        self.train_epochs(data, self.config.incremental_epochs);
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> Result<f64, ModelError> {
        let mut scratch = PredictScratch::default();
        self.predict_with(features, &mut scratch)
    }

    fn predict_with(
        &self,
        features: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<f64, ModelError> {
        if !self.fitted || self.layers.is_empty() {
            return Err(ModelError::NotFitted);
        }
        validate_query(features, self.n_features)?;
        let PredictScratch {
            scaled_query,
            act_a,
            act_b,
            ..
        } = scratch;
        self.feature_scaler.transform_into(features, scaled_query);
        let out = self.forward_scalar_into(scaled_query, act_a, act_b);
        if !out.is_finite() {
            return Err(ModelError::Numerical(
                "MLP produced a non-finite prediction".to_string(),
            ));
        }
        Ok(self.target_scaler.inverse(out))
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn class(&self) -> ModelClass {
        ModelClass::Mlp
    }

    fn clone_box(&self) -> Box<dyn Regressor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    fn small_config() -> MlpConfig {
        MlpConfig {
            hidden_layers: vec![16],
            max_epochs: 400,
            learning_rate: 0.02,
            ..MlpConfig::default()
        }
    }

    #[test]
    fn learns_linear_relationship() {
        let xs: Vec<f64> = (0..80).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 50.0).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut m = MlpRegression::new(small_config());
        m.fit(&data).unwrap();
        let preds: Vec<f64> = xs.iter().map(|&x| m.predict(&[x]).unwrap()).collect();
        assert!(mape(&ys, &preds) < 0.12, "mape = {}", mape(&ys, &preds));
    }

    #[test]
    fn learns_quadratic_relationship_better_than_linear_extreme() {
        // Quadratic growth, as in the BaseRecalibrator motivation.
        let xs: Vec<f64> = (1..=60).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 100.0 * x * x).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut m = MlpRegression::new(small_config());
        m.fit(&data).unwrap();
        // Interpolation inside the training range should be within ~30%.
        let p = m.predict(&[3.05]).unwrap();
        let truth = 100.0 * 3.05 * 3.05;
        assert!(
            (p - truth).abs() / truth < 0.3,
            "pred {p} too far from {truth}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut a = MlpRegression::new(small_config());
        let mut b = MlpRegression::new(small_config());
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.predict(&[17.0]).unwrap(), b.predict(&[17.0]).unwrap());
    }

    #[test]
    fn partial_fit_keeps_model_usable_and_shifts_towards_new_data() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x + 10.0).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut m = MlpRegression::new(small_config());
        m.fit(&data).unwrap();
        let before = m.predict(&[25.0]).unwrap();
        // New observations at x=25 are much larger.
        let new = Dataset::from_univariate(&[25.0; 8], &[200.0; 8]);
        m.partial_fit(&new).unwrap();
        let after = m.predict(&[25.0]).unwrap();
        assert!(
            after > before,
            "incremental update should move the estimate up"
        );
    }

    #[test]
    fn partial_fit_before_fit_acts_as_fit() {
        let mut m = MlpRegression::new(small_config());
        let data = Dataset::from_univariate(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
        m.partial_fit(&data).unwrap();
        assert!(m.is_fitted());
        assert!(m.predict(&[2.0]).unwrap().is_finite());
    }

    #[test]
    fn errors_before_fit_and_on_bad_query() {
        let m = MlpRegression::with_defaults();
        assert!(matches!(m.predict(&[1.0]), Err(ModelError::NotFitted)));
        let mut fitted = MlpRegression::new(small_config());
        fitted
            .fit(&Dataset::from_univariate(&[1.0, 2.0], &[1.0, 2.0]))
            .unwrap();
        assert!(matches!(
            fitted.predict(&[1.0, 2.0]),
            Err(ModelError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn tanh_activation_also_trains() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x + 100.0).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut m = MlpRegression::new(MlpConfig {
            activation: Activation::Tanh,
            hidden_layers: vec![24],
            max_epochs: 500,
            learning_rate: 0.02,
            ..MlpConfig::default()
        });
        m.fit(&data).unwrap();
        let preds: Vec<f64> = xs.iter().map(|&x| m.predict(&[x]).unwrap()).collect();
        assert!(mape(&ys, &preds) < 0.2);
    }

    #[test]
    fn activation_functions_behave() {
        assert_eq!(Activation::Relu.forward(-1.0), 0.0);
        assert_eq!(Activation::Relu.forward(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative(3.0), 1.0);
        let t = Activation::Tanh.forward(0.5);
        assert!((Activation::Tanh.derivative(t) - (1.0 - t * t)).abs() < 1e-12);
    }
}
