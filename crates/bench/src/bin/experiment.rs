//! The spec-driven experiment runner: loads an [`ExperimentSpec`] TOML file,
//! runs the methods × profiles × seeds × policies sweep, prints the per-cell
//! and aggregate tables, and (optionally) writes a checkpoint directory with
//! every cell's trained-predictor state.
//!
//! ```text
//! experiment <spec.toml> [checkpoint-dir]
//! ```
//!
//! The checkpoint directory receives
//!
//! * `spec.toml` — the exact (normalised) spec that produced the results,
//! * one `cell<NNN>_<method>_<profile>_s<seed>_<policy>.state` file per
//!   sweep cell — the predictor's event-sourced
//!   [`PredictorState`], restorable with
//!   [`MethodSpec::restore`](sizey_bench::MethodSpec::restore) for warm
//!   starts.
//!
//! After writing, every state file is read back, restored through the
//! registry and re-snapshotted; the run fails (non-zero exit) unless each
//! round-trip is bit-identical — so a green run *proves* the checkpoints are
//! usable, and CI greps for the "checkpoint round-trip verified" line.
//!
//! Example: `cargo run --release -p sizey-bench --bin experiment -- \
//! crates/bench/specs/smoke.toml /tmp/sizey-checkpoints`

use sizey_bench::{aggregate_sweep, fmt, render_table, ExperimentSpec};
use sizey_sim::PredictorState;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (spec_path, checkpoint_dir) = match args.as_slice() {
        [spec] => (spec.clone(), None),
        [spec, dir] => (spec.clone(), Some(dir.clone())),
        _ => {
            eprintln!("usage: experiment <spec.toml> [checkpoint-dir]");
            return ExitCode::FAILURE;
        }
    };

    let spec = match ExperimentSpec::from_toml_file(&spec_path) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("failed to load {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("=== experiment: {} ===", spec.name);
    println!(
        "{} cells ({} methods x {} profiles x {} seeds x {} policies), scale {}",
        spec.len(),
        spec.methods.len(),
        spec.profiles.len(),
        spec.seeds.len(),
        spec.policies.len(),
        spec.scale,
    );
    for method in &spec.methods {
        println!("  method: {} ({})", method.name(), method.id());
    }
    println!();

    let results = match spec.run_checkpointed() {
        Ok(results) => results,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cells: Vec<_> = results.iter().map(|(cell, _)| cell.clone()).collect();
    let cell_rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.workflow.clone(),
                c.method.name().to_string(),
                c.seed.to_string(),
                c.policy.name().to_string(),
                fmt(c.wastage_gbh, 2),
                c.failures.to_string(),
                fmt(c.makespan_hours, 2),
                fmt(c.mean_queue_delay_seconds, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Workflow",
                "Method",
                "Seed",
                "Policy",
                "Wastage GBh",
                "Failures",
                "Makespan h",
                "Queue delay s",
            ],
            &cell_rows
        )
    );

    let rows: Vec<Vec<String>> = aggregate_sweep(&cells)
        .into_iter()
        .map(|row| {
            vec![
                row.method.name().to_string(),
                row.policy.name().to_string(),
                fmt(row.wastage_gbh, 2),
                fmt(row.failures, 1),
                fmt(row.makespan_hours, 2),
                fmt(row.mean_queue_delay_seconds, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Method",
                "Policy",
                "Wastage GBh",
                "Failures",
                "Makespan h",
                "Queue delay s",
            ],
            &rows
        )
    );

    // Drift scenarios: one greppable time_to_recover line per cell.
    if spec.drift.is_some() {
        for c in &cells {
            let ttr = c
                .time_to_recover_seconds
                .expect("drift specs track recovery");
            let rendered = if ttr.is_finite() {
                fmt(ttr, 1)
            } else {
                "never".to_string()
            };
            println!(
                "time_to_recover: workflow={} method={} seed={} policy={} seconds={rendered}",
                c.workflow,
                c.method.name(),
                c.seed,
                c.policy.name()
            );
        }
        println!();
    }

    // Fault scenarios: per-cell accounting of requeues and the retry-ledger
    // leak invariant (must be zero even when faults strand attempts).
    if spec.sim.faults.as_ref().is_some_and(|f| !f.is_empty()) {
        let mut stranded = 0usize;
        for c in &cells {
            println!(
                "fault_accounting: workflow={} method={} seed={} policy={} requeued={} leaked_inflight_retries={} unfinished={}",
                c.workflow,
                c.method.name(),
                c.seed,
                c.policy.name(),
                c.requeued_attempts,
                c.leaked_inflight_retries,
                c.unfinished
            );
            stranded += c.leaked_inflight_retries + c.unfinished;
        }
        println!();
        if stranded > 0 {
            eprintln!("fault run stranded {stranded} tasks/retries");
            return ExitCode::FAILURE;
        }
        println!("fault run completed with zero stranded tasks");
    }

    let Some(dir) = checkpoint_dir else {
        return ExitCode::SUCCESS;
    };
    match write_and_verify_checkpoints(&spec, &results, Path::new(&dir)) {
        Ok(n) => {
            println!("checkpoint round-trip verified ({n} states) in {dir}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("checkpointing failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Writes the spec plus one state file per cell, then proves every file
/// restores bit-identically through the registry.
fn write_and_verify_checkpoints(
    spec: &ExperimentSpec,
    results: &[(sizey_bench::SweepCell, PredictorState)],
    dir: &Path,
) -> Result<usize, Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("spec.toml"), spec.to_toml())?;
    let mut paths = Vec::with_capacity(results.len());
    for (idx, (cell, state)) in results.iter().enumerate() {
        let file = format!(
            "cell{idx:03}_{}_{}_s{}_{}.state",
            cell.method.id(),
            cell.workflow,
            cell.seed,
            cell.policy.name()
        );
        let path = dir.join(file);
        state.write_state_file(&path)?;
        paths.push(path);
    }
    // Round-trip proof: file -> state -> restored predictor -> snapshot.
    for ((cell, state), path) in results.iter().zip(&paths) {
        let read_back = PredictorState::read_state_file(path)?;
        if read_back != *state {
            return Err(format!("{}: state changed on disk", path.display()).into());
        }
        let restored = cell.method.restore(&read_back)?;
        if restored.snapshot() != *state {
            return Err(format!(
                "{}: restored predictor does not reproduce its checkpoint",
                path.display()
            )
            .into());
        }
    }
    Ok(results.len())
}
