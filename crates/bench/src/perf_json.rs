//! Shared machinery of the pinned performance harnesses (`perf_replay`,
//! `serve_bench`): latency summarisation and the `BENCH_replay.json`
//! read-modify-write cycle.
//!
//! `BENCH_replay.json` (schema `sizey-perf-replay/v2`) holds one object per
//! scenario — `replay`, `scale` and `serve` — and each harness run rewrites
//! *its* scenario while preserving the other scenarios' committed
//! measurements verbatim. That keeps the file a perf trajectory tracked
//! across commits instead of a scratchpad the last-run harness wipes.

use std::path::Path;

/// The scenarios `BENCH_replay.json` tracks, in their fixed emission order.
pub const SCENARIOS: [&str; 3] = ["replay", "scale", "serve"];

/// Latency percentiles over one timer series, in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of timed calls in the series.
    pub count: usize,
    /// Median latency.
    pub p50_us: f64,
    /// 90th percentile latency.
    pub p90_us: f64,
    /// 99th percentile latency.
    pub p99_us: f64,
    /// 99.9th percentile latency — the serving tail the async front-end is
    /// designed to decouple from retrain spikes.
    pub p999_us: f64,
    /// Worst observed latency.
    pub max_us: f64,
}

/// Sorts a nanosecond series and reduces it to microsecond percentiles.
/// An empty series yields all-zero percentiles (count 0).
pub fn summarize(mut nanos: Vec<u64>) -> LatencySummary {
    nanos.sort_unstable();
    let pick = |q: f64| -> f64 {
        if nanos.is_empty() {
            return 0.0;
        }
        let idx = (q * (nanos.len() - 1) as f64).round() as usize;
        nanos[idx.min(nanos.len() - 1)] as f64 / 1_000.0
    };
    LatencySummary {
        count: nanos.len(),
        p50_us: pick(0.50),
        p90_us: pick(0.90),
        p99_us: pick(0.99),
        p999_us: pick(0.999),
        max_us: nanos.last().map_or(0.0, |&n| n as f64 / 1_000.0),
    }
}

/// Renders a [`LatencySummary`] as the JSON object embedded in scenario
/// bodies.
pub fn json_latency(s: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"p50_us\": {:.3}, \"p90_us\": {:.3}, \"p99_us\": {:.3}, \
         \"p999_us\": {:.3}, \"max_us\": {:.3}}}",
        s.count, s.p50_us, s.p90_us, s.p99_us, s.p999_us, s.max_us
    )
}

/// Renders a [`LatencySummary`] as the human-readable harness output line.
pub fn print_latency(label: &str, s: &LatencySummary) {
    println!(
        "{label} latency: p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, p999 {:.1} us, \
         max {:.1} us ({} calls)",
        s.p50_us, s.p90_us, s.p99_us, s.p999_us, s.max_us, s.count
    );
}

/// Extracts the JSON object following `"name":` from `text` (brace-matched,
/// string-aware), so a run of one scenario can preserve the other scenarios'
/// committed measurements verbatim. Matches only the top-level scenario
/// entry as emitted by [`write_bench_json`] (newline + four-space indent) so
/// scalar fields like the workload's `"scale": 0.5` inside a scenario body
/// cannot be mistaken for the `"scale"` scenario itself. Returns `None` when
/// the key is absent — e.g. on a pre-v2 file, which carried only the replay
/// scenario inline at a different indent.
pub fn extract_scenario(text: &str, name: &str) -> Option<String> {
    let key = format!("\n    \"{name}\": ");
    let key_at = text.find(&key)?;
    let after_key = &text[key_at + key.len()..];
    let open = after_key.find('{')?;
    let body = &after_key[open..];
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(body[..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Writes `BENCH_replay.json` with `scenario` replaced by `body`, keeping
/// every other known scenario from the existing file (when present).
/// Scenarios are emitted in the fixed [`SCENARIOS`] order so reruns produce
/// stable diffs.
///
/// # Panics
///
/// Panics when `scenario` is not one of [`SCENARIOS`] or the file cannot be
/// written — a harness misconfiguration, not a runtime condition.
pub fn write_bench_json(out_path: &Path, scenario: &str, body: &str) {
    assert!(
        SCENARIOS.contains(&scenario),
        "unknown scenario {scenario:?}; known: {SCENARIOS:?}"
    );
    let existing = std::fs::read_to_string(out_path).ok();
    let scenarios = SCENARIOS
        .iter()
        .filter_map(|&name| {
            let kept = if name == scenario {
                Some(body.to_string())
            } else {
                existing
                    .as_deref()
                    .and_then(|text| extract_scenario(text, name))
            };
            kept.map(|b| format!("    \"{name}\": {b}"))
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"schema\": \"sizey-perf-replay/v2\",\n  \"scenarios\": {{\n{scenarios}\n  }}\n}}\n"
    );
    std::fs::write(out_path, json).expect("write BENCH_replay.json");
    println!();
    println!("wrote {}", out_path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_only_top_level_scenario_entries() {
        let text = "{\n  \"schema\": \"sizey-perf-replay/v2\",\n  \"scenarios\": {\n    \
                    \"replay\": {\"workload\": {\"scale\": 0.5}, \"observe_latency_us\": {\"p50\": 1.0}},\n    \
                    \"scale\": {\"workload\": {\"scale\": 10.0}, \"peak_heap_bytes\": 42}\n  }\n}\n";
        assert_eq!(
            extract_scenario(text, "replay").as_deref(),
            Some("{\"workload\": {\"scale\": 0.5}, \"observe_latency_us\": {\"p50\": 1.0}}")
        );
        // The replay body's inner `"scale": 0.5` must not shadow the scenario.
        assert_eq!(
            extract_scenario(text, "scale").as_deref(),
            Some("{\"workload\": {\"scale\": 10.0}, \"peak_heap_bytes\": 42}")
        );
        assert_eq!(extract_scenario(text, "serve"), None);
    }

    #[test]
    fn legacy_v1_file_yields_none() {
        // Pre-v2 files inlined the replay measurement at two-space indent and
        // carried a scalar "scale" in the workload; neither may match.
        let text =
            "{\n  \"schema\": \"sizey-perf-replay/v1\",\n  \"workload\": {\"scale\": 0.5},\n  \
                    \"observe_latency_us\": {\"p50\": 1.0}\n}\n";
        assert_eq!(extract_scenario(text, "replay"), None);
        assert_eq!(extract_scenario(text, "scale"), None);
    }

    #[test]
    fn write_preserves_the_other_scenarios_verbatim() {
        let dir = std::env::temp_dir().join("sizey-perf-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_replay.json");
        let _ = std::fs::remove_file(&path);

        write_bench_json(&path, "replay", "{\"a\": 1}");
        write_bench_json(&path, "serve", "{\"b\": {\"nested\": \"x}\"}}");
        write_bench_json(&path, "scale", "{\"c\": 3}");
        // Rewriting one scenario keeps the other two.
        write_bench_json(&path, "replay", "{\"a\": 2}");

        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            extract_scenario(&text, "replay").as_deref(),
            Some("{\"a\": 2}")
        );
        assert_eq!(
            extract_scenario(&text, "scale").as_deref(),
            Some("{\"c\": 3}")
        );
        assert_eq!(
            extract_scenario(&text, "serve").as_deref(),
            Some("{\"b\": {\"nested\": \"x}\"}}"),
            "brace inside a string must not break extraction"
        );
        // Fixed emission order: replay, scale, serve.
        let (r, s, v) = (
            text.find("\"replay\":").unwrap(),
            text.find("\"scale\":").unwrap(),
            text.find("\"serve\":").unwrap(),
        );
        assert!(r < s && s < v, "scenario order must be stable");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn summarize_orders_percentiles_and_handles_empty() {
        let series: Vec<u64> = (1..=1000).map(|i| i * 1_000).collect();
        let s = summarize(series);
        assert_eq!(s.count, 1000);
        assert!(s.p50_us <= s.p90_us && s.p90_us <= s.p99_us);
        assert!(s.p99_us <= s.p999_us && s.p999_us <= s.max_us);
        assert_eq!(s.max_us, 1000.0);

        let empty = summarize(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max_us, 0.0);
    }
}
