//! Cross-validation and grid-search hyper-parameter optimisation.
//!
//! The paper's prototype performs hyper-parameter optimisation as part of the
//! full retraining step (Fig. 9 includes it in the training time) and caches
//! the best hyper-parameters for the incremental variant. This module
//! provides the same machinery: parameter grids per model class, k-fold cross
//! validation, and a grid search that returns the best configuration together
//! with a model fitted on the full data.

use crate::dataset::Dataset;
use crate::forest::{ForestConfig, RandomForestRegression};
use crate::knn::{KnnConfig, KnnRegression, KnnWeighting};
use crate::linear::{LinearConfig, LinearRegression};
use crate::metrics::mse;
use crate::mlp::{MlpConfig, MlpRegression};
use crate::model::{ModelClass, ModelError, Regressor};
use crate::parallel::{default_parallelism, parallel_map};

/// A concrete hyper-parameter assignment for one model class.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Linear regression configuration.
    Linear(LinearConfig),
    /// k-NN regression configuration.
    Knn(KnnConfig),
    /// MLP regression configuration.
    Mlp(MlpConfig),
    /// Random-forest regression configuration.
    RandomForest(ForestConfig),
}

impl ModelSpec {
    /// The model class this spec instantiates.
    pub fn class(&self) -> ModelClass {
        match self {
            ModelSpec::Linear(_) => ModelClass::Linear,
            ModelSpec::Knn(_) => ModelClass::Knn,
            ModelSpec::Mlp(_) => ModelClass::Mlp,
            ModelSpec::RandomForest(_) => ModelClass::RandomForest,
        }
    }

    /// Builds an unfitted regressor from this spec.
    pub fn build(&self) -> Box<dyn Regressor> {
        match self {
            ModelSpec::Linear(c) => Box::new(LinearRegression::new(*c)),
            ModelSpec::Knn(c) => Box::new(KnnRegression::new(*c)),
            ModelSpec::Mlp(c) => Box::new(MlpRegression::new(c.clone())),
            ModelSpec::RandomForest(c) => Box::new(RandomForestRegression::new(*c)),
        }
    }

    /// The default hyper-parameter grid searched for a model class. The grids
    /// are intentionally small — Sizey retrains on every task completion, so
    /// the search must stay in the millisecond-to-second range (Fig. 9).
    pub fn default_grid(class: ModelClass) -> Vec<ModelSpec> {
        match class {
            ModelClass::Linear => vec![
                ModelSpec::Linear(LinearConfig {
                    l2: 1e-8,
                    fit_intercept: true,
                }),
                ModelSpec::Linear(LinearConfig {
                    l2: 1e-2,
                    fit_intercept: true,
                }),
                ModelSpec::Linear(LinearConfig {
                    l2: 1.0,
                    fit_intercept: true,
                }),
            ],
            ModelClass::Knn => vec![
                ModelSpec::Knn(KnnConfig {
                    k: 3,
                    weighting: KnnWeighting::InverseDistance,
                    ..KnnConfig::default()
                }),
                ModelSpec::Knn(KnnConfig {
                    k: 5,
                    weighting: KnnWeighting::InverseDistance,
                    ..KnnConfig::default()
                }),
                ModelSpec::Knn(KnnConfig {
                    k: 5,
                    weighting: KnnWeighting::Uniform,
                    ..KnnConfig::default()
                }),
                ModelSpec::Knn(KnnConfig {
                    k: 9,
                    weighting: KnnWeighting::Uniform,
                    ..KnnConfig::default()
                }),
            ],
            ModelClass::Mlp => vec![
                ModelSpec::Mlp(MlpConfig {
                    hidden_layers: vec![16],
                    max_epochs: 150,
                    ..MlpConfig::default()
                }),
                ModelSpec::Mlp(MlpConfig {
                    hidden_layers: vec![32, 16],
                    max_epochs: 150,
                    ..MlpConfig::default()
                }),
            ],
            ModelClass::RandomForest => vec![
                ModelSpec::RandomForest(ForestConfig {
                    n_trees: 16,
                    max_depth: 8,
                    ..ForestConfig::default()
                }),
                ModelSpec::RandomForest(ForestConfig {
                    n_trees: 32,
                    max_depth: 12,
                    ..ForestConfig::default()
                }),
            ],
        }
    }
}

/// Result of a grid search: the winning spec, its cross-validation score
/// (mean squared error, lower is better), and a model fitted on all data.
pub struct GridSearchResult {
    /// The best hyper-parameter assignment found.
    pub spec: ModelSpec,
    /// Mean cross-validated MSE of the best spec.
    pub cv_mse: f64,
    /// The best model, refitted on the complete dataset.
    pub model: Box<dyn Regressor>,
}

impl std::fmt::Debug for GridSearchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridSearchResult")
            .field("spec", &self.spec)
            .field("cv_mse", &self.cv_mse)
            .finish()
    }
}

/// Produces the index sets of a k-fold split of `n` observations. Folds are
/// contiguous blocks (the data is already in arrival order, and preserving
/// temporal structure avoids optimistic leakage in the online setting).
pub fn kfold_indices(n: usize, k: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let k = k.max(2).min(n.max(2));
    if n < 2 {
        return vec![((0..n).collect(), (0..n).collect())];
    }
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let remainder = n % k;
    let mut start = 0usize;
    for fold in 0..k {
        let size = base + usize::from(fold < remainder);
        let end = (start + size).min(n);
        let test: Vec<usize> = (start..end).collect();
        let train: Vec<usize> = (0..start).chain(end..n).collect();
        if !test.is_empty() && !train.is_empty() {
            folds.push((train, test));
        }
        start = end;
    }
    folds
}

/// Cross-validates one spec on `data` and returns the mean MSE over folds.
pub fn cross_validate(spec: &ModelSpec, data: &Dataset, k: usize) -> Result<f64, ModelError> {
    let folds = kfold_indices(data.len(), k);
    if folds.is_empty() {
        return Err(ModelError::InvalidTrainingData(
            "not enough observations for cross validation".to_string(),
        ));
    }
    let mut total = 0.0;
    for (train_idx, test_idx) in &folds {
        let train = data.subset(train_idx);
        let test = data.subset(test_idx);
        let mut model = spec.build();
        model.fit(&train)?;
        let preds = model.predict_batch(test.features())?;
        total += mse(test.targets(), &preds);
    }
    Ok(total / folds.len() as f64)
}

/// Grid-searches the given specs with k-fold cross validation (specs are
/// evaluated in parallel) and refits the winner on the full dataset.
///
/// When the dataset is too small for cross validation (fewer than 4
/// observations) the first spec is used directly — exactly the situation at
/// the start of a workflow where Sizey has just left the preset phase.
pub fn grid_search(
    specs: &[ModelSpec],
    data: &Dataset,
    k: usize,
) -> Result<GridSearchResult, ModelError> {
    if specs.is_empty() {
        return Err(ModelError::InvalidTrainingData(
            "no specs to search".to_string(),
        ));
    }
    if data.len() < 4 {
        let spec = specs[0].clone();
        let mut model = spec.build();
        model.fit(data)?;
        return Ok(GridSearchResult {
            spec,
            cv_mse: f64::INFINITY,
            model,
        });
    }

    let scores = parallel_map(specs, default_parallelism(), |spec| {
        cross_validate(spec, data, k)
    });

    let mut best: Option<(usize, f64)> = None;
    for (i, score) in scores.iter().enumerate() {
        if let Ok(s) = score {
            if best.is_none_or(|(_, b)| *s < b) {
                best = Some((i, *s));
            }
        }
    }
    let (best_idx, best_score) =
        best.ok_or_else(|| ModelError::Numerical("all grid candidates failed".to_string()))?;
    let spec = specs[best_idx].clone();
    let mut model = spec.build();
    model.fit(data)?;
    Ok(GridSearchResult {
        spec,
        cv_mse: best_score,
        model,
    })
}

/// Grid-searches the default grid of a model class.
pub fn grid_search_class(
    class: ModelClass,
    data: &Dataset,
    k: usize,
) -> Result<GridSearchResult, ModelError> {
    grid_search(&ModelSpec::default_grid(class), data, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> Dataset {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x + 7.0).collect();
        Dataset::from_univariate(&xs, &ys)
    }

    #[test]
    fn kfold_partitions_all_indices() {
        let folds = kfold_indices(10, 3);
        assert_eq!(folds.len(), 3);
        let mut seen: Vec<usize> = folds.iter().flat_map(|(_, test)| test.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 10);
            assert!(train.iter().all(|i| !test.contains(i)));
        }
    }

    #[test]
    fn kfold_handles_small_n() {
        let folds = kfold_indices(2, 5);
        assert!(!folds.is_empty());
        for (train, test) in &folds {
            assert!(!train.is_empty());
            assert!(!test.is_empty());
        }
    }

    #[test]
    fn cross_validate_scores_good_model_low() {
        let data = linear_data(40);
        let spec = ModelSpec::Linear(LinearConfig::default());
        let score = cross_validate(&spec, &data, 4).unwrap();
        assert!(score < 1.0, "linear model should nail linear data: {score}");
    }

    #[test]
    fn grid_search_prefers_linear_on_linear_data() {
        let data = linear_data(60);
        let mut specs = ModelSpec::default_grid(ModelClass::Linear);
        specs.extend(ModelSpec::default_grid(ModelClass::Knn));
        let result = grid_search(&specs, &data, 4).unwrap();
        assert_eq!(result.spec.class(), ModelClass::Linear);
        assert!(result.model.is_fitted());
        // Extrapolation check: only the linear model does this well.
        let p = result.model.predict(&[200.0]).unwrap();
        assert!((p - 807.0).abs() < 5.0);
    }

    #[test]
    fn grid_search_small_dataset_falls_back_to_first_spec() {
        let data = linear_data(2);
        let specs = ModelSpec::default_grid(ModelClass::Knn);
        let result = grid_search(&specs, &data, 3).unwrap();
        assert_eq!(result.spec, specs[0]);
        assert!(result.model.is_fitted());
    }

    #[test]
    fn grid_search_rejects_empty_grid() {
        let data = linear_data(10);
        assert!(grid_search(&[], &data, 3).is_err());
    }

    #[test]
    fn default_grids_cover_all_classes() {
        for class in ModelClass::ALL {
            let grid = ModelSpec::default_grid(class);
            assert!(!grid.is_empty());
            assert!(grid.iter().all(|s| s.class() == class));
        }
    }

    #[test]
    fn grid_search_class_runs_for_each_class() {
        let data = linear_data(24);
        for class in [ModelClass::Linear, ModelClass::Knn] {
            let r = grid_search_class(class, &data, 3).unwrap();
            assert_eq!(r.spec.class(), class);
        }
    }
}
