//! The gating mechanism combining pool outputs (Section II-D).
//!
//! Given the pool's individual estimates and their RAQ scores, the gating
//! mechanism assigns each predictor a weight and produces a single aggregate
//! estimate — either by picking the best model (Argmax) or by a softmax
//! consensus over the RAQ scores (Interpolation, Eq. 4).

use crate::config::GatingStrategy;

/// Result of gating: the aggregate estimate, the per-model weights, and the
/// index of the dominant model (used for the Fig. 11 model-share analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct GatingDecision {
    /// The aggregated memory estimate in bytes.
    pub estimate: f64,
    /// One weight per pool member, summing to 1.
    pub weights: Vec<f64>,
    /// Index of the model with the largest weight.
    pub dominant_model: usize,
}

/// Applies the gating strategy to the pool estimates and their RAQ scores.
///
/// # Panics
/// Panics if `estimates` and `raq_scores` have different lengths or are
/// empty — the pool never calls the gate without at least one fitted model.
pub fn gate(strategy: GatingStrategy, estimates: &[f64], raq_scores: &[f64]) -> GatingDecision {
    assert_eq!(
        estimates.len(),
        raq_scores.len(),
        "one RAQ score per estimate required"
    );
    assert!(!estimates.is_empty(), "cannot gate an empty pool");

    match strategy {
        GatingStrategy::Argmax => {
            let best = argmax(raq_scores);
            let mut weights = vec![0.0; estimates.len()];
            weights[best] = 1.0;
            GatingDecision {
                estimate: estimates[best],
                weights,
                dominant_model: best,
            }
        }
        GatingStrategy::Interpolation { beta } => {
            let beta = beta.max(1.0);
            let weights = softmax(raq_scores, beta);
            let estimate = estimates
                .iter()
                .zip(weights.iter())
                .map(|(e, w)| e * w)
                .sum();
            let dominant_model = argmax(&weights);
            GatingDecision {
                estimate,
                weights,
                dominant_model,
            }
        }
    }
}

/// Index of the maximum value (first one wins ties).
fn argmax(values: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, v) in values.iter().enumerate() {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable softmax with sharpness `beta` (Eq. 4).
fn softmax(scores: &[f64], beta: f64) -> Vec<f64> {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (beta * (s - max)).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_strategy_selects_highest_raq() {
        let d = gate(GatingStrategy::Argmax, &[1e9, 2e9, 3e9], &[0.2, 0.9, 0.5]);
        assert_eq!(d.estimate, 2e9);
        assert_eq!(d.dominant_model, 1);
        assert_eq!(d.weights, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn argmax_ties_pick_the_first() {
        let d = gate(GatingStrategy::Argmax, &[1e9, 2e9], &[0.5, 0.5]);
        assert_eq!(d.dominant_model, 0);
    }

    #[test]
    fn interpolation_weights_form_a_simplex() {
        let d = gate(
            GatingStrategy::Interpolation { beta: 3.0 },
            &[1e9, 2e9, 4e9],
            &[0.3, 0.6, 0.1],
        );
        let sum: f64 = d.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(d.weights.iter().all(|&w| (0.0..=1.0).contains(&w)));
        assert_eq!(d.dominant_model, 1);
    }

    #[test]
    fn interpolation_estimate_is_between_extremes() {
        let estimates = [1e9, 5e9];
        let d = gate(
            GatingStrategy::Interpolation { beta: 2.0 },
            &estimates,
            &[0.5, 0.5],
        );
        assert!(d.estimate > 1e9 && d.estimate < 5e9);
        // Equal scores => simple average.
        assert!((d.estimate - 3e9).abs() < 1e-3);
    }

    #[test]
    fn large_beta_approaches_argmax() {
        let estimates = [1e9, 5e9];
        let raq = [0.4, 0.6];
        let soft = gate(GatingStrategy::Interpolation { beta: 200.0 }, &estimates, &raq);
        let hard = gate(GatingStrategy::Argmax, &estimates, &raq);
        assert!((soft.estimate - hard.estimate).abs() / hard.estimate < 1e-6);
    }

    #[test]
    fn beta_below_one_is_clamped() {
        let a = gate(GatingStrategy::Interpolation { beta: 0.0 }, &[1e9, 2e9], &[0.2, 0.8]);
        let b = gate(GatingStrategy::Interpolation { beta: 1.0 }, &[1e9, 2e9], &[0.2, 0.8]);
        assert!((a.estimate - b.estimate).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "cannot gate an empty pool")]
    fn gating_empty_pool_panics() {
        let _ = gate(GatingStrategy::Argmax, &[], &[]);
    }

    #[test]
    #[should_panic(expected = "one RAQ score per estimate")]
    fn mismatched_lengths_panic() {
        let _ = gate(GatingStrategy::Argmax, &[1.0], &[0.1, 0.2]);
    }
}
