//! Property suite for the fault-injection determinism contract
//! (see the module docs of `sizey_sim::faults`).
//!
//! For any workload, fault plan and scheduling policy:
//!
//! 1. **Replay determinism** — running the same faulted scenario twice
//!    produces bit-identical attempt events and scheduler stats.
//! 2. **Engine equivalence** — the materialised and streaming event-driven
//!    engines produce the identical event sequence and stats for the same
//!    faulted scenario.
//! 3. **Conservation** — faults never strand work: every instance finishes
//!    or exhausts its retry budget, the retry ledger drains to empty, and
//!    every requeue is accounted to exactly one fault counter.

use proptest::prelude::*;
use sizey_provenance::{MachineId, TaskTypeId};
use sizey_sim::{
    schedule_workflows, schedule_workflows_streaming, AttemptEvent, AttemptSink, CrashStorm,
    FaultPlan, NodeCrash, NodePoolSpec, NullRecordSink, PoolPreemption, PresetPredictor,
    SchedulePolicy, SimulationConfig, StreamingTenant, TaskKillBurst, WorkflowTenant,
};
use sizey_workflows::TaskInstance;

fn instance(seq: u64, peak_gb: f64, runtime: f64, preset_gb: f64) -> TaskInstance {
    TaskInstance {
        workflow: "wf".into(),
        task_type: TaskTypeId::new(format!("t{}", seq % 3)),
        machine: MachineId::new("m"),
        sequence: seq,
        input_bytes: 1e9,
        true_peak_bytes: peak_gb * 1e9,
        base_runtime_seconds: runtime,
        preset_memory_bytes: preset_gb * 1e9,
        cpu_utilization_pct: 100.0,
        io_read_bytes: 1e9,
        io_write_bytes: 1e9,
    }
}

/// (peak GB, runtime s, preset GB) — peaks may exceed presets (forcing OOM
/// retry chains that interleave with fault requeues) and node capacity
/// (forcing budget exhaustion).
fn workload_strategy() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec((0.1f64..24.0, 10.0f64..400.0, 0.1f64..16.0), 1..30)
}

fn build(tasks: &[(f64, f64, f64)]) -> Vec<TaskInstance> {
    tasks
        .iter()
        .enumerate()
        .map(|(i, &(peak, runtime, preset))| instance(i as u64, peak, runtime, preset))
        .collect()
}

/// Downtime: mostly finite, occasionally "never comes back".
fn downtime_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => 5.0f64..500.0,
        1 => Just(f64::INFINITY),
    ]
}

/// Arbitrary fault plans, including out-of-range node/pool targets (which
/// the compiler must skip, not fear) and same-time collisions.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    let crash =
        (0.0f64..2000.0, 0usize..8, downtime_strategy()).prop_map(|(t, node, down)| NodeCrash {
            time_seconds: t,
            node,
            down_seconds: down,
        });
    let storm =
        (0.0f64..2000.0, 1usize..4, 5.0f64..500.0, 0u64..64).prop_map(|(t, nodes, down, seed)| {
            CrashStorm {
                time_seconds: t,
                nodes,
                down_seconds: down,
                seed,
            }
        });
    let preemption =
        (0usize..3, 0.0f64..2000.0, downtime_strategy()).prop_map(|(pool, t, back)| {
            PoolPreemption {
                pool,
                time_seconds: t,
                return_after_seconds: back,
            }
        });
    let kills = (0.0f64..2000.0, 1usize..6).prop_map(|(t, tasks)| TaskKillBurst {
        time_seconds: t,
        tasks,
    });
    (
        prop::collection::vec(crash, 0..3),
        prop::collection::vec(storm, 0..2),
        prop::collection::vec(preemption, 0..2),
        prop::collection::vec(kills, 0..3),
    )
        .prop_map(
            |(node_crashes, storms, pool_preemptions, task_kills)| FaultPlan {
                node_crashes,
                storms,
                pool_preemptions,
                task_kills,
            },
        )
}

/// A small heterogeneous cluster (4 + 2 nodes) with spaced arrivals so
/// faults genuinely interleave with dispatches, retries and submissions.
fn config(plan: &FaultPlan, policy: SchedulePolicy) -> SimulationConfig {
    SimulationConfig {
        max_attempts: 4,
        submit_interval_seconds: 5.0,
        ..SimulationConfig::default()
            .with_nodes(4, 16e9, 3)
            .with_extra_pool(NodePoolSpec {
                count: 2,
                memory_bytes: 32e9,
                slots: 2,
            })
            .with_policy(policy)
            .with_faults(plan.clone())
    }
}

fn policy_from(idx: usize) -> SchedulePolicy {
    SchedulePolicy::ALL[idx % SchedulePolicy::ALL.len()]
}

/// Collects every attempt event the streaming engine emits.
#[derive(Default)]
struct Collect(Vec<AttemptEvent>);

impl AttemptSink for Collect {
    fn record(&mut self, event: &AttemptEvent) {
        self.0.push(event.clone());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Properties 1 + 2: the same faulted scenario is bit-identical across
    // runs and across the two event-driven engines, for every policy.
    #[test]
    fn fault_replay_is_bit_identical_across_runs_and_engines(
        tasks in workload_strategy(),
        plan in plan_strategy(),
        policy_idx in 0usize..3,
    ) {
        let config = config(&plan, policy_from(policy_idx));

        let run = || schedule_workflows(
            vec![WorkflowTenant::new("wf", build(&tasks), Box::new(PresetPredictor))],
            &config,
        );
        let first = run();
        let second = run();
        prop_assert_eq!(&first.stats, &second.stats,
            "stats must be identical across runs");
        prop_assert_eq!(&first.reports[0].events, &second.reports[0].events,
            "events must be bit-identical across runs");
        prop_assert_eq!(first.makespan_seconds, second.makespan_seconds);

        let mut sink = Collect::default();
        let streaming = schedule_workflows_streaming(
            vec![StreamingTenant::new(
                "wf",
                build(&tasks).into_iter(),
                Box::new(PresetPredictor),
            )],
            &config,
            &mut sink,
            &mut NullRecordSink,
        );
        prop_assert_eq!(&streaming.stats, &first.stats,
            "stats must be identical across engines");
        prop_assert_eq!(&sink.0, &first.reports[0].events,
            "event sequences must be bit-identical across engines");
        prop_assert_eq!(
            streaming.reports[0].aggregates.unfinished_instances,
            first.reports[0].unfinished_instances
        );
        prop_assert_eq!(streaming.makespan_seconds, first.makespan_seconds);
    }

    // Property 3: faults never strand work or leak retry state, and the
    // requeue accounting is internally consistent.
    #[test]
    fn faults_never_strand_work_or_leak_retry_state(
        tasks in workload_strategy(),
        plan in plan_strategy(),
        policy_idx in 0usize..3,
    ) {
        let config = config(&plan, policy_from(policy_idx));
        let instances = build(&tasks);
        let n = instances.len();
        let result = schedule_workflows(
            vec![WorkflowTenant::new("wf", instances, Box::new(PresetPredictor))],
            &config,
        );
        let report = &result.reports[0];
        prop_assert_eq!(report.instances, n);
        prop_assert_eq!(report.finished_instances() + report.unfinished_instances, n);
        prop_assert_eq!(result.stats.leaked_inflight_retries, 0);
        // A fault requeue never consumes attempt budget: attempts stay below
        // the cap no matter how often an attempt was killed and re-dispatched.
        for e in &report.events {
            prop_assert!(e.attempt < config.max_attempts);
        }
        // Crash and preemption losses are disjoint subsets of the requeues;
        // the remainder (if any) came from task-kill bursts.
        prop_assert!(
            result.stats.crash_lost_attempts + result.stats.preempted_attempts
                <= result.stats.requeued_attempts
        );
        // Dispatches = recorded events: the kill path re-dispatches through
        // the same bookkeeping as every other attempt.
        prop_assert_eq!(result.stats.dispatched_attempts, report.events.len());
    }
}
