//! The Witt-Wastage baseline.
//!
//! Witt et al. (HPCS 2019, "Learning low-wastage memory allocations for
//! scientific workflows at IceCube") fit linear allocation functions that
//! minimise *wastage* rather than prediction error: several candidate
//! regression lines (the base fit shifted towards higher quantiles of the
//! residual distribution) are evaluated on the historical data with a wastage
//! cost model — over-allocation costs its surplus, under-allocation costs the
//! failed attempt plus a conservative retry — and the line with the lowest
//! cost is used. A failed attempt doubles the allocation.

use crate::history::History;
#[cfg(test)]
use crate::history::Observation;
use sizey_ml::dataset::Dataset;
use sizey_ml::linear::LinearRegression;
use sizey_ml::metrics::percentile;
use sizey_ml::model::Regressor;
use sizey_provenance::{TaskMachineKey, TaskRecord};
use sizey_sim::{AttemptContext, MemoryPredictor, Prediction, TaskSubmission};

/// Configuration of [`WittWastage`].
#[derive(Debug, Clone, PartialEq)]
pub struct WittWastageConfig {
    /// Residual quantiles tried as intercept shifts for the candidate lines.
    pub candidate_quantiles: Vec<f64>,
    /// Minimum number of historical observations before the model is used.
    pub min_history: usize,
    /// Penalty factor applied to an under-allocation: the wasted work of the
    /// failed attempt is approximated as `penalty × actual peak`.
    pub failure_penalty: f64,
}

impl Default for WittWastageConfig {
    fn default() -> Self {
        WittWastageConfig {
            candidate_quantiles: vec![50.0, 75.0, 90.0, 95.0, 99.0, 100.0],
            min_history: 3,
            // The original method optimises the memory-time wasted by the
            // attempt itself (a failed attempt wastes its allocation); the
            // retry cost is not part of its objective, which is why it trades
            // more task failures for tighter allocations (Fig. 8c).
            failure_penalty: 0.0,
        }
    }
}

/// Low-wastage linear allocation model.
#[derive(Debug, Default, Clone)]
pub struct WittWastage {
    config: WittWastageConfig,
    history: History,
}

impl WittWastage {
    /// Creates the predictor with default configuration.
    pub fn new() -> Self {
        WittWastage::default()
    }

    /// Creates the predictor with a custom configuration.
    pub fn with_config(config: WittWastageConfig) -> Self {
        WittWastage {
            config,
            history: History::new(),
        }
    }

    fn key(task: &TaskSubmission) -> TaskMachineKey {
        TaskMachineKey {
            task_type: task.task_type.clone(),
            machine: task.machine.clone(),
        }
    }

    /// Wastage cost of allocating `alloc` for a task that actually peaks at
    /// `peak`: surplus when sufficient, failed work plus a full re-run at the
    /// actual peak when insufficient.
    fn wastage_cost(&self, alloc: f64, peak: f64) -> f64 {
        if alloc >= peak {
            alloc - peak
        } else {
            alloc + self.config.failure_penalty * peak
        }
    }

    /// Fits the base regression and picks the intercept shift with the least
    /// historical wastage. Returns the estimate for the submitted input.
    fn estimate(&self, task: &TaskSubmission) -> Option<f64> {
        let key = Self::key(task);
        let observations = self.history.get(&key);
        if observations.len() < self.config.min_history {
            return None;
        }
        let xs: Vec<f64> = observations.iter().map(|o| o.input_bytes).collect();
        let ys: Vec<f64> = observations.iter().map(|o| o.peak_bytes).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut model = LinearRegression::with_defaults();
        model.fit(&data).ok()?;

        let base_predictions: Vec<f64> = observations
            .iter()
            .map(|o| model.predict(&[o.input_bytes]).unwrap_or(o.peak_bytes))
            .collect();
        let residuals: Vec<f64> = observations
            .iter()
            .zip(base_predictions.iter())
            .map(|(o, p)| o.peak_bytes - p)
            .collect();

        // Evaluate every candidate shift on the historical data.
        let mut best_shift = 0.0;
        let mut best_cost = f64::INFINITY;
        for &q in &self.config.candidate_quantiles {
            let shift = percentile(&residuals, q).max(0.0);
            let cost: f64 = observations
                .iter()
                .zip(base_predictions.iter())
                .map(|(o, p)| self.wastage_cost(p + shift, o.peak_bytes))
                .sum();
            if cost < best_cost {
                best_cost = cost;
                best_shift = shift;
            }
        }

        let prediction = model.predict(&[task.input_bytes]).ok()? + best_shift;
        // Floor at a small positive allocation: a non-positive estimate (from
        // extrapolating a downward-sloping fit) would make the doubling-based
        // failure handling useless.
        Some(prediction.max(128e6))
    }

    #[cfg(test)]
    fn observations(&self, key: &TaskMachineKey) -> &[Observation] {
        self.history.get(key)
    }
}

impl MemoryPredictor for WittWastage {
    fn name(&self) -> String {
        "Witt-Wastage".to_string()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        let raw = self.estimate(task);
        let base = raw.unwrap_or(task.preset_memory_bytes);
        Prediction {
            allocation_bytes: base * 2.0_f64.powi(ctx.attempt as i32),
            raw_estimate_bytes: raw,
            selected_model: None,
        }
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.history.observe(record);
    }
}

crate::history::impl_history_checkpoint!(WittWastage);

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::{MachineId, TaskOutcome, TaskTypeId};

    fn submission(input: f64) -> TaskSubmission {
        TaskSubmission {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: input,
            preset_memory_bytes: 30e9,
        }
    }

    fn success(input: f64, peak: f64) -> TaskRecord {
        TaskRecord {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: input,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 2.0,
            runtime_seconds: 60.0,
            concurrent_tasks: 0,
            queue_delay_seconds: 0.0,
            outcome: TaskOutcome::Succeeded,
        }
    }

    #[test]
    fn falls_back_to_preset_without_history() {
        let p = WittWastage::new();
        assert_eq!(
            p.predict(&submission(1e9), AttemptContext::first())
                .allocation_bytes,
            30e9
        );
    }

    #[test]
    fn wastage_cost_penalises_underallocation() {
        let p = WittWastage::new();
        assert_eq!(p.wastage_cost(5.0, 3.0), 2.0);
        // With the default penalty of 0 a failed attempt costs its own
        // allocation.
        assert_eq!(p.wastage_cost(2.0, 3.0), 2.0);
        let strict = WittWastage::with_config(WittWastageConfig {
            failure_penalty: 1.0,
            ..WittWastageConfig::default()
        });
        assert_eq!(strict.wastage_cost(2.0, 3.0), 5.0);
    }

    #[test]
    fn learns_linear_data_with_small_overallocation() {
        let mut p = WittWastage::new();
        for i in 1..=30 {
            let input = i as f64 * 1e9;
            // peak = input + 1 GB with +-0.5 GB alternating noise
            let noise = if i % 2 == 0 { 0.5e9 } else { -0.5e9 };
            p.observe(&success(input, input + 1e9 + noise));
        }
        let alloc = p
            .predict(&submission(15e9), AttemptContext::first())
            .allocation_bytes;
        // Estimate should cover the upper envelope (~16.5 GB) but stay far
        // below the 30 GB preset.
        assert!(alloc >= 15.5e9, "alloc = {alloc}");
        assert!(alloc < 20e9, "alloc = {alloc}");
    }

    #[test]
    fn shift_covers_heavy_upper_tail() {
        let mut p = WittWastage::new();
        // Mostly small peaks, occasionally double: the cheapest line must
        // still cover the expensive failures.
        for i in 1..=40 {
            let input = 1e9;
            let peak = if i % 5 == 0 { 8e9 } else { 4e9 };
            p.observe(&success(input, peak));
        }
        let alloc = p
            .predict(&submission(1e9), AttemptContext::first())
            .allocation_bytes;
        assert!(alloc >= 4e9, "must at least cover the common case: {alloc}");
    }

    #[test]
    fn doubles_on_retry_and_records_history() {
        let mut p = WittWastage::new();
        for i in 1..=5 {
            p.observe(&success(i as f64 * 1e9, 2.0 * i as f64 * 1e9));
        }
        let key = TaskMachineKey::new("t", "m");
        assert_eq!(p.observations(&key).len(), 5);
        let base = p
            .predict(&submission(3e9), AttemptContext::first())
            .allocation_bytes;
        let doubled = p
            .predict(&submission(3e9), AttemptContext::retry(1, base))
            .allocation_bytes;
        assert!((doubled - 2.0 * base).abs() < 1e-3);
    }
}
