//! # sizey-sim
//!
//! Online execution simulator substrate for the Sizey reproduction.
//!
//! The paper evaluates memory sizing methods by replaying measured workflow
//! traces through a simulated online environment with strict memory limits
//! and a configurable time-to-failure (Section III-A). This crate is that
//! environment, grown into a real discrete-event cluster simulator:
//!
//! * [`predictor::MemoryPredictor`] — the interface every sizing method
//!   (Sizey and all baselines) implements, split into a `&self` read path
//!   (`predict`) and a `&mut self` write path (`observe`); per-attempt retry
//!   state is engine-owned and passed in via [`predictor::AttemptContext`],
//! * [`inflight::RetryLedger`] — the engine's in-flight retry state, with
//!   eviction on success *and* terminal failure,
//! * [`config::SimulationConfig`] — time-to-failure, attempt budget, the
//!   8-node / 128 GB cluster dimensions, heterogeneous extra node pools and
//!   the scheduling policy,
//! * [`cluster`] — per-node occupancy with policy-driven node selection,
//! * [`faults`] — deterministic fault injection: node crashes, correlated
//!   crash storms, spot-pool preemptions and task kills compiled into
//!   virtual-clock events processed identically by both event-driven
//!   engines; killed attempts are requeued without consuming retry budget,
//! * [`queue`] — the virtual-time event heap and the pending-task queue,
//! * [`scheduler`] — the event-driven scheduler: tasks wait when no node
//!   fits (over-allocation costs makespan), [`SchedulePolicy`] picks how the
//!   queue drains, and [`schedule_workflows`] replays several workflows
//!   *concurrently* against one shared cluster,
//! * [`lifecycle`] — the snapshot/restore lifecycle:
//!   [`lifecycle::CheckpointPredictor`] captures a predictor's learned state
//!   as an event-sourced [`lifecycle::PredictorState`] journal that restores
//!   bit-identically on a fresh instance,
//! * [`replay`] — the paper's single-workflow replay engine (now backed by
//!   the scheduler, with the legacy occupancy sketch kept as
//!   [`replay_workflow_occupancy`] for reference),
//! * [`accounting`] — wastage (GBh), failure, runtime, queue-delay,
//!   model-selection and prediction-error aggregation used by every figure
//!   of the evaluation.
//!
//! ## Example
//!
//! ```
//! use sizey_sim::{replay_workflow, PresetPredictor, SimulationConfig};
//! use sizey_workflows::{generate_workflow, GeneratorConfig, profiles};
//!
//! let spec = profiles::iwd();
//! let instances = generate_workflow(&spec, &GeneratorConfig::scaled(0.02, 1));
//! let mut presets = PresetPredictor;
//! let report = replay_workflow("iwd", &instances, &mut presets, &SimulationConfig::default());
//! assert!(report.total_wastage_gbh() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod accounting;
pub mod cluster;
pub mod config;
pub mod faults;
pub mod inflight;
pub mod lifecycle;
pub mod predictor;
pub mod queue;
pub mod replay;
pub mod scheduler;

pub use accounting::{
    aggregate_method, AttemptEvent, AttemptSink, MethodAggregate, NullRecordSink, NullSink,
    RecordSink, ReplayAggregates, ReplayReport,
};
pub use cluster::{Cluster, Node, Placement, FIT_TOLERANCE};
pub use config::{NodePoolSpec, SimulationConfig};
pub use faults::{
    CrashStorm, FaultAction, FaultCause, FaultEvent, FaultPlan, NodeCrash, PoolPreemption,
    TaskKillBurst,
};
pub use inflight::RetryLedger;
pub use lifecycle::{CheckpointPredictor, CompactedCheckpoint, PredictorState, StateError};
pub use predictor::{AttemptContext, MemoryPredictor, Prediction, PresetPredictor, TaskSubmission};
pub use replay::{
    replay_with, replay_workflow, replay_workflow_occupancy, replay_workflow_streaming,
    MIN_ALLOCATION_BYTES,
};
pub use scheduler::{
    schedule_workflows, schedule_workflows_streaming, MultiReplayReport, SchedulePolicy,
    ScheduledAttempt, Scheduler, SchedulerStats, StreamingReplayReport, StreamingTenant,
    StreamingTenantReport, WorkflowTenant,
};
