//! Quickstart: size workflow tasks with Sizey.
//!
//! This example shows the smallest useful loop: feed Sizey the monitoring
//! records of finished tasks and ask it to size the next submission. In a
//! real deployment the records come from the workflow management system's
//! provenance database; here we fabricate a linear task type.
//!
//! Run with `cargo run --example quickstart`.

use sizey_suite::prelude::*;

fn main() {
    let mut sizey = SizeyPredictor::with_defaults();

    // A task we want to size: 3.2 GB of input, and the workflow developer
    // requested a generous 16 GB for this task type.
    let submission = TaskSubmission {
        workflow: "rnaseq".into(),
        task_type: TaskTypeId::new("MarkDuplicates"),
        machine: MachineId::new("epyc7282-128g"),
        sequence: 1000,
        input_bytes: 3.2e9,
        preset_memory_bytes: 16e9,
    };

    // Before any history exists, Sizey falls back to the user preset.
    let cold = sizey.predict(&submission, AttemptContext::first());
    println!(
        "cold start     : allocate {:>6.2} GB (user preset, no history yet)",
        cold.allocation_bytes / 1e9
    );

    // Feed monitoring data of finished tasks: peak ≈ 1.3 × input + 0.8 GB.
    for i in 0..30u64 {
        let input = 1.0e9 + i as f64 * 0.15e9;
        let peak = 1.3 * input + 0.8e9;
        sizey.observe(&TaskRecord {
            workflow: "rnaseq".into(),
            task_type: TaskTypeId::new("MarkDuplicates"),
            machine: MachineId::new("epyc7282-128g"),
            sequence: i,
            input_bytes: input,
            peak_memory_bytes: peak,
            allocated_memory_bytes: 16e9,
            runtime_seconds: 420.0,
            concurrent_tasks: 4,
            queue_delay_seconds: 0.0,
            outcome: TaskOutcome::Succeeded,
        });
    }

    // With history, Sizey's model pool takes over.
    let warm = sizey.predict(&submission, AttemptContext::first());
    let truth = 1.3 * submission.input_bytes + 0.8e9;
    println!(
        "after 30 tasks : allocate {:>6.2} GB (raw estimate {:.2} GB, model: {}, true peak {:.2} GB)",
        warm.allocation_bytes / 1e9,
        warm.raw_estimate_bytes.unwrap_or(0.0) / 1e9,
        warm.selected_model.unwrap_or("-"),
        truth / 1e9
    );
    println!(
        "memory saved vs preset: {:.2} GB per task",
        (16e9 - warm.allocation_bytes) / 1e9
    );

    // If the task still fails, Sizey escalates to the largest peak it has
    // ever seen, then doubles. The allocation the failed attempt ran with is
    // engine-owned state, passed in through the retry context.
    let retry = sizey.predict(&submission, AttemptContext::retry(1, warm.allocation_bytes));
    println!(
        "after a failure: allocate {:>6.2} GB (max observed so far)",
        retry.allocation_bytes / 1e9
    );
}
