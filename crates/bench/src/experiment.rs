//! The spec-driven experiment entry point.
//!
//! An [`ExperimentSpec`] is the single description of one evaluation run:
//! methods × workflow profiles × seeds × scheduling policies, plus the
//! simulated cluster. It can be
//!
//! * built in code with [`Experiment::builder`]
//!   (`Experiment::builder().method(..).profile(..).seeds(..).run()`),
//! * loaded from a TOML file ([`ExperimentSpec::from_toml`] /
//!   [`from_toml_file`](ExperimentSpec::from_toml_file)) — the format the
//!   `experiment` binary consumes,
//! * serialised back out losslessly ([`ExperimentSpec::to_toml`]), which is
//!   how the `experiment` binary stamps its checkpoint directory with the
//!   exact spec that produced it.
//!
//! Running a spec delegates to the parallel [sweep runner](crate::sweep):
//! [`run`](ExperimentSpec::run) returns the same cells `run_sweep` would for
//! the equivalent [`SweepSpec`] (the integration suite pins this), and
//! [`run_checkpointed`](ExperimentSpec::run_checkpointed) additionally hands
//! back each cell's trained-predictor checkpoint for warm starts.
//!
//! # Spec format
//!
//! ```toml
//! name = "smoke"
//! scale = 0.02              # fraction of the paper's task volume
//! seeds = [3, 4]
//! profiles = ["iwd"]        # workflow profiles (WORKFLOW_NAMES)
//! policies = ["first-fit"]  # scheduling policies
//!
//! [sim]                     # optional; defaults to the paper's cluster
//! time_to_failure = 1.0
//! max_attempts = 12
//!
//! [drift]                   # optional mid-run workload drift
//! changepoint = 200         # instance sequence where the regime changes
//! memory_scale = 2.0
//! slope_delta_bytes_per_input_byte = 1.5
//!
//! [[node_crash]]            # optional fault injection (event-driven engine)
//! time_seconds = 600.0
//! node = 0
//! down_seconds = inf
//!
//! [[crash_storm]]
//! time_seconds = 1200.0
//! nodes = 3
//! down_seconds = 900.0
//! seed = 7
//!
//! [[pool_preemption]]
//! pool = 1
//! time_seconds = 1800.0
//! return_after_seconds = 600.0
//!
//! [[task_kill]]
//! time_seconds = 300.0
//! tasks = 4
//!
//! [[method]]
//! kind = "sizey"            # any registry kind; omitted keys keep defaults
//! alpha = 0.0
//!
//! [[method]]
//! kind = "witt-percentile"
//! percentile = 95.0
//! ```
//!
//! Omitting `methods` entirely runs the paper's six-method suite; omitting
//! `profiles` runs all six workflows.

use crate::registry::{invalid, need_float, need_str, need_usize, MethodSpec, SpecError};
use crate::sweep::{run_sweep, run_sweep_with_states, SweepCell, SweepSpec};
use crate::toml_lite::{write as toml_write, TomlDocument, TomlTable};
use sizey_sim::{
    CrashStorm, FaultPlan, NodeCrash, NodePoolSpec, PoolPreemption, PredictorState, SchedulePolicy,
    SimulationConfig, TaskKillBurst,
};
use sizey_workflows::DriftSpec;
use std::path::Path;

/// A complete, validated experiment description. See the [module
/// docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (used in banners and checkpoint directories).
    pub name: String,
    /// Sizing methods to compare.
    pub methods: Vec<MethodSpec>,
    /// Workflow profiles to replay (entries of
    /// [`sizey_workflows::WORKFLOW_NAMES`]).
    pub profiles: Vec<String>,
    /// Workload-generation seeds.
    pub seeds: Vec<u64>,
    /// Scheduling policies to compare.
    pub policies: Vec<SchedulePolicy>,
    /// Fraction of the paper's task volume to generate per workload.
    pub scale: f64,
    /// Optional mid-run workload drift applied to every workload; also turns
    /// on per-cell [`time_to_recover`](crate::recovery::RecoveryTracker)
    /// tracking. Parsed from the `[drift]` table.
    pub drift: Option<DriftSpec>,
    /// Simulated cluster configuration (the policy field is overridden per
    /// cell by `policies`). Fault injection rides in
    /// [`SimulationConfig::faults`], parsed from the `[[node_crash]]`,
    /// `[[crash_storm]]`, `[[pool_preemption]]` and `[[task_kill]]` tables.
    pub sim: SimulationConfig,
}

/// Alias for [`ExperimentSpec`] matching the builder-style entry point
/// (`Experiment::builder()…run()`).
pub type Experiment = ExperimentSpec;

impl Default for ExperimentSpec {
    /// The paper's full evaluation at smoke scale: six methods, six
    /// workflows, one seed, first-fit.
    fn default() -> Self {
        ExperimentSpec {
            name: "experiment".to_string(),
            methods: MethodSpec::default_suite(),
            profiles: sizey_workflows::WORKFLOW_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            seeds: vec![42],
            policies: vec![SchedulePolicy::FirstFit],
            scale: 0.1,
            drift: None,
            sim: SimulationConfig::default(),
        }
    }
}

impl ExperimentSpec {
    /// Starts a builder pre-populated with the defaults of
    /// [`ExperimentSpec::default`]; the first call to `method`/`profile`/
    /// `seed`/`policy` clears the corresponding default list.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// Validates the spec: non-empty product, known profiles, positive
    /// scale.
    pub fn validate(&self) -> Result<(), SpecError> {
        for list in [
            ("methods", self.methods.is_empty()),
            ("profiles", self.profiles.is_empty()),
            ("seeds", self.seeds.is_empty()),
            ("policies", self.policies.is_empty()),
        ] {
            if list.1 {
                return Err(SpecError::Empty {
                    what: list.0.to_string(),
                });
            }
        }
        // NaN fails both comparisons, so it is rejected alongside zero and
        // negative scales.
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(SpecError::Empty {
                what: format!("scale ({})", self.scale),
            });
        }
        for profile in &self.profiles {
            if sizey_workflows::workflow_by_name(profile).is_none() {
                return Err(SpecError::UnknownWorkflow {
                    name: profile.clone(),
                });
            }
        }
        Ok(())
    }

    /// The equivalent [`SweepSpec`] the sweep runner executes.
    pub fn sweep_spec(&self) -> SweepSpec {
        SweepSpec {
            workflows: self.profiles.clone(),
            methods: self.methods.clone(),
            seeds: self.seeds.clone(),
            policies: self.policies.clone(),
            scale: self.scale,
            drift: self.drift,
            sim: self.sim.clone(),
        }
    }

    /// Validates and runs the experiment, returning one [`SweepCell`] per
    /// (profile, method, seed, policy) in cartesian order — bit-identical to
    /// [`run_sweep`] on [`sweep_spec`](ExperimentSpec::sweep_spec).
    pub fn run(&self) -> Result<Vec<SweepCell>, SpecError> {
        self.validate()?;
        Ok(run_sweep(&self.sweep_spec()))
    }

    /// Like [`run`](ExperimentSpec::run), but each cell also returns the
    /// trained predictor's checkpoint for the checkpoint directory /
    /// warm-start path.
    pub fn run_checkpointed(&self) -> Result<Vec<(SweepCell, PredictorState)>, SpecError> {
        self.validate()?;
        Ok(run_sweep_with_states(&self.sweep_spec()))
    }

    /// Number of cells in the cartesian product.
    pub fn len(&self) -> usize {
        self.methods.len() * self.profiles.len() * self.seeds.len() * self.policies.len()
    }

    /// True when the product is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parses a spec from TOML text (see the [module docs](self) for the
    /// format). The result is validated.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        let doc = TomlDocument::parse(text)?;
        let mut spec = ExperimentSpec::default();
        let context = "the root table";
        for (key, value) in &doc.root.entries {
            match key.as_str() {
                "name" => spec.name = need_str(context, key, value)?.to_string(),
                "scale" => spec.scale = need_float(context, key, value)?,
                "seeds" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| invalid(context, key, "expected an array of seeds"))?;
                    spec.seeds = items
                        .iter()
                        .map(|v| {
                            v.as_int()
                                .filter(|i| *i >= 0)
                                .map(|i| i as u64)
                                .ok_or_else(|| {
                                    invalid(context, key, "seeds must be non-negative integers")
                                })
                        })
                        .collect::<Result<_, _>>()?;
                }
                "profiles" => {
                    let items = value.as_array().ok_or_else(|| {
                        invalid(context, key, "expected an array of profile names")
                    })?;
                    spec.profiles = items
                        .iter()
                        .map(|v| need_str(context, key, v).map(str::to_string))
                        .collect::<Result<_, _>>()?;
                }
                "policies" => {
                    let items = value.as_array().ok_or_else(|| {
                        invalid(context, key, "expected an array of policy names")
                    })?;
                    spec.policies = items
                        .iter()
                        .map(|v| {
                            let name = need_str(context, key, v)?;
                            SchedulePolicy::from_name(name).ok_or_else(|| {
                                SpecError::UnknownPolicy {
                                    name: name.to_string(),
                                }
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
                _ => {
                    return Err(SpecError::UnknownKey {
                        context: context.to_string(),
                        key: key.clone(),
                    })
                }
            }
        }
        if let Some(sim_table) = doc.table("sim") {
            spec.sim = sim_from_table(sim_table, doc.array_of("node_pool"))?;
        } else if !doc.array_of("node_pool").is_empty() {
            spec.sim = sim_from_table(&TomlTable::default(), doc.array_of("node_pool"))?;
        }
        if let Some(drift_table) = doc.table("drift") {
            spec.drift = Some(drift_from_table(drift_table)?);
        }
        let faults = faults_from_doc(&doc)?;
        if !faults.is_empty() {
            spec.sim.faults = Some(faults);
        }
        for (name, _) in &doc.tables {
            if name != "sim" && name != "drift" {
                return Err(SpecError::UnknownKey {
                    context: "the document".to_string(),
                    key: format!("[{name}]"),
                });
            }
        }
        const ARRAY_TABLES: [&str; 6] = [
            "method",
            "node_pool",
            "node_crash",
            "crash_storm",
            "pool_preemption",
            "task_kill",
        ];
        for (name, _) in &doc.array_tables {
            if !ARRAY_TABLES.contains(&name.as_str()) {
                return Err(SpecError::UnknownKey {
                    context: "the document".to_string(),
                    key: format!("[[{name}]]"),
                });
            }
        }
        let method_tables = doc.array_of("method");
        if !method_tables.is_empty() {
            spec.methods = method_tables
                .into_iter()
                .map(MethodSpec::from_table)
                .collect::<Result<_, _>>()?;
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Reads and parses a spec file.
    pub fn from_toml_file(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path).map_err(SpecError::Io)?;
        Self::from_toml(&text)
    }

    /// Serialises the spec as TOML — the lossless inverse of
    /// [`from_toml`](ExperimentSpec::from_toml).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = {}\n", toml_write::string(&self.name)));
        out.push_str(&format!("scale = {}\n", toml_write::float(self.scale)));
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        out.push_str(&format!("seeds = [{}]\n", seeds.join(", ")));
        let profiles: Vec<String> = self
            .profiles
            .iter()
            .map(|p| toml_write::string(p))
            .collect();
        out.push_str(&format!("profiles = [{}]\n", profiles.join(", ")));
        let policies: Vec<String> = self
            .policies
            .iter()
            .map(|p| toml_write::string(p.name()))
            .collect();
        out.push_str(&format!("policies = [{}]\n", policies.join(", ")));
        out.push('\n');
        out.push_str("[sim]\n");
        out.push_str(&format!(
            "time_to_failure = {}\n",
            toml_write::float(self.sim.time_to_failure)
        ));
        out.push_str(&format!("max_attempts = {}\n", self.sim.max_attempts));
        out.push_str(&format!("node_count = {}\n", self.sim.node_count));
        out.push_str(&format!(
            "node_memory_bytes = {}\n",
            toml_write::float(self.sim.node_memory_bytes)
        ));
        out.push_str(&format!("slots_per_node = {}\n", self.sim.slots_per_node));
        out.push_str(&format!("backfill_window = {}\n", self.sim.backfill_window));
        out.push_str(&format!(
            "submit_interval_seconds = {}\n",
            toml_write::float(self.sim.submit_interval_seconds)
        ));
        for pool in &self.sim.extra_node_pools {
            out.push('\n');
            out.push_str("[[node_pool]]\n");
            out.push_str(&format!("count = {}\n", pool.count));
            out.push_str(&format!(
                "memory_bytes = {}\n",
                toml_write::float(pool.memory_bytes)
            ));
            out.push_str(&format!("slots = {}\n", pool.slots));
        }
        if let Some(drift) = &self.drift {
            out.push('\n');
            out.push_str("[drift]\n");
            out.push_str(&format!("changepoint = {}\n", drift.changepoint));
            out.push_str(&format!(
                "memory_scale = {}\n",
                toml_write::float(drift.memory_scale)
            ));
            out.push_str(&format!(
                "slope_delta_bytes_per_input_byte = {}\n",
                toml_write::float(drift.slope_delta_bytes_per_input_byte)
            ));
        }
        if let Some(faults) = &self.sim.faults {
            for crash in &faults.node_crashes {
                out.push('\n');
                out.push_str("[[node_crash]]\n");
                out.push_str(&format!(
                    "time_seconds = {}\n",
                    toml_write::float(crash.time_seconds)
                ));
                out.push_str(&format!("node = {}\n", crash.node));
                out.push_str(&format!(
                    "down_seconds = {}\n",
                    toml_write::float(crash.down_seconds)
                ));
            }
            for storm in &faults.storms {
                out.push('\n');
                out.push_str("[[crash_storm]]\n");
                out.push_str(&format!(
                    "time_seconds = {}\n",
                    toml_write::float(storm.time_seconds)
                ));
                out.push_str(&format!("nodes = {}\n", storm.nodes));
                out.push_str(&format!(
                    "down_seconds = {}\n",
                    toml_write::float(storm.down_seconds)
                ));
                out.push_str(&format!("seed = {}\n", storm.seed));
            }
            for preemption in &faults.pool_preemptions {
                out.push('\n');
                out.push_str("[[pool_preemption]]\n");
                out.push_str(&format!("pool = {}\n", preemption.pool));
                out.push_str(&format!(
                    "time_seconds = {}\n",
                    toml_write::float(preemption.time_seconds)
                ));
                out.push_str(&format!(
                    "return_after_seconds = {}\n",
                    toml_write::float(preemption.return_after_seconds)
                ));
            }
            for burst in &faults.task_kills {
                out.push('\n');
                out.push_str("[[task_kill]]\n");
                out.push_str(&format!(
                    "time_seconds = {}\n",
                    toml_write::float(burst.time_seconds)
                ));
                out.push_str(&format!("tasks = {}\n", burst.tasks));
            }
        }
        for method in &self.methods {
            out.push('\n');
            out.push_str(&method.to_toml());
        }
        out
    }
}

fn drift_from_table(table: &TomlTable) -> Result<DriftSpec, SpecError> {
    let context = "[drift]";
    let mut drift = DriftSpec {
        changepoint: 0,
        memory_scale: 1.0,
        slope_delta_bytes_per_input_byte: 0.0,
    };
    for (key, value) in &table.entries {
        match key.as_str() {
            "changepoint" => drift.changepoint = need_usize(context, key, value)? as u64,
            "memory_scale" => drift.memory_scale = need_float(context, key, value)?,
            "slope_delta_bytes_per_input_byte" => {
                drift.slope_delta_bytes_per_input_byte = need_float(context, key, value)?
            }
            _ => {
                return Err(SpecError::UnknownKey {
                    context: context.to_string(),
                    key: key.clone(),
                })
            }
        }
    }
    Ok(drift)
}

fn faults_from_doc(doc: &TomlDocument) -> Result<FaultPlan, SpecError> {
    let mut faults = FaultPlan::default();
    for table in doc.array_of("node_crash") {
        let context = "[[node_crash]]";
        let mut crash = NodeCrash {
            time_seconds: 0.0,
            node: 0,
            down_seconds: f64::INFINITY,
        };
        for (key, value) in &table.entries {
            match key.as_str() {
                "time_seconds" => crash.time_seconds = need_float(context, key, value)?,
                "node" => crash.node = need_usize(context, key, value)?,
                "down_seconds" => crash.down_seconds = need_float(context, key, value)?,
                _ => {
                    return Err(SpecError::UnknownKey {
                        context: context.to_string(),
                        key: key.clone(),
                    })
                }
            }
        }
        faults.node_crashes.push(crash);
    }
    for table in doc.array_of("crash_storm") {
        let context = "[[crash_storm]]";
        let mut storm = CrashStorm {
            time_seconds: 0.0,
            nodes: 1,
            down_seconds: f64::INFINITY,
            seed: 0,
        };
        for (key, value) in &table.entries {
            match key.as_str() {
                "time_seconds" => storm.time_seconds = need_float(context, key, value)?,
                "nodes" => storm.nodes = need_usize(context, key, value)?,
                "down_seconds" => storm.down_seconds = need_float(context, key, value)?,
                "seed" => storm.seed = need_usize(context, key, value)? as u64,
                _ => {
                    return Err(SpecError::UnknownKey {
                        context: context.to_string(),
                        key: key.clone(),
                    })
                }
            }
        }
        faults.storms.push(storm);
    }
    for table in doc.array_of("pool_preemption") {
        let context = "[[pool_preemption]]";
        let mut preemption = PoolPreemption {
            pool: 0,
            time_seconds: 0.0,
            return_after_seconds: f64::INFINITY,
        };
        for (key, value) in &table.entries {
            match key.as_str() {
                "pool" => preemption.pool = need_usize(context, key, value)?,
                "time_seconds" => preemption.time_seconds = need_float(context, key, value)?,
                "return_after_seconds" => {
                    preemption.return_after_seconds = need_float(context, key, value)?
                }
                _ => {
                    return Err(SpecError::UnknownKey {
                        context: context.to_string(),
                        key: key.clone(),
                    })
                }
            }
        }
        faults.pool_preemptions.push(preemption);
    }
    for table in doc.array_of("task_kill") {
        let context = "[[task_kill]]";
        let mut burst = TaskKillBurst {
            time_seconds: 0.0,
            tasks: 1,
        };
        for (key, value) in &table.entries {
            match key.as_str() {
                "time_seconds" => burst.time_seconds = need_float(context, key, value)?,
                "tasks" => burst.tasks = need_usize(context, key, value)?,
                _ => {
                    return Err(SpecError::UnknownKey {
                        context: context.to_string(),
                        key: key.clone(),
                    })
                }
            }
        }
        faults.task_kills.push(burst);
    }
    Ok(faults)
}

fn sim_from_table(
    table: &TomlTable,
    pool_tables: Vec<&TomlTable>,
) -> Result<SimulationConfig, SpecError> {
    let context = "[sim]";
    let mut sim = SimulationConfig::default();
    for (key, value) in &table.entries {
        match key.as_str() {
            "time_to_failure" => sim.time_to_failure = need_float(context, key, value)?,
            "max_attempts" => {
                sim.max_attempts = need_usize(context, key, value)?.min(u32::MAX as usize) as u32
            }
            "node_count" => sim.node_count = need_usize(context, key, value)?,
            "node_memory_bytes" => sim.node_memory_bytes = need_float(context, key, value)?,
            "slots_per_node" => sim.slots_per_node = need_usize(context, key, value)?,
            "backfill_window" => sim.backfill_window = need_usize(context, key, value)?,
            "submit_interval_seconds" => {
                sim.submit_interval_seconds = need_float(context, key, value)?
            }
            _ => {
                return Err(SpecError::UnknownKey {
                    context: context.to_string(),
                    key: key.clone(),
                })
            }
        }
    }
    for pool_table in pool_tables {
        let context = "[[node_pool]]";
        let mut pool = NodePoolSpec {
            count: 1,
            memory_bytes: sim.node_memory_bytes,
            slots: sim.slots_per_node,
        };
        for (key, value) in &pool_table.entries {
            match key.as_str() {
                "count" => pool.count = need_usize(context, key, value)?,
                "memory_bytes" => pool.memory_bytes = need_float(context, key, value)?,
                "slots" => pool.slots = need_usize(context, key, value)?,
                _ => {
                    return Err(SpecError::UnknownKey {
                        context: context.to_string(),
                        key: key.clone(),
                    })
                }
            }
        }
        sim.extra_node_pools.push(pool);
    }
    Ok(sim)
}

/// Builder for [`ExperimentSpec`] — the programmatic twin of the TOML
/// format.
///
/// ```
/// use sizey_bench::{Experiment, MethodSpec};
/// use sizey_sim::SchedulePolicy;
///
/// let cells = Experiment::builder()
///     .name("quick-look")
///     .method(MethodSpec::sizey_defaults())
///     .method(MethodSpec::Preset)
///     .profile("iwd")
///     .seeds([3, 4])
///     .policy(SchedulePolicy::FirstFit)
///     .scale(0.02)
///     .run()
///     .unwrap();
/// assert_eq!(cells.len(), 4, "2 methods x 1 profile x 2 seeds x 1 policy");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExperimentBuilder {
    name: Option<String>,
    methods: Vec<MethodSpec>,
    profiles: Vec<String>,
    seeds: Vec<u64>,
    policies: Vec<SchedulePolicy>,
    scale: Option<f64>,
    drift: Option<DriftSpec>,
    sim: Option<SimulationConfig>,
}

impl ExperimentBuilder {
    /// Sets the experiment name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Adds one method (the default suite is used when none are added).
    pub fn method(mut self, method: MethodSpec) -> Self {
        self.methods.push(method);
        self
    }

    /// Adds several methods.
    pub fn methods(mut self, methods: impl IntoIterator<Item = MethodSpec>) -> Self {
        self.methods.extend(methods);
        self
    }

    /// Adds one workflow profile (all six are used when none are added).
    pub fn profile(mut self, profile: impl Into<String>) -> Self {
        self.profiles.push(profile.into());
        self
    }

    /// Adds several workflow profiles.
    pub fn profiles(mut self, profiles: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.profiles.extend(profiles.into_iter().map(Into::into));
        self
    }

    /// Adds one workload seed (42 is used when none are added).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Adds several workload seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Adds one scheduling policy (first-fit is used when none are added).
    pub fn policy(mut self, policy: SchedulePolicy) -> Self {
        self.policies.push(policy);
        self
    }

    /// Adds several scheduling policies.
    pub fn policies(mut self, policies: impl IntoIterator<Item = SchedulePolicy>) -> Self {
        self.policies.extend(policies);
        self
    }

    /// Sets the workload scale.
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Sets the mid-run workload drift.
    pub fn drift(mut self, drift: DriftSpec) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Sets the simulated cluster configuration.
    pub fn sim(mut self, sim: SimulationConfig) -> Self {
        self.sim = Some(sim);
        self
    }

    /// Finalises and validates the spec.
    pub fn build(self) -> Result<ExperimentSpec, SpecError> {
        let defaults = ExperimentSpec::default();
        let spec = ExperimentSpec {
            name: self.name.unwrap_or(defaults.name),
            methods: if self.methods.is_empty() {
                defaults.methods
            } else {
                self.methods
            },
            profiles: if self.profiles.is_empty() {
                defaults.profiles
            } else {
                self.profiles
            },
            seeds: if self.seeds.is_empty() {
                defaults.seeds
            } else {
                self.seeds
            },
            policies: if self.policies.is_empty() {
                defaults.policies
            } else {
                self.policies
            },
            scale: self.scale.unwrap_or(defaults.scale),
            drift: self.drift,
            sim: self.sim.unwrap_or(defaults.sim),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Builds the spec and runs it (see [`ExperimentSpec::run`]).
    pub fn run(self) -> Result<Vec<SweepCell>, SpecError> {
        self.build()?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_core::SizeyConfig;

    #[test]
    fn default_spec_is_valid_and_covers_the_paper_suite() {
        let spec = ExperimentSpec::default();
        spec.validate().unwrap();
        assert_eq!(spec.methods.len(), 6);
        assert_eq!(spec.profiles.len(), 6);
        assert_eq!(spec.len(), 36);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let spec = Experiment::builder()
            .name("b")
            .method(MethodSpec::Preset)
            .profile("iwd")
            .seed(7)
            .scale(0.02)
            .build()
            .unwrap();
        assert_eq!(spec.name, "b");
        assert_eq!(spec.methods, vec![MethodSpec::Preset]);
        assert_eq!(spec.profiles, vec!["iwd".to_string()]);
        assert_eq!(spec.seeds, vec![7]);
        assert_eq!(spec.policies, vec![SchedulePolicy::FirstFit]);
    }

    #[test]
    fn validation_rejects_unknown_profiles_and_bad_scales() {
        assert!(matches!(
            Experiment::builder().profile("not-a-workflow").build(),
            Err(SpecError::UnknownWorkflow { .. })
        ));
        assert!(matches!(
            Experiment::builder().scale(0.0).build(),
            Err(SpecError::Empty { .. })
        ));
    }

    #[test]
    fn toml_round_trip_is_lossless() {
        let spec = ExperimentSpec {
            name: "round-trip".to_string(),
            methods: vec![
                MethodSpec::Sizey(SizeyConfig::default().with_alpha(0.25)),
                MethodSpec::Preset,
            ],
            profiles: vec!["iwd".to_string(), "rnaseq".to_string()],
            seeds: vec![1, 2, 3],
            policies: vec![SchedulePolicy::BestFit, SchedulePolicy::Backfill],
            scale: 0.02,
            drift: Some(DriftSpec {
                changepoint: 150,
                memory_scale: 2.5,
                slope_delta_bytes_per_input_byte: 0.75,
            }),
            sim: SimulationConfig {
                time_to_failure: 0.5,
                node_count: 2,
                ..SimulationConfig::default()
            }
            .with_extra_pool(NodePoolSpec {
                count: 1,
                memory_bytes: 512e9,
                slots: 64,
            })
            .with_faults(
                FaultPlan::default()
                    .with_node_crash(NodeCrash {
                        time_seconds: 600.0,
                        node: 1,
                        down_seconds: f64::INFINITY,
                    })
                    .with_storm(CrashStorm {
                        time_seconds: 1200.0,
                        nodes: 2,
                        down_seconds: 900.0,
                        seed: 7,
                    })
                    .with_pool_preemption(PoolPreemption {
                        pool: 1,
                        time_seconds: 1800.0,
                        return_after_seconds: 600.0,
                    })
                    .with_task_kills(TaskKillBurst {
                        time_seconds: 300.0,
                        tasks: 4,
                    }),
            ),
        };
        let text = spec.to_toml();
        let parsed = ExperimentSpec::from_toml(&text).unwrap_or_else(|e| panic!("{text}\n{e}"));
        assert_eq!(parsed, spec, "round-trip changed the spec:\n{text}");
    }

    #[test]
    fn from_toml_applies_defaults_for_omitted_sections() {
        let spec = ExperimentSpec::from_toml("profiles = [\"iwd\"]\nscale = 0.02\n").unwrap();
        assert_eq!(spec.methods, MethodSpec::default_suite());
        assert_eq!(spec.seeds, vec![42]);
        assert_eq!(spec.sim, SimulationConfig::default());
        assert_eq!(spec.drift, None);
        assert_eq!(spec.sim.faults, None);
    }

    #[test]
    fn from_toml_rejects_unknown_drift_and_fault_keys() {
        assert!(matches!(
            ExperimentSpec::from_toml("[drift]\nchange_point = 5\n"),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            ExperimentSpec::from_toml("[[node_crash]]\nnode_index = 0\n"),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            ExperimentSpec::from_toml("[[crash_storm]]\nvictims = 2\n"),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            ExperimentSpec::from_toml("[[preemption]]\npool = 0\n"),
            Err(SpecError::UnknownKey { .. })
        ));
    }

    #[test]
    fn fault_tables_parse_into_the_sim_config() {
        let spec = ExperimentSpec::from_toml(
            "profiles = [\"iwd\"]\nscale = 0.02\n\n[[node_crash]]\ntime_seconds = 60.0\nnode = 1\ndown_seconds = inf\n\n[[task_kill]]\ntime_seconds = 30.0\ntasks = 2\n",
        )
        .unwrap();
        let faults = spec.sim.faults.expect("fault tables populate sim.faults");
        assert_eq!(faults.node_crashes.len(), 1);
        assert_eq!(faults.node_crashes[0].node, 1);
        assert!(faults.node_crashes[0].down_seconds.is_infinite());
        assert_eq!(faults.task_kills.len(), 1);
        assert_eq!(faults.task_kills[0].tasks, 2);
        assert!(faults.storms.is_empty());
    }

    #[test]
    fn from_toml_rejects_unknown_sections_keys_and_policies() {
        assert!(matches!(
            ExperimentSpec::from_toml("scalee = 0.1\n"),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            ExperimentSpec::from_toml("[simm]\nx = 1\n"),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            ExperimentSpec::from_toml("policies = [\"round-robin\"]\n"),
            Err(SpecError::UnknownPolicy { .. })
        ));
        assert!(matches!(
            ExperimentSpec::from_toml("profiles = [\"galaxy-brain\"]\n"),
            Err(SpecError::UnknownWorkflow { .. })
        ));
    }
}
