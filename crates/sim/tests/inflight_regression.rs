//! Regression suite for the in-flight allocation leak.
//!
//! Predictors used to own the per-task retry baseline and evicted it only
//! on success, so every task that exhausted `max_attempts` leaked one map
//! entry — unbounded memory for a long-running service. The state now lives
//! in the engine's [`RetryLedger`](sizey_sim::RetryLedger) with eviction on
//! success *and* terminal failure; these tests replay workloads where tasks
//! terminally fail and assert the ledger drains to empty (while having
//! genuinely been used, per its high-water mark).

use sizey_sim::{
    schedule_workflows, FaultPlan, PresetPredictor, SchedulePolicy, SimulationConfig,
    TaskKillBurst, WorkflowTenant,
};
use sizey_workflows::TaskInstance;

fn instance(seq: u64, peak: f64, runtime: f64, preset: f64) -> TaskInstance {
    TaskInstance {
        workflow: "wf".into(),
        task_type: sizey_provenance::TaskTypeId::new("t"),
        machine: sizey_provenance::MachineId::new("m"),
        sequence: seq,
        input_bytes: 1e9,
        true_peak_bytes: peak,
        base_runtime_seconds: runtime,
        preset_memory_bytes: preset,
        cpu_utilization_pct: 100.0,
        io_read_bytes: 1e9,
        io_write_bytes: 1e9,
    }
}

/// Every task is never satisfiable (true peak beyond the largest node, so
/// clamped attempts always fail): the worst case for the old leak — one
/// stranded entry per task, forever. The replacement state must end empty.
#[test]
fn never_satisfiable_tasks_leave_the_retry_ledger_empty() {
    let n = 50u64;
    let instances: Vec<TaskInstance> = (0..n).map(|i| instance(i, 500e9, 30.0, 4e9)).collect();
    let config = SimulationConfig {
        max_attempts: 4,
        ..SimulationConfig::default()
    };
    let result = schedule_workflows(
        vec![WorkflowTenant::new(
            "wf",
            instances,
            Box::new(PresetPredictor),
        )],
        &config,
    );
    let report = &result.reports[0];
    assert_eq!(report.unfinished_instances, n as usize);
    assert_eq!(report.events.len(), 4 * n as usize);
    // The ledger was actually exercised by the retry chains...
    assert!(
        result.stats.peak_inflight_retries >= 1,
        "retry chains must flow through the ledger"
    );
    // ...and terminal failures evicted every entry: nothing leaked. Before
    // the fix the equivalent map held one entry per task here (50), growing
    // without bound in a long-running service.
    assert_eq!(result.stats.leaked_inflight_retries, 0);
}

/// Mixed outcome workload across two tenants: some tasks succeed first try,
/// some succeed after retries, some exhaust the budget. All three paths must
/// retire their ledger entries.
#[test]
fn mixed_success_retry_and_terminal_failure_all_evict() {
    let mk = |offset: u64| -> Vec<TaskInstance> {
        (0..30)
            .map(|i| {
                let seq = offset + i;
                match i % 3 {
                    // Succeeds immediately (preset covers the peak).
                    0 => instance(seq, 1e9, 20.0, 2e9),
                    // Fails, then succeeds on the doubled retry.
                    1 => instance(seq, 3e9, 20.0, 2e9),
                    // Never satisfiable.
                    _ => instance(seq, 500e9, 20.0, 2e9),
                }
            })
            .collect()
    };
    let config = SimulationConfig {
        max_attempts: 3,
        ..SimulationConfig::default().with_policy(SchedulePolicy::Backfill)
    };
    let result = schedule_workflows(
        vec![
            WorkflowTenant::new("a", mk(0), Box::new(PresetPredictor)),
            WorkflowTenant::new("b", mk(1000), Box::new(PresetPredictor)),
        ],
        &config,
    );
    let unfinished: usize = result.reports.iter().map(|r| r.unfinished_instances).sum();
    assert_eq!(unfinished, 20, "10 impossible tasks per tenant");
    assert!(result.stats.peak_inflight_retries >= 1);
    assert_eq!(result.stats.leaked_inflight_retries, 0);
}

/// Fault-injection regression: a fault-killed attempt is requeued with an
/// unchanged attempt number and must NOT look like an OOM — no retry budget
/// consumed, no max-observed-then-double escalation, no failure recorded.
/// Before the fault layer's requeue path bypassed the retry ledger, the
/// killed attempts would have re-entered as doubled attempt-1 retries here.
#[test]
fn fault_killed_attempts_requeue_without_consuming_budget_or_doubling() {
    let n = 20u64;
    // Every task succeeds first try (preset 4 GB covers the 1 GB peak) and
    // runs for 60 s; the kill burst at t=30 lands mid-flight.
    let instances: Vec<TaskInstance> = (0..n).map(|i| instance(i, 1e9, 60.0, 4e9)).collect();
    let config = SimulationConfig {
        max_attempts: 3,
        ..SimulationConfig::default()
    }
    .with_faults(FaultPlan::default().with_task_kills(TaskKillBurst {
        time_seconds: 30.0,
        tasks: 5,
    }));
    let result = schedule_workflows(
        vec![WorkflowTenant::new(
            "wf",
            instances,
            Box::new(PresetPredictor),
        )],
        &config,
    );
    let report = &result.reports[0];
    assert_eq!(result.stats.requeued_attempts, 5);
    assert_eq!(report.unfinished_instances, 0);
    // The engine records one event per *dispatch*, so each killed attempt
    // shows up twice: once for the interrupted run and once for the requeue.
    // Crucially every event — including the five re-dispatches — is attempt
    // 0 at the original preset allocation; a doubling escalation would show
    // 8 GB attempt-1 events here, and a budget leak would drop instances.
    assert_eq!(report.events.len(), n as usize + 5);
    assert!(report.events.iter().all(|e| e.attempt == 0 && e.success));
    assert!(report.events.iter().all(|e| e.allocated_bytes == 4e9));
    assert_eq!(report.total_failures(), 0, "a fault kill is not a failure");
    assert_eq!(result.stats.leaked_inflight_retries, 0);
}
