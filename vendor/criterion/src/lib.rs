//! Vendored minimal stand-in for `criterion`.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the benchmark-harness surface the workspace's benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`] with [`BatchSize`].
//!
//! Instead of criterion's bootstrap statistics it reports simple summary
//! statistics (median / mean / min over timed samples) on stdout. Each
//! sample times a batch of iterations sized so one batch takes roughly a
//! millisecond, which is plenty to compare the order-of-magnitude numbers
//! the paper-reproduction benches care about (e.g. full retraining vs
//! incremental updates in Fig. 9).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost; only a sizing hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations per setup.
    SmallInput,
    /// Large inputs: fewer iterations per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from just a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Picks an iteration count so one timed batch lasts ~1 ms, bounded to
    /// keep total runtime sane for very fast / very slow routines.
    fn calibrate<O>(routine: &mut impl FnMut() -> O) -> u64 {
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        ((target.as_nanos() / once.as_nanos()).clamp(1, 10_000)) as u64
    }

    /// Times `routine`, called in calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = Self::calibrate(&mut routine);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed().div_f64(iters as f64));
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        for _ in 0..self.sample_count {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let total: Duration = self.samples.iter().sum();
        let mean = total.div_f64(self.samples.len() as f64);
        println!(
            "{id:<50} median {:>12?}   mean {:>12?}   min {:>12?}   ({} samples)",
            median,
            mean,
            min,
            self.samples.len()
        );
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&label);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Ends the group (stdout reporting needs no teardown).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_id();
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report(&label);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("batched", 7), &7, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput);
        });
        group.finish();
    }
}
