//! Concurrent sharded prediction service.
//!
//! The split predictor API (`predict` on `&self`, `observe` on `&mut self`)
//! makes a single predictor safe to read from many threads, but one global
//! lock would serialize every observe against every predict. This module
//! adds the serving layer for heavy multi-tenant traffic:
//!
//! * **Sharding** — the key space is partitioned across `shards` independent
//!   predictor instances by a **stable FNV-1a hash** of
//!   [`TaskMachineKey`] (task type ×
//!   machine). All learned state in Sizey
//!   and the baselines is keyed per (task type, machine), so routing every
//!   predict *and* observe of a key to the same shard reproduces the serial
//!   predictor's decisions bit for bit while letting unrelated keys proceed
//!   in parallel. The hash is pinned by this crate (not borrowed from std),
//!   so shard assignments are identical across binaries, rustc releases and
//!   platforms — which is what makes [`ServiceCheckpoint`]s portable.
//! * **Locking discipline** — each shard sits behind its own
//!   `parking_lot::RwLock`. Predictions take the shard's read lock (many
//!   concurrent readers); model updates take its write lock. A write stalls
//!   only the readers of its own shard, never the other `shards - 1`.
//! * **Batching** — [`ConcurrentPredictor::predict_batch`] fans a slice of
//!   submissions across scoped worker threads ([`sizey_ml::parallel`]
//!   spawns per call — small batches run inline instead), and
//!   [`ConcurrentPredictor::observe_batch`] groups records by shard so each
//!   write lock is taken once per batch instead of once per record (shards
//!   are updated in parallel, records within a shard in input order).
//!
//! [`SharedPredictor`] is a cheap cloneable handle implementing
//! [`MemoryPredictor`], so one concurrent service instance can sit behind
//! several [`WorkflowTenant`](sizey_sim::WorkflowTenant)s of a multi-tenant
//! replay — every tenant then learns from every tenant's completions.

use sizey_provenance::{MachineId, TaskRecord, TaskTypeId};
use sizey_sim::{
    AttemptContext, CheckpointPredictor, MemoryPredictor, Prediction, PredictorState, StateError,
    TaskSubmission,
};

use crate::config::SizeyConfig;
use crate::pool::RetrainJob;
use crate::sizey::SizeyPredictor;
use parking_lot::RwLock;
use sizey_ml::parallel::{default_parallelism, parallel_map};
use sizey_provenance::TaskMachineKey;
use std::sync::Arc;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable FNV-1a 64-bit hash of a (task type, machine) key.
///
/// The algorithm is pinned here by constant, so the value — and therefore
/// every shard assignment derived from it — is identical across binaries,
/// rustc releases and platforms. (The previous `DefaultHasher` routing was
/// only stable within one binary: std does not pin SipHash's parameters
/// across releases, which made per-shard checkpoint restores non-portable.)
///
/// The two components are separated by a `0xFF` byte, which cannot occur in
/// UTF-8, so `("ab", "c")` and `("a", "bc")` hash differently.
fn fnv1a_key(task_type: &TaskTypeId, machine: &MachineId) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in task_type.as_str().as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash ^= 0xFF;
    hash = hash.wrapping_mul(FNV_PRIME);
    for &byte in machine.as_str().as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Default number of shards: enough to keep a 16-thread pool busy without
/// fragmenting small key spaces.
pub const DEFAULT_SHARDS: usize = 16;

/// One prediction request of a batch: a task submission plus the
/// engine-owned retry context of this attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// The submitted task.
    pub task: TaskSubmission,
    /// Retry state of this attempt (use [`AttemptContext::first`] for first
    /// submissions).
    pub ctx: AttemptContext,
}

impl BatchRequest {
    /// A first-submission request.
    pub fn first(task: TaskSubmission) -> Self {
        BatchRequest {
            task,
            ctx: AttemptContext::first(),
        }
    }
}

/// A sharded, lock-striped predictor service.
///
/// Generic over the predictor type: any [`MemoryPredictor`] whose learned
/// state is partitioned by (task type, machine) — Sizey and all the
/// baselines — can be served concurrently. See the
/// [module docs](self) for the sharding and locking discipline.
pub struct ConcurrentPredictor<P> {
    shards: Vec<RwLock<P>>,
    threads: usize,
}

/// The concurrent Sizey service.
pub type ConcurrentSizey = ConcurrentPredictor<SizeyPredictor>;

impl<P: MemoryPredictor + Sync> ConcurrentPredictor<P> {
    /// Builds a service with `shards` independent predictor instances
    /// produced by `factory` (called once per shard, in shard order). Batch
    /// calls fan out across [`default_parallelism`] threads; tune with
    /// [`with_threads`](ConcurrentPredictor::with_threads).
    pub fn new(shards: usize, factory: impl FnMut(usize) -> P) -> Self {
        assert!(shards > 0, "a predictor service needs at least one shard");
        ConcurrentPredictor {
            shards: (0..shards).map(factory).map(RwLock::new).collect(),
            threads: default_parallelism(),
        }
    }

    /// Sets the number of worker threads used by the batch APIs.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic shard routing: every predict and observe of one
    /// (task type, machine) key lands on the same shard for the lifetime of
    /// the service. The underlying FNV-1a key hash is pinned by this
    /// crate, so the assignment is also stable across binaries and rustc
    /// releases — shard indices may be persisted (see [`ServiceCheckpoint`])
    /// and external routers (the async serving layer's per-shard queues)
    /// can compute them independently.
    ///
    /// Hashing the two components directly avoids cloning two `String`s into
    /// a [`TaskMachineKey`] per request on the hot path.
    pub fn shard_of_parts(&self, task_type: &TaskTypeId, machine: &MachineId) -> usize {
        (fnv1a_key(task_type, machine) % self.shards.len() as u64) as usize
    }

    /// The shard a submission's key routes to.
    pub fn shard_of_task(&self, task: &TaskSubmission) -> usize {
        self.shard_of_parts(&task.task_type, &task.machine)
    }

    /// The shard a monitoring record's key routes to.
    pub fn shard_of_record(&self, record: &TaskRecord) -> usize {
        self.shard_of_parts(&record.task_type, &record.machine)
    }

    /// Sizes one attempt: takes the read lock of the task's shard, so any
    /// number of predictions proceed concurrently between model updates.
    pub fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        self.shards[self.shard_of_task(task)]
            .read()
            .predict(task, ctx)
    }

    /// Feeds one finished attempt to the owning shard (write lock).
    pub fn observe(&self, record: &TaskRecord) {
        self.shards[self.shard_of_record(record)]
            .write()
            .observe(record);
    }

    /// Batches below this size are sized inline: [`parallel_map`] spawns
    /// scoped OS threads per call (there is no persistent pool), and for a
    /// handful of microsecond-scale predictions the spawn/join cost would
    /// exceed the work being fanned out.
    const SEQUENTIAL_BATCH_CUTOFF: usize = 32;

    /// Sizes a whole batch of submissions, fanning the requests across
    /// scoped worker threads. Results come back in request order. This is
    /// the hot path of a prediction service: per-request cost is one shard
    /// read lock, so throughput scales with cores once the batch is large
    /// enough to amortize the per-call thread spawns (small batches run
    /// inline — `SEQUENTIAL_BATCH_CUTOFF`).
    pub fn predict_batch(&self, requests: &[BatchRequest]) -> Vec<Prediction> {
        if self.threads == 1 || requests.len() < Self::SEQUENTIAL_BATCH_CUTOFF {
            return requests
                .iter()
                .map(|request| self.predict(&request.task, request.ctx))
                .collect();
        }
        parallel_map(requests, self.threads, |request| {
            self.predict(&request.task, request.ctx)
        })
    }

    /// Applies a batch of monitoring records with write batching: records
    /// are grouped by shard, each shard's write lock is taken **once**, and
    /// the shards update in parallel. Within a shard, records apply in input
    /// order, so single-shard batches are indistinguishable from serial
    /// observes.
    ///
    /// Grouping uses a single tagged buffer and a stable sort (input order
    /// within each shard is preserved) instead of one accumulation vector
    /// per shard per call.
    pub fn observe_batch(&self, records: &[TaskRecord]) {
        let mut tagged: Vec<(usize, &TaskRecord)> = records
            .iter()
            .map(|record| (self.shard_of_record(record), record))
            .collect();
        tagged.sort_by_key(|(shard, _)| *shard);
        let groups: Vec<&[(usize, &TaskRecord)]> = tagged.chunk_by(|a, b| a.0 == b.0).collect();
        parallel_map(&groups, self.threads, |group| {
            let mut guard = self.shards[group[0].0].write();
            for (_, record) in *group {
                guard.observe(record);
            }
        });
    }

    /// Applies records to one specific shard, in order, under a single
    /// write-lock hold. The caller is responsible for routing: every record
    /// must belong to `shard` per [`ConcurrentPredictor::shard_of_record`]
    /// — the async serving layer's
    /// per-shard micro-batchers uphold this by construction. Panics when
    /// `shard >= shard_count()`.
    pub fn observe_shard(&self, shard: usize, records: &[TaskRecord]) {
        let mut guard = self.shards[shard].write();
        for record in records {
            guard.observe(record);
        }
    }

    /// Runs `f` on every shard under its read lock, in shard order —
    /// aggregation hook for telemetry (e.g. summing provenance sizes).
    pub fn map_shards<R>(&self, f: impl Fn(&P) -> R) -> Vec<R> {
        self.shards.iter().map(|shard| f(&shard.read())).collect()
    }

    /// Runs `f` on one shard's predictor under its write lock — the
    /// maintenance hook of the async serving layer (deferred-retrain drains
    /// between micro-batches). Panics when `shard >= shard_count()`.
    pub fn with_shard_mut<R>(&self, shard: usize, f: impl FnOnce(&mut P) -> R) -> R {
        f(&mut self.shards[shard].write())
    }

    /// Wraps the service in a cheap cloneable [`SharedPredictor`] handle.
    pub fn into_shared(self) -> SharedPredictor<P> {
        SharedPredictor(Arc::new(self))
    }
}

impl<P: Clone> ConcurrentPredictor<P> {
    /// Deep-clones one shard's predictor under its read lock. This is the
    /// snapshot primitive of the lock-free serving path: the clone shares no
    /// mutable state with the shard, so it can be published behind an
    /// immutable pointer and read without any lock while the shard keeps
    /// learning. Panics when `shard >= shard_count()`.
    pub fn clone_shard(&self, shard: usize) -> P {
        self.shards[shard].read().clone()
    }
}

/// A checkpoint of a whole sharded service: one [`PredictorState`] per
/// shard, in shard order.
///
/// Shard routing hashes with a stable FNV-1a hash pinned by this crate, so a
/// checkpoint restored **shard-by-shard**
/// ([`ConcurrentPredictor::from_checkpoint`]) is bit-exact across binaries,
/// rustc releases and platforms — the only requirement is the same shard
/// count. [`ServiceCheckpoint::merged`] folds the checkpoint into one
/// re-shardable state for re-sharding or warm-starting a single serial
/// predictor.
///
/// **Migration note (pre-FNV checkpoints):** checkpoints written by builds
/// that still routed with `std`'s `DefaultHasher` placed each key's history
/// on a shard the FNV routing may not agree with. Restoring such a file
/// shard-by-shard would strand histories on shards their keys no longer
/// route to; restore it once through [`ServiceCheckpoint::merged`] into a
/// fresh predictor (or replay it through
/// [`ConcurrentPredictor::observe_batch`]) and re-checkpoint. The text
/// format itself is unchanged (`sizey-service-checkpoint v1` — the format
/// never encoded the hash, which is exactly why the old files stay
/// parseable).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCheckpoint {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<PredictorState>,
}

/// Magic first line of the serialised [`ServiceCheckpoint`] format.
const SERVICE_CHECKPOINT_HEADER: &str = "sizey-service-checkpoint v1";

impl ServiceCheckpoint {
    /// Folds the per-shard states into a single [`PredictorState`]: journals
    /// are concatenated in shard order and counters are summed by name.
    ///
    /// All learned state in the workspace's predictors is keyed per
    /// (task type, machine), and every record of one key lives in exactly one
    /// shard (in observation order), so the merged journal preserves each
    /// key's history exactly — restoring it yields bit-identical
    /// *predictions* even though the cross-key interleaving differs from the
    /// original global observation order.
    pub fn merged(&self) -> PredictorState {
        let mut journal = Vec::with_capacity(self.shards.iter().map(|s| s.journal.len()).sum());
        let mut counters: Vec<(String, u64)> = Vec::new();
        for shard in &self.shards {
            journal.extend(shard.journal.iter().cloned());
            for (name, value) in &shard.counters {
                match counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += value,
                    None => counters.push((name.clone(), *value)),
                }
            }
        }
        counters.sort();
        PredictorState { journal, counters }
    }

    /// Serialises the checkpoint into a plain-text form (shard states are
    /// framed by `--- shard <i>` separators).
    pub fn to_checkpoint_string(&self) -> String {
        let mut out = String::new();
        out.push_str(SERVICE_CHECKPOINT_HEADER);
        out.push('\n');
        out.push_str(&format!("shards {}\n", self.shards.len()));
        for (i, shard) in self.shards.iter().enumerate() {
            out.push_str(&format!("--- shard {i}\n"));
            out.push_str(&shard.to_state_string());
        }
        out
    }

    /// Parses a checkpoint from the plain-text form.
    pub fn from_checkpoint_string(content: &str) -> Result<Self, StateError> {
        let mut lines = content.lines();
        match lines.next() {
            Some(first) if first.trim() == SERVICE_CHECKPOINT_HEADER => {}
            other => {
                return Err(StateError::Parse {
                    line: 1,
                    message: format!("expected {SERVICE_CHECKPOINT_HEADER:?}, found {other:?}"),
                })
            }
        }
        let n_shards: usize = match lines.next() {
            Some(decl) => decl
                .strip_prefix("shards ")
                .and_then(|rest| rest.trim().parse().ok())
                .ok_or(StateError::Parse {
                    line: 2,
                    message: format!("expected \"shards <n>\", found {decl:?}"),
                })?,
            None => {
                return Err(StateError::Parse {
                    line: 2,
                    message: "missing \"shards <n>\" line".to_string(),
                })
            }
        };
        let mut shard_texts: Vec<Vec<&str>> = Vec::with_capacity(n_shards);
        for line in lines {
            if line.starts_with("--- shard ") {
                shard_texts.push(Vec::new());
            } else if let Some(current) = shard_texts.last_mut() {
                current.push(line);
            } else {
                return Err(StateError::Parse {
                    line: 3,
                    message: format!("expected \"--- shard 0\" frame, found {line:?}"),
                });
            }
        }
        if shard_texts.len() != n_shards {
            return Err(StateError::Parse {
                line: 2,
                message: format!(
                    "checkpoint declares {n_shards} shards but contains {}",
                    shard_texts.len()
                ),
            });
        }
        let shards = shard_texts
            .into_iter()
            .map(|text| PredictorState::from_state_string(&text.join("\n")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServiceCheckpoint { shards })
    }
}

impl<P: CheckpointPredictor + Sync> ConcurrentPredictor<P> {
    /// Snapshots every shard under its read lock, in shard order. Writers
    /// are not blocked globally: each shard is locked briefly and
    /// independently, so the checkpoint is per-shard consistent (the unit of
    /// all learned state).
    pub fn checkpoint(&self) -> ServiceCheckpoint {
        ServiceCheckpoint {
            shards: self.map_shards(|p| p.snapshot()),
        }
    }

    /// Rebuilds a service from a checkpoint: `factory` builds one fresh
    /// predictor per shard (same configuration as the checkpointed service)
    /// and each shard restores its own state. The shard count is taken from
    /// the checkpoint. See [`ServiceCheckpoint`] for the same-binary caveat;
    /// to re-shard, restore [`ServiceCheckpoint::merged`] into a fresh
    /// predictor or feed it through [`ConcurrentPredictor::observe_batch`].
    pub fn from_checkpoint(
        checkpoint: &ServiceCheckpoint,
        mut factory: impl FnMut(usize) -> P,
    ) -> Result<Self, StateError> {
        // A `shards 0` file parses structurally, but an error (not a panic)
        // is the right answer on this recovery path.
        if checkpoint.shards.is_empty() {
            return Err(StateError::EmptyCheckpoint);
        }
        let mut shards = Vec::with_capacity(checkpoint.shards.len());
        for (i, state) in checkpoint.shards.iter().enumerate() {
            let mut predictor = factory(i);
            predictor.restore(state)?;
            shards.push(RwLock::new(predictor));
        }
        Ok(ConcurrentPredictor {
            shards,
            threads: default_parallelism(),
        })
    }
}

impl ConcurrentSizey {
    /// A concurrent Sizey service: `shards` independent [`SizeyPredictor`]s
    /// with identical configuration.
    pub fn sizey(config: SizeyConfig, shards: usize) -> Self {
        ConcurrentPredictor::new(shards, |_| SizeyPredictor::new(config.clone()))
    }

    /// A concurrent Sizey service with the paper's default configuration and
    /// [`DEFAULT_SHARDS`] shards.
    pub fn sizey_defaults() -> Self {
        Self::sizey(SizeyConfig::default(), DEFAULT_SHARDS)
    }

    /// Restores a concurrent Sizey service from a checkpoint taken with
    /// [`ConcurrentPredictor::checkpoint`]. The configuration must equal the
    /// checkpointed service's (learned state is a function of configuration
    /// plus observations); the shard count comes from the checkpoint.
    pub fn sizey_from_checkpoint(
        config: SizeyConfig,
        checkpoint: &ServiceCheckpoint,
    ) -> Result<Self, StateError> {
        ConcurrentPredictor::from_checkpoint(checkpoint, |_| SizeyPredictor::new(config.clone()))
    }

    /// Opts every shard in (or out of) **deferred retrains**: `observe` only
    /// stages the periodic full retrain and the HPO grid search instead of
    /// running them inline, and
    /// [`observe_batch_retraining`](ConcurrentSizey::observe_batch_retraining)
    /// executes the staged training off the shard locks. The default (inline
    /// retrains through plain
    /// [`observe_batch`](ConcurrentPredictor::observe_batch)) stays
    /// bit-identical to the serial predictor; this mode trades bounded model
    /// staleness — predictions keep serving the previous models while the
    /// replacements train — for an observe path free of training spikes.
    pub fn with_background_retrains(self, enabled: bool) -> Self {
        for shard in &self.shards {
            shard.write().set_deferred_retrains(enabled);
        }
        self
    }

    /// [`observe_batch`](ConcurrentPredictor::observe_batch) plus background
    /// retraining: after the batch is applied, staged retrain jobs are
    /// drained under brief per-shard write locks, executed **off the locks**
    /// on the `sizey-ml` thread pool (predictions keep serving the old
    /// models), and the freshly trained models are committed under brief
    /// write locks again. A pool that was fully retrained in the meantime
    /// discards the stale result (freshness epoch). Returns the number of
    /// retrains that landed.
    ///
    /// Draining after every record (batches of one) reproduces inline
    /// retraining bit for bit; larger batches only delay *when* the retrain
    /// runs, never which data it sees at execution time.
    pub fn observe_batch_retraining(&self, records: &[TaskRecord]) -> usize {
        self.observe_batch_retraining_capped(records, usize::MAX)
    }

    /// [`observe_batch_retraining`](ConcurrentSizey::observe_batch_retraining)
    /// with a ceiling on the retrain work attributed to this call: at most
    /// `cap` staged jobs are drained (shard order, key order within a shard
    /// — deterministic), and pools whose jobs were left behind keep them
    /// staged for the next call. This bounds the worst-case latency of an
    /// observe batch — without a cap, one unlucky batch can absorb *every*
    /// pool's periodic retrain at once, which is the observe p99 tail the
    /// serving layer's micro-batcher needs to avoid. The backlog left behind
    /// is visible through
    /// [`pending_retrains`](ConcurrentSizey::pending_retrains).
    pub fn observe_batch_retraining_capped(&self, records: &[TaskRecord], cap: usize) -> usize {
        self.observe_batch(records);
        let mut staged: Vec<(usize, TaskMachineKey, RetrainJob)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let remaining = cap - staged.len();
            if remaining == 0 {
                break;
            }
            let mut guard = shard.write();
            for (key, job) in guard.drain_retrain_jobs_capped(remaining) {
                staged.push((i, key, job));
            }
        }
        if staged.is_empty() {
            return 0;
        }
        let trained = parallel_map(&staged, self.threads, |(_, _, job)| job.execute());
        let mut installed = 0;
        for ((shard, key, _), models) in staged.iter().zip(trained) {
            if self.shards[*shard].write().install_retrain(key, models) {
                installed += 1;
            }
        }
        installed
    }

    /// Staged-but-not-yet-drained retrains across all shards — the backlog a
    /// capped drain left behind (retrain-stall telemetry).
    pub fn pending_retrains(&self) -> usize {
        self.map_shards(|p| p.pending_retrains()).iter().sum()
    }
}

/// A cloneable handle to a [`ConcurrentPredictor`] that itself implements
/// [`MemoryPredictor`]: hand clones to several
/// [`WorkflowTenant`](sizey_sim::WorkflowTenant)s and they will share one
/// learned state across the whole cluster. `observe` through the handle
/// takes the owning shard's write lock internally, so `&mut self` on the
/// trait is satisfied without exclusive ownership.
pub struct SharedPredictor<P>(Arc<ConcurrentPredictor<P>>);

impl<P> Clone for SharedPredictor<P> {
    fn clone(&self) -> Self {
        SharedPredictor(Arc::clone(&self.0))
    }
}

impl<P> SharedPredictor<P> {
    /// The underlying service (for batch APIs and telemetry).
    pub fn service(&self) -> &ConcurrentPredictor<P> {
        &self.0
    }
}

impl<P: CheckpointPredictor + Sync> SharedPredictor<P> {
    /// Snapshots the shared service (see [`ConcurrentPredictor::checkpoint`]).
    pub fn checkpoint(&self) -> ServiceCheckpoint {
        self.0.checkpoint()
    }

    /// Restores a shared service from a checkpoint (see
    /// [`ConcurrentPredictor::from_checkpoint`]); tenants of a new run can
    /// warm-start from the learned state of a previous one.
    pub fn from_checkpoint(
        checkpoint: &ServiceCheckpoint,
        factory: impl FnMut(usize) -> P,
    ) -> Result<Self, StateError> {
        Ok(ConcurrentPredictor::from_checkpoint(checkpoint, factory)?.into_shared())
    }
}

/// The shared concurrent Sizey handle.
pub type SharedSizey = SharedPredictor<SizeyPredictor>;

impl SharedSizey {
    /// A shared concurrent Sizey service (see [`ConcurrentSizey::sizey`]).
    pub fn sizey(config: SizeyConfig, shards: usize) -> Self {
        ConcurrentSizey::sizey(config, shards).into_shared()
    }
}

impl<P: MemoryPredictor + Sync> MemoryPredictor for SharedPredictor<P> {
    fn name(&self) -> String {
        self.0.shards[0].read().name()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        self.0.predict(task, ctx)
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.0.observe(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::{MachineId, TaskOutcome, TaskTypeId};

    fn submission(task_type: &str, seq: u64, input: f64) -> TaskSubmission {
        TaskSubmission {
            workflow: "wf".into(),
            task_type: TaskTypeId::new(task_type),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: input,
            preset_memory_bytes: 20e9,
        }
    }

    fn record(task_type: &str, seq: u64, input: f64, peak: f64) -> TaskRecord {
        TaskRecord {
            workflow: "wf".into(),
            task_type: TaskTypeId::new(task_type),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: input,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 1.5,
            runtime_seconds: 60.0,
            concurrent_tasks: 1,
            queue_delay_seconds: 0.0,
            outcome: TaskOutcome::Succeeded,
        }
    }

    fn train(observe: &mut dyn FnMut(&TaskRecord), task_type: &str, n: u64) {
        for i in 1..=n {
            let input = i as f64 * 1e9;
            observe(&record(task_type, i, input, 2.0 * input + 1e9));
        }
    }

    #[test]
    fn sharded_decisions_match_the_serial_predictor() {
        let mut serial = SizeyPredictor::with_defaults();
        let concurrent = ConcurrentSizey::sizey_defaults();
        for task_type in ["align", "sort", "call", "merge", "plot"] {
            train(&mut |r| serial.observe(r), task_type, 14);
            train(&mut |r| concurrent.observe(r), task_type, 14);
        }
        for task_type in ["align", "sort", "call", "merge", "plot"] {
            for (seq, input) in [(100, 3e9), (101, 7.5e9), (102, 11e9)] {
                let task = submission(task_type, seq, input);
                let a = serial.predict(&task, AttemptContext::first());
                let b = concurrent.predict(&task, AttemptContext::first());
                assert_eq!(a, b, "decision diverged for {task_type}/{seq}");
                let ra = serial.predict(&task, AttemptContext::retry(1, a.allocation_bytes));
                let rb = concurrent.predict(&task, AttemptContext::retry(1, b.allocation_bytes));
                assert_eq!(ra, rb);
            }
        }
    }

    #[test]
    fn predict_batch_matches_sequential_predicts_in_order() {
        let concurrent = ConcurrentSizey::sizey_defaults().with_threads(4);
        for task_type in ["a", "b", "c"] {
            train(&mut |r| concurrent.observe(r), task_type, 12);
        }
        let requests: Vec<BatchRequest> = (0..60)
            .map(|i| {
                let task_type = ["a", "b", "c"][i % 3];
                BatchRequest::first(submission(task_type, 200 + i as u64, (i + 1) as f64 * 5e8))
            })
            .collect();
        let batched = concurrent.predict_batch(&requests);
        assert_eq!(batched.len(), requests.len());
        for (request, prediction) in requests.iter().zip(&batched) {
            assert_eq!(*prediction, concurrent.predict(&request.task, request.ctx));
        }
        // Small batches take the inline path; same contract.
        let tiny = &requests[..5];
        for (request, prediction) in tiny.iter().zip(concurrent.predict_batch(tiny)) {
            assert_eq!(prediction, concurrent.predict(&request.task, request.ctx));
        }
    }

    #[test]
    fn observe_batch_is_equivalent_to_serial_observes() {
        let batched = ConcurrentSizey::sizey_defaults();
        let serial = ConcurrentSizey::sizey_defaults();
        let mut records = Vec::new();
        for task_type in ["x", "y"] {
            for i in 1..=15u64 {
                let input = i as f64 * 1e9;
                records.push(record(task_type, i, input, 1.5 * input + 5e8));
            }
        }
        batched.observe_batch(&records);
        for r in &records {
            serial.observe(r);
        }
        for task_type in ["x", "y"] {
            let task = submission(task_type, 900, 6e9);
            assert_eq!(
                batched.predict(&task, AttemptContext::first()),
                serial.predict(&task, AttemptContext::first())
            );
        }
        // Every record landed in exactly one shard.
        let total: usize = batched.map_shards(|p| p.provenance().len()).iter().sum();
        assert_eq!(total, records.len());
    }

    /// Draining and installing the staged retrain after every single record
    /// reproduces inline retraining bit for bit: the job executes on the same
    /// data and the same prior models an inline retrain would have seen.
    #[test]
    fn per_record_background_retrains_match_inline_retraining() {
        let inline = ConcurrentSizey::sizey(SizeyConfig::default(), 4);
        let deferred =
            ConcurrentSizey::sizey(SizeyConfig::default(), 4).with_background_retrains(true);
        let mut installed = 0;
        for task_type in ["x", "y"] {
            for i in 1..=30u64 {
                let input = i as f64 * 1e9;
                let r = record(task_type, i, input, 1.5 * input + 5e8);
                inline.observe(&r);
                installed += deferred.observe_batch_retraining(std::slice::from_ref(&r));
            }
        }
        assert!(
            installed >= 2,
            "the default interval (25) must stage at least one retrain per task type"
        );
        for task_type in ["x", "y"] {
            for (seq, input) in [(900u64, 6e9), (901, 13e9)] {
                let task = submission(task_type, seq, input);
                assert_eq!(
                    inline.predict(&task, AttemptContext::first()),
                    deferred.predict(&task, AttemptContext::first()),
                    "background retrains diverged on {task_type}/{seq}"
                );
            }
        }
    }

    #[test]
    fn batched_background_retrains_install_and_keep_serving() {
        let service =
            ConcurrentSizey::sizey(SizeyConfig::default(), 2).with_background_retrains(true);
        let mut records = Vec::new();
        for i in 1..=30u64 {
            let input = i as f64 * 1e9;
            records.push(record("bg", i, input, 2.0 * input + 1e9));
        }
        // Plain observe_batch leaves the staged retrain pending; predictions
        // still serve from the incrementally updated models.
        service.observe_batch(&records);
        let task = submission("bg", 500, 6e9);
        let before = service.predict(&task, AttemptContext::first());
        assert!(before.raw_estimate_bytes.is_some());
        // The retraining variant drains and installs the staged job.
        let installed = service.observe_batch_retraining(&[]);
        assert_eq!(installed, 1);
        let after = service.predict(&task, AttemptContext::first());
        assert!(after.raw_estimate_bytes.is_some());
        // Nothing left pending: a second drain is a no-op.
        assert_eq!(service.observe_batch_retraining(&[]), 0);
    }

    #[test]
    fn shard_routing_is_deterministic_and_in_range() {
        let service = ConcurrentSizey::sizey(SizeyConfig::default(), 7);
        for i in 0..50 {
            let task = submission(&format!("t{i}"), i, 1e9);
            let shard = service.shard_of_task(&task);
            assert!(shard < 7);
            assert_eq!(shard, service.shard_of_task(&task));
            // Submission and record routing must agree — otherwise a key's
            // observations and predictions could land on different shards.
            let r = record(&format!("t{i}"), i, 1e9, 2e9);
            assert_eq!(shard, service.shard_of_record(&r));
            assert_eq!(
                shard,
                service.shard_of_parts(&task.task_type, &task.machine)
            );
        }
    }

    /// Golden shard assignments: the FNV-1a routing hash is part of the
    /// [`ServiceCheckpoint`] portability contract, so its exact values are
    /// pinned here. If this test ever fails, the hash changed — which
    /// silently strands every persisted checkpoint's per-key history on
    /// shards their keys no longer route to. Bump the checkpoint header and
    /// write a migration before touching these constants.
    #[test]
    fn shard_routing_matches_golden_fnv_assignments() {
        // (task type, machine, fnv1a_key, key % 16, key % 7) — values
        // computed independently from the FNV-1a reference algorithm
        // (offset basis 0xcbf29ce484222325, prime 0x100000001b3, 0xFF
        // separator between the components).
        let golden: &[(&str, &str, u64, usize, usize)] = &[
            ("align", "node-a", 0x4c47_1dda_64c6_62d1, 1, 1),
            ("sort", "node-b", 0xd838_5d24_3fa9_6629, 9, 0),
            ("merge", "m", 0x830a_f0e8_92b8_4edf, 15, 2),
            ("variant-call", "gpu-17", 0x1e48_6c54_cd15_9963, 3, 1),
            ("t0", "m", 0x3faf_b2ee_1ee2_015d, 13, 4),
            ("", "", 0xaf64_724c_8602_eb6e, 14, 0),
        ];
        let sixteen = ConcurrentSizey::sizey(SizeyConfig::default(), 16);
        let seven = ConcurrentSizey::sizey(SizeyConfig::default(), 7);
        for &(task_type, machine, hash, mod16, mod7) in golden {
            let tt = TaskTypeId::new(task_type);
            let m = MachineId::new(machine);
            assert_eq!(
                fnv1a_key(&tt, &m),
                hash,
                "FNV-1a value changed for ({task_type:?}, {machine:?})"
            );
            assert_eq!(sixteen.shard_of_parts(&tt, &m), mod16);
            assert_eq!(seven.shard_of_parts(&tt, &m), mod7);
        }
        // The 0xFF separator keeps component boundaries unambiguous.
        assert_ne!(
            fnv1a_key(&TaskTypeId::new("ab"), &MachineId::new("c")),
            fnv1a_key(&TaskTypeId::new("a"), &MachineId::new("bc"))
        );
    }

    /// A capped drain takes at most `cap` staged retrains per call, leaves
    /// the rest staged (visible as `pending_retrains`), and repeated capped
    /// calls converge to the same installed models as one uncapped drain.
    #[test]
    fn capped_retrain_drain_bounds_work_and_leaves_backlog_visible() {
        let service =
            ConcurrentSizey::sizey(SizeyConfig::default(), 4).with_background_retrains(true);
        // Push several key pools past the default retrain interval (25) so
        // multiple jobs are staged at once.
        let mut records = Vec::new();
        for task_type in ["a", "b", "c"] {
            for i in 1..=30u64 {
                let input = i as f64 * 1e9;
                records.push(record(task_type, i, input, 2.0 * input + 1e9));
            }
        }
        service.observe_batch(&records);
        let staged = service.pending_retrains();
        assert!(staged >= 3, "expected one staged retrain per task type");
        // Drain one at a time; each call installs exactly one and the
        // backlog shrinks monotonically until empty.
        let mut installed_total = 0;
        while service.pending_retrains() > 0 {
            let before = service.pending_retrains();
            let installed = service.observe_batch_retraining_capped(&[], 1);
            assert!(installed <= 1, "cap must bound installs per call");
            installed_total += installed;
            assert_eq!(service.pending_retrains(), before - 1);
        }
        assert_eq!(installed_total, staged);
        assert_eq!(service.observe_batch_retraining_capped(&[], 1), 0);

        // The capped path lands on the same models as an uncapped drain.
        let uncapped =
            ConcurrentSizey::sizey(SizeyConfig::default(), 4).with_background_retrains(true);
        uncapped.observe_batch_retraining(&records);
        for task_type in ["a", "b", "c"] {
            let task = submission(task_type, 900, 6e9);
            assert_eq!(
                service.predict(&task, AttemptContext::first()),
                uncapped.predict(&task, AttemptContext::first()),
                "capped drains must converge to the uncapped result"
            );
        }
    }

    #[test]
    fn shared_handle_clones_share_learned_state() {
        let mut handle_a = SharedSizey::sizey(SizeyConfig::default(), 4);
        let handle_b = handle_a.clone();
        // Tenant A observes; tenant B predicts from the shared state.
        train(&mut |r| handle_a.observe(r), "shared", 14);
        let task = submission("shared", 500, 5e9);
        let through_b =
            sizey_sim::MemoryPredictor::predict(&handle_b, &task, AttemptContext::first());
        assert!(through_b.raw_estimate_bytes.is_some());
        assert!(through_b.allocation_bytes < 20e9);
        assert_eq!(handle_b.name(), "Sizey");
    }

    #[test]
    fn single_shard_still_works() {
        let service = ConcurrentSizey::sizey(SizeyConfig::default(), 1);
        train(&mut |r| service.observe(r), "only", 12);
        let p = service.predict(&submission("only", 50, 4e9), AttemptContext::first());
        assert!(p.raw_estimate_bytes.is_some());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ConcurrentSizey::sizey(SizeyConfig::default(), 0);
    }

    /// A service restored from a checkpoint is bit-identical to the
    /// original: same shard states, same decisions, and checkpointing the
    /// restored service reproduces the checkpoint.
    #[test]
    fn service_checkpoint_restores_bit_identically() {
        let original = ConcurrentSizey::sizey(SizeyConfig::default(), 4);
        for task_type in ["align", "sort", "call"] {
            train(&mut |r| original.observe(r), task_type, 14);
        }
        // Warm the predict path so shard diagnostics are non-trivial.
        for task_type in ["align", "sort"] {
            let _ = original.predict(&submission(task_type, 90, 5e9), AttemptContext::first());
        }
        let checkpoint = original.checkpoint();
        assert_eq!(checkpoint.shards.len(), 4);

        let restored =
            ConcurrentSizey::sizey_from_checkpoint(SizeyConfig::default(), &checkpoint).unwrap();
        assert_eq!(restored.shard_count(), 4);
        // Checkpointing the freshly restored service reproduces the
        // checkpoint exactly (before any further predicts advance the
        // offset-selection counters).
        assert_eq!(restored.checkpoint(), checkpoint);
        for task_type in ["align", "sort", "call", "unseen"] {
            for (seq, input) in [(100u64, 2e9), (101, 8.5e9)] {
                let task = submission(task_type, seq, input);
                assert_eq!(
                    original.predict(&task, AttemptContext::first()),
                    restored.predict(&task, AttemptContext::first()),
                    "restored service diverged on {task_type}/{seq}"
                );
            }
        }
    }

    /// The text codec round-trips a whole service checkpoint, and the merged
    /// state warm-starts a serial predictor with identical decisions (the
    /// re-sharding path: per-key histories survive the fold).
    #[test]
    fn checkpoint_codec_and_merge_round_trip() {
        let service = ConcurrentSizey::sizey(SizeyConfig::default(), 3);
        for task_type in ["x", "y"] {
            train(&mut |r| service.observe(r), task_type, 12);
        }
        let checkpoint = service.checkpoint();
        let text = checkpoint.to_checkpoint_string();
        let parsed = ServiceCheckpoint::from_checkpoint_string(&text).unwrap();
        assert_eq!(parsed, checkpoint);

        let mut serial = SizeyPredictor::with_defaults();
        serial.restore(&checkpoint.merged()).unwrap();
        for task_type in ["x", "y"] {
            let task = submission(task_type, 500, 6e9);
            assert_eq!(
                service.predict(&task, AttemptContext::first()),
                serial.predict(&task, AttemptContext::first()),
                "merged warm-start diverged on {task_type}"
            );
        }
        let total_records: usize = checkpoint.shards.iter().map(|s| s.journal.len()).sum();
        assert_eq!(checkpoint.merged().journal.len(), total_records);

        // Shared handles expose the same lifecycle.
        let shared = SharedSizey::from_checkpoint(&checkpoint, |_| {
            SizeyPredictor::new(SizeyConfig::default())
        })
        .unwrap();
        assert_eq!(shared.checkpoint(), checkpoint);
    }

    #[test]
    fn malformed_service_checkpoints_are_rejected() {
        assert!(matches!(
            ServiceCheckpoint::from_checkpoint_string("bogus"),
            Err(StateError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            ServiceCheckpoint::from_checkpoint_string("sizey-service-checkpoint v1\nshards 2\n"),
            Err(StateError::Parse { line: 2, .. })
        ));
        // A `shards 0` file parses (structurally valid), but restoring a
        // service from it is an error, not a panic — this path handles
        // external data.
        let empty =
            ServiceCheckpoint::from_checkpoint_string("sizey-service-checkpoint v1\nshards 0\n")
                .unwrap();
        assert!(matches!(
            ConcurrentSizey::sizey_from_checkpoint(SizeyConfig::default(), &empty),
            Err(StateError::EmptyCheckpoint)
        ));
    }

    /// Snapshot counters are name-sorted (the `PredictorState` contract), so
    /// restoring a `merged()` checkpoint — which also name-sorts — and
    /// re-snapshotting reproduces it even when several offset strategies
    /// have non-zero tallies.
    #[test]
    fn merged_checkpoint_with_multiple_counters_round_trips() {
        use sizey_sim::MemoryPredictor;
        let mut predictor = SizeyPredictor::with_defaults();
        // Alternate between two histories so the dynamic offset selection
        // picks different strategies over time.
        for i in 1..=60u64 {
            let input = (i % 13 + 1) as f64 * 1e9;
            let noise = if i % 3 == 0 { 2.5e9 } else { -0.4e9 };
            predictor.observe(&record("mix", i, input, 1.7 * input + 1e9 + noise));
            let _ = predictor.predict(
                &submission("mix", 1000 + i, input * 1.1),
                AttemptContext::first(),
            );
        }
        let state = predictor.snapshot();
        let names: Vec<&str> = state.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot counters must be name-sorted");

        let service = ConcurrentSizey::sizey(SizeyConfig::default(), 3);
        for i in 1..=40u64 {
            let input = (i % 11 + 1) as f64 * 1e9;
            service.observe(&record("a", i, input, 2.0 * input + 5e8));
            let _ = service.predict(&submission("a", 2000 + i, input), AttemptContext::first());
        }
        let merged = service.checkpoint().merged();
        let mut restored = SizeyPredictor::with_defaults();
        restored.restore(&merged).unwrap();
        assert_eq!(
            restored.snapshot(),
            merged,
            "restored merged state must re-snapshot identically"
        );
    }
}
