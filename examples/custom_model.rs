//! Extending the framework: plug a custom sizing method into the same online
//! simulator used by the evaluation, and plug a custom regression model into
//! the ML substrate.
//!
//! The paper positions Sizey as "an easily extendable interface"; this
//! example demonstrates both extension points:
//!
//! 1. a custom `Regressor` (a robust median-ratio model), and
//! 2. a custom `MemoryPredictor` built on top of it, replayed against Sizey.
//!
//! Run with `cargo run --release --example custom_model`.

use sizey_suite::prelude::*;
use std::collections::HashMap;

/// A tiny domain-specific regressor: predicts `median(peak / input) * input`.
/// It is robust to outliers and needs almost no training time, but cannot
/// capture non-linear behaviour.
#[derive(Debug, Clone, Default)]
struct MedianRatioModel {
    ratios: Vec<f64>,
}

impl Regressor for MedianRatioModel {
    fn fit(&mut self, data: &Dataset) -> Result<(), sizey_ml::ModelError> {
        self.ratios.clear();
        for (features, target) in data.iter() {
            if features[0] > 0.0 {
                self.ratios.push(target / features[0]);
            }
        }
        Ok(())
    }

    fn partial_fit(&mut self, data: &Dataset) -> Result<(), sizey_ml::ModelError> {
        for (features, target) in data.iter() {
            if features[0] > 0.0 {
                self.ratios.push(target / features[0]);
            }
        }
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> Result<f64, sizey_ml::ModelError> {
        if self.ratios.is_empty() {
            return Err(sizey_ml::ModelError::NotFitted);
        }
        let mut sorted = self.ratios.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        Ok(sorted[sorted.len() / 2] * features[0])
    }

    fn is_fitted(&self) -> bool {
        !self.ratios.is_empty()
    }

    fn class(&self) -> ModelClass {
        // Behaves like a (robust) linear model for bookkeeping purposes.
        ModelClass::Linear
    }

    fn clone_box(&self) -> Box<dyn Regressor> {
        Box::new(self.clone())
    }
}

/// A complete sizing method built around the custom model: per task type it
/// keeps one `MedianRatioModel`, adds a 20% safety margin, and doubles on
/// failure. It implements the same `MemoryPredictor` trait as Sizey and every
/// baseline, so the replay engine and all accounting work unchanged.
#[derive(Default)]
struct MedianRatioSizer {
    models: HashMap<TaskMachineKey, MedianRatioModel>,
}

impl MemoryPredictor for MedianRatioSizer {
    fn name(&self) -> String {
        "MedianRatio (custom)".to_string()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        let key = TaskMachineKey {
            task_type: task.task_type.clone(),
            machine: task.machine.clone(),
        };
        let raw = self
            .models
            .get(&key)
            .and_then(|m| m.predict(&task.features()).ok());
        let base = raw.map(|r| r * 1.2).unwrap_or(task.preset_memory_bytes);
        Prediction {
            allocation_bytes: base * 2.0_f64.powi(ctx.attempt as i32),
            raw_estimate_bytes: raw,
            selected_model: Some("median-ratio"),
        }
    }

    fn observe(&mut self, record: &TaskRecord) {
        if record.outcome != TaskOutcome::Succeeded {
            return;
        }
        let model = self.models.entry(record.key()).or_default();
        let point = Dataset::from_parts(vec![record.features()], vec![record.peak_memory_bytes]);
        let _ = model.partial_fit(&point);
    }
}

fn main() {
    let spec = profiles::chipseq();
    let instances = generate_workflow(&spec, &GeneratorConfig::scaled(0.08, 11));
    let sim = SimulationConfig::default();
    println!(
        "Comparing sizing methods on {} ({} instances):\n",
        spec.name,
        instances.len()
    );

    let mut rows: Vec<(String, f64, usize)> = Vec::new();
    let mut custom = MedianRatioSizer::default();
    let report = replay_workflow(&spec.name, &instances, &mut custom, &sim);
    rows.push((
        report.method.clone(),
        report.total_wastage_gbh(),
        report.total_failures(),
    ));

    let mut sizey = SizeyPredictor::with_defaults();
    let report = replay_workflow(&spec.name, &instances, &mut sizey, &sim);
    rows.push((
        report.method.clone(),
        report.total_wastage_gbh(),
        report.total_failures(),
    ));

    let mut presets = PresetPredictor;
    let report = replay_workflow(&spec.name, &instances, &mut presets, &sim);
    rows.push((
        report.method.clone(),
        report.total_wastage_gbh(),
        report.total_failures(),
    ));

    println!("{:<24} {:>14} {:>10}", "method", "wastage GBh", "failures");
    for (name, wastage, failures) in rows {
        println!("{name:<24} {wastage:>14.2} {failures:>10}");
    }
    println!();
    println!("The custom ratio model handles the linear task types well, but Sizey's model");
    println!("pool additionally adapts to the non-linear and bimodal ones.");
}
