//! Deterministic fault injection for the event-driven engines.
//!
//! Real clusters lose nodes, have whole spot pools reclaimed, and kill tasks
//! for reasons that have nothing to do with memory sizing. A [`FaultPlan`]
//! describes such a scenario declaratively — single node crashes, correlated
//! crash *storms*, spot-pool preemptions and targeted task kills — and is
//! compiled against a [`SimulationConfig`] into a sorted schedule of concrete
//! [`FaultEvent`]s driven by the engines' virtual clock.
//!
//! # Determinism contract
//!
//! Everything is a pure function of the plan, the cluster shape and the
//! per-storm seeds: compiling the same plan against the same config always
//! yields the same event schedule, and the two event-driven engines
//! ([`schedule_workflows`](crate::schedule_workflows) and
//! [`schedule_workflows_streaming`](crate::schedule_workflows_streaming))
//! process it identically — the fault-determinism property suite pins replays
//! bit-identical across runs and across engines for every policy.
//!
//! # Requeue semantics
//!
//! A fault kills the *attempt*, not the task: every running attempt on a
//! failed node re-enters the pending queue at the same virtual time with an
//! **unchanged attempt number** and an untouched retry ledger. A
//! fault-requeued attempt is therefore *not* an OOM failure — it does not
//! consume [`SimulationConfig::max_attempts`] budget and does not trigger
//! the predictors' max-then-double escalation.

// Fault events fire inside the engines' event loops; the marker opts this
// module into the no-panic-hot-path lint rule.
#![doc = "lint:hot-path"]

use crate::config::SimulationConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One node going down at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCrash {
    /// Virtual time of the crash in seconds.
    pub time_seconds: f64,
    /// Index of the crashing node (out-of-range indices are ignored).
    pub node: usize,
    /// How long the node stays down; `f64::INFINITY` means it never returns.
    pub down_seconds: f64,
}

/// A correlated burst of node crashes (rack/power-domain failure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashStorm {
    /// Virtual time of the storm in seconds.
    pub time_seconds: f64,
    /// Number of distinct nodes taken down (capped at the cluster size).
    pub nodes: usize,
    /// How long the victims stay down; `f64::INFINITY` means forever.
    pub down_seconds: f64,
    /// Seed selecting the victim nodes — the storm is deterministic given
    /// the seed and the cluster shape.
    pub seed: u64,
}

/// A whole node pool reclaimed at once (spot/preemptible capacity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolPreemption {
    /// Index into [`SimulationConfig::node_pools`]: `0` is the default pool,
    /// `1..` the extra pools in declaration order (out-of-range ignored).
    pub pool: usize,
    /// Virtual time of the reclaim in seconds.
    pub time_seconds: f64,
    /// Seconds until the pool's nodes return; `f64::INFINITY` means never.
    pub return_after_seconds: f64,
}

/// A burst of transient task kills (e.g. an external supervisor reaping the
/// oldest running attempts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskKillBurst {
    /// Virtual time of the burst in seconds.
    pub time_seconds: f64,
    /// Number of running attempts killed, oldest dispatch first.
    pub tasks: usize,
}

/// A declarative fault-injection scenario for one simulation run.
///
/// Attach it to a config via [`SimulationConfig::with_faults`]; the engines
/// compile it once at start-up and the default empty plan is bit-identical
/// to running without one.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Single node crashes.
    pub node_crashes: Vec<NodeCrash>,
    /// Correlated crash storms.
    pub storms: Vec<CrashStorm>,
    /// Spot-pool preemptions.
    pub pool_preemptions: Vec<PoolPreemption>,
    /// Transient task-kill bursts.
    pub task_kills: Vec<TaskKillBurst>,
}

/// Why a node went down — reported separately in
/// [`SchedulerStats`](crate::SchedulerStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCause {
    /// A crash (single or storm).
    Crash,
    /// A spot-pool reclaim.
    Preemption,
}

/// A concrete action the engine applies at a fault event's time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Take a node offline, requeueing every attempt running on it.
    NodeDown {
        /// Node index.
        node: usize,
        /// Crash or preemption (drives the stats counters).
        cause: FaultCause,
    },
    /// Bring a node back online.
    NodeUp {
        /// Node index.
        node: usize,
    },
    /// Kill the `tasks` oldest running attempts and requeue them.
    KillTasks {
        /// Number of attempts to kill.
        tasks: usize,
    },
}

/// One compiled fault event on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Virtual time at which the action fires, in seconds.
    pub time_seconds: f64,
    /// What happens.
    pub action: FaultAction,
}

impl FaultPlan {
    /// True when the plan injects nothing (the engines skip compilation).
    pub fn is_empty(&self) -> bool {
        self.node_crashes.is_empty()
            && self.storms.is_empty()
            && self.pool_preemptions.is_empty()
            && self.task_kills.is_empty()
    }

    /// Adds a single node crash.
    pub fn with_node_crash(mut self, crash: NodeCrash) -> Self {
        self.node_crashes.push(crash);
        self
    }

    /// Adds a correlated crash storm.
    pub fn with_storm(mut self, storm: CrashStorm) -> Self {
        self.storms.push(storm);
        self
    }

    /// Adds a spot-pool preemption.
    pub fn with_pool_preemption(mut self, preemption: PoolPreemption) -> Self {
        self.pool_preemptions.push(preemption);
        self
    }

    /// Adds a transient task-kill burst.
    pub fn with_task_kills(mut self, burst: TaskKillBurst) -> Self {
        self.task_kills.push(burst);
        self
    }

    /// Compiles the plan into a time-sorted schedule of concrete events for
    /// the cluster described by `config`.
    ///
    /// * Storm victims are drawn with a [`StdRng`] seeded from the storm's
    ///   seed — distinct nodes, reported in ascending id order.
    /// * Pool preemptions resolve the pool index against
    ///   [`SimulationConfig::node_pools`] node-id ranges.
    /// * Events with non-finite times, and node/pool indices outside the
    ///   cluster, are skipped rather than panicking.
    /// * A finite non-negative downtime schedules the matching `NodeUp`;
    ///   an infinite one keeps the node down forever.
    ///
    /// The sort is stable, so events sharing a time fire in plan-declaration
    /// order (crashes, then storms, then preemptions, then kills).
    pub fn compile(&self, config: &SimulationConfig) -> Vec<FaultEvent> {
        let pools = config.node_pools();
        let node_count: usize = pools.iter().map(|p| p.count).sum();
        let mut out: Vec<FaultEvent> = Vec::new();

        let mut down_up = |time: f64, nodes: &[usize], down: f64, cause: FaultCause| {
            if !time.is_finite() || time < 0.0 {
                return;
            }
            for &node in nodes {
                if node >= node_count {
                    continue;
                }
                out.push(FaultEvent {
                    time_seconds: time,
                    action: FaultAction::NodeDown { node, cause },
                });
                let down = down.max(0.0);
                if down.is_finite() {
                    out.push(FaultEvent {
                        time_seconds: time + down,
                        action: FaultAction::NodeUp { node },
                    });
                }
            }
        };

        for crash in &self.node_crashes {
            down_up(
                crash.time_seconds,
                &[crash.node],
                crash.down_seconds,
                FaultCause::Crash,
            );
        }
        for storm in &self.storms {
            let mut ids: Vec<usize> = (0..node_count).collect();
            let mut rng = StdRng::seed_from_u64(storm.seed);
            ids.shuffle(&mut rng);
            ids.truncate(storm.nodes.min(node_count));
            ids.sort_unstable();
            down_up(
                storm.time_seconds,
                &ids,
                storm.down_seconds,
                FaultCause::Crash,
            );
        }
        for preemption in &self.pool_preemptions {
            let mut start = 0usize;
            let mut range: Vec<usize> = Vec::new();
            for (pi, pool) in pools.iter().enumerate() {
                if pi == preemption.pool {
                    range = (start..start + pool.count).collect();
                    break;
                }
                start += pool.count;
            }
            down_up(
                preemption.time_seconds,
                &range,
                preemption.return_after_seconds,
                FaultCause::Preemption,
            );
        }
        for burst in &self.task_kills {
            if !burst.time_seconds.is_finite() || burst.time_seconds < 0.0 || burst.tasks == 0 {
                continue;
            }
            out.push(FaultEvent {
                time_seconds: burst.time_seconds,
                action: FaultAction::KillTasks { tasks: burst.tasks },
            });
        }

        out.sort_by(|a, b| a.time_seconds.total_cmp(&b.time_seconds));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SimulationConfig {
        SimulationConfig::default()
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.compile(&config()).is_empty());
    }

    #[test]
    fn single_crash_schedules_down_and_up() {
        let plan = FaultPlan::default().with_node_crash(NodeCrash {
            time_seconds: 100.0,
            node: 3,
            down_seconds: 50.0,
        });
        let events = plan.compile(&config());
        assert_eq!(
            events,
            vec![
                FaultEvent {
                    time_seconds: 100.0,
                    action: FaultAction::NodeDown {
                        node: 3,
                        cause: FaultCause::Crash
                    },
                },
                FaultEvent {
                    time_seconds: 150.0,
                    action: FaultAction::NodeUp { node: 3 },
                },
            ]
        );
    }

    #[test]
    fn permanent_crash_never_schedules_node_up() {
        let plan = FaultPlan::default().with_node_crash(NodeCrash {
            time_seconds: 10.0,
            node: 0,
            down_seconds: f64::INFINITY,
        });
        let events = plan.compile(&config());
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].action, FaultAction::NodeDown { .. }));
    }

    #[test]
    fn storms_pick_distinct_nodes_deterministically() {
        let storm = CrashStorm {
            time_seconds: 500.0,
            nodes: 3,
            down_seconds: 100.0,
            seed: 7,
        };
        let plan = FaultPlan::default().with_storm(storm);
        let a = plan.compile(&config());
        let b = plan.compile(&config());
        assert_eq!(a, b, "storm compilation must be deterministic");
        let downs: Vec<usize> = a
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::NodeDown { node, .. } => Some(node),
                _ => None,
            })
            .collect();
        assert_eq!(downs.len(), 3);
        let mut dedup = downs.clone();
        dedup.dedup();
        assert_eq!(dedup, downs, "victims must be distinct and sorted");
        assert!(downs.iter().all(|&n| n < 8));
        // A different seed picks a different victim set (with 8C3 = 56
        // possibilities the chance of collision across these seeds is tiny;
        // pinned by the fixed seeds).
        let other = FaultPlan::default()
            .with_storm(CrashStorm { seed: 8, ..storm })
            .compile(&config());
        assert_ne!(a, other);
    }

    #[test]
    fn storm_size_is_capped_at_the_cluster() {
        let plan = FaultPlan::default().with_storm(CrashStorm {
            time_seconds: 0.0,
            nodes: 100,
            down_seconds: 1.0,
            seed: 1,
        });
        let downs = plan
            .compile(&config())
            .iter()
            .filter(|e| matches!(e.action, FaultAction::NodeDown { .. }))
            .count();
        assert_eq!(downs, 8);
    }

    #[test]
    fn pool_preemption_reclaims_the_whole_pool_range() {
        let config = SimulationConfig::default().with_extra_pool(crate::config::NodePoolSpec {
            count: 2,
            memory_bytes: 256e9,
            slots: 16,
        });
        let plan = FaultPlan::default().with_pool_preemption(PoolPreemption {
            pool: 1,
            time_seconds: 200.0,
            return_after_seconds: 300.0,
        });
        let events = plan.compile(&config);
        // Default pool is 8 nodes, so the extra pool covers ids 8 and 9.
        let downs: Vec<usize> = events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::NodeDown { node, cause } => {
                    assert_eq!(cause, FaultCause::Preemption);
                    Some(node)
                }
                _ => None,
            })
            .collect();
        assert_eq!(downs, vec![8, 9]);
        let ups = events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::NodeUp { .. }))
            .count();
        assert_eq!(ups, 2);
        // Out-of-range pools are ignored rather than panicking.
        let bogus = FaultPlan::default().with_pool_preemption(PoolPreemption {
            pool: 9,
            time_seconds: 0.0,
            return_after_seconds: 1.0,
        });
        assert!(bogus.compile(&config).is_empty());
    }

    #[test]
    fn invalid_targets_and_times_are_skipped() {
        let plan = FaultPlan::default()
            .with_node_crash(NodeCrash {
                time_seconds: 1.0,
                node: 99,
                down_seconds: 1.0,
            })
            .with_node_crash(NodeCrash {
                time_seconds: f64::NAN,
                node: 0,
                down_seconds: 1.0,
            })
            .with_node_crash(NodeCrash {
                time_seconds: -5.0,
                node: 0,
                down_seconds: 1.0,
            })
            .with_task_kills(TaskKillBurst {
                time_seconds: 3.0,
                tasks: 0,
            });
        assert!(plan.compile(&config()).is_empty());
    }

    #[test]
    fn events_sort_by_time_with_stable_declaration_order() {
        let plan = FaultPlan::default()
            .with_node_crash(NodeCrash {
                time_seconds: 300.0,
                node: 1,
                down_seconds: f64::INFINITY,
            })
            .with_node_crash(NodeCrash {
                time_seconds: 100.0,
                node: 2,
                down_seconds: f64::INFINITY,
            })
            .with_task_kills(TaskKillBurst {
                time_seconds: 100.0,
                tasks: 4,
            });
        let events = plan.compile(&config());
        let times: Vec<f64> = events.iter().map(|e| e.time_seconds).collect();
        assert_eq!(times, vec![100.0, 100.0, 300.0]);
        // Same-time tie: the crash was declared before the kill burst.
        assert!(matches!(events[0].action, FaultAction::NodeDown { .. }));
        assert!(matches!(events[1].action, FaultAction::KillTasks { .. }));
    }
}
