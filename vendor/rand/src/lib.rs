//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.8 API its members
//! actually use: [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! splitmix64 — deterministic for a given seed, with distribution quality
//! good enough for the statistical assertions in the workflow sampling
//! tests (moment checks over tens of thousands of draws). It is **not**
//! the same stream as upstream `StdRng`, which is fine: the workspace
//! only relies on determinism, not on a specific stream.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)` using the top 53
    /// bits of [`RngCore::next_u64`].
    fn next_f64(&mut self) -> f64 {
        // 2^-53; the mantissa of an f64 holds exactly 53 significant bits.
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }
}

/// User-facing random value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`: uniform in `[0, 1)`; integers: uniform over the full range;
    /// `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics when the range is empty, matching upstream behaviour.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, span)` with the widening-multiply trick
/// (Lemire); bias is at most 2^-64 per value, irrelevant at our scales.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.next_f64() as f32 * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait giving slices an in-place Fisher–Yates [`shuffle`].
    ///
    /// [`shuffle`]: SliceRandom::shuffle
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Shuffles the slice uniformly in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
