//! A minimal cluster capacity model.
//!
//! Scheduling (ordering and placement) is explicitly out of scope for the
//! paper (assumption A2), but the simulator still needs a notion of nodes
//! with finite memory: allocations are clamped to a node's capacity, and the
//! engine tracks how many tasks are running concurrently so that learned
//! methods can use that as context (the provenance store exposes it). The
//! cluster uses a simple first-fit placement over identical nodes.

use crate::config::SimulationConfig;

/// State of one cluster node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Node index.
    pub id: usize,
    /// Total memory in bytes.
    pub memory_bytes: f64,
    /// Memory currently allocated to running tasks, in bytes.
    pub allocated_bytes: f64,
    /// Task slots (hardware threads).
    pub slots: usize,
    /// Slots currently in use.
    pub used_slots: usize,
}

impl Node {
    /// Free memory on this node.
    pub fn free_bytes(&self) -> f64 {
        (self.memory_bytes - self.allocated_bytes).max(0.0)
    }

    /// True when the node can host a task with the given allocation.
    pub fn fits(&self, allocation_bytes: f64) -> bool {
        self.used_slots < self.slots && allocation_bytes <= self.free_bytes() + 1e-6
    }
}

/// A running-task lease handed out by [`Cluster::try_place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the node hosting the task.
    pub node: usize,
}

/// The cluster capacity model: a set of identical nodes.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
}

impl Cluster {
    /// Builds the cluster described by a simulation config.
    pub fn new(config: &SimulationConfig) -> Self {
        Cluster {
            nodes: (0..config.node_count)
                .map(|id| Node {
                    id,
                    memory_bytes: config.node_memory_bytes,
                    allocated_bytes: 0.0,
                    slots: config.slots_per_node,
                    used_slots: 0,
                })
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The memory capacity of a single node (the upper bound for any single
    /// allocation).
    pub fn node_memory_bytes(&self) -> f64 {
        self.nodes.first().map_or(0.0, |n| n.memory_bytes)
    }

    /// Number of currently running tasks across the cluster.
    pub fn running_tasks(&self) -> usize {
        self.nodes.iter().map(|n| n.used_slots).sum()
    }

    /// Total allocated memory across the cluster in bytes.
    pub fn allocated_bytes(&self) -> f64 {
        self.nodes.iter().map(|n| n.allocated_bytes).sum()
    }

    /// Attempts to place a task with the given allocation using first fit.
    /// Returns `None` when no node currently has room (the engine then
    /// releases the oldest running task first — replay is not a scheduler,
    /// it just needs occupancy numbers).
    pub fn try_place(&mut self, allocation_bytes: f64) -> Option<Placement> {
        for node in &mut self.nodes {
            if node.fits(allocation_bytes) {
                node.allocated_bytes += allocation_bytes;
                node.used_slots += 1;
                return Some(Placement { node: node.id });
            }
        }
        None
    }

    /// Releases a placement obtained from [`Cluster::try_place`].
    pub fn release(&mut self, placement: Placement, allocation_bytes: f64) {
        let node = &mut self.nodes[placement.node];
        node.allocated_bytes = (node.allocated_bytes - allocation_bytes).max(0.0);
        node.used_slots = node.used_slots.saturating_sub(1);
    }

    /// View of all nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> Cluster {
        Cluster::new(&SimulationConfig {
            node_count: 2,
            node_memory_bytes: 10e9,
            slots_per_node: 2,
            ..SimulationConfig::default()
        })
    }

    #[test]
    fn new_cluster_matches_config() {
        let c = small_cluster();
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_memory_bytes(), 10e9);
        assert_eq!(c.running_tasks(), 0);
        assert_eq!(c.allocated_bytes(), 0.0);
    }

    #[test]
    fn first_fit_fills_first_node_then_second() {
        let mut c = small_cluster();
        let p1 = c.try_place(6e9).unwrap();
        assert_eq!(p1.node, 0);
        // 6 GB left on node 0 is not enough for 8 GB, spill to node 1.
        let p2 = c.try_place(8e9).unwrap();
        assert_eq!(p2.node, 1);
        assert_eq!(c.running_tasks(), 2);
        assert_eq!(c.allocated_bytes(), 14e9);
    }

    #[test]
    fn placement_fails_when_no_capacity() {
        let mut c = small_cluster();
        assert!(c.try_place(11e9).is_none(), "larger than any node");
        // Fill all slots.
        let _ = c.try_place(1e9).unwrap();
        let _ = c.try_place(1e9).unwrap();
        let _ = c.try_place(1e9).unwrap();
        let _ = c.try_place(1e9).unwrap();
        assert!(c.try_place(1e9).is_none(), "all slots busy");
    }

    #[test]
    fn release_restores_capacity() {
        let mut c = small_cluster();
        let p = c.try_place(9e9).unwrap();
        assert!(c.try_place(9e9).is_some(), "second node still free");
        c.release(p, 9e9);
        assert_eq!(c.running_tasks(), 1);
        let free_node0 = c.nodes()[0].free_bytes();
        assert!((free_node0 - 10e9).abs() < 1e-3);
    }

    #[test]
    fn release_never_goes_negative() {
        let mut c = small_cluster();
        let p = c.try_place(1e9).unwrap();
        c.release(p, 5e9);
        assert!(c.nodes()[0].allocated_bytes >= 0.0);
        assert_eq!(c.running_tasks(), 0);
        c.release(Placement { node: 0 }, 1e9);
        assert_eq!(c.running_tasks(), 0);
    }

    #[test]
    fn fits_respects_slots_and_memory() {
        let n = Node {
            id: 0,
            memory_bytes: 8e9,
            allocated_bytes: 6e9,
            slots: 1,
            used_slots: 0,
        };
        assert!(n.fits(2e9));
        assert!(!n.fits(3e9));
        let full = Node { used_slots: 1, ..n };
        assert!(!full.fits(1e9));
    }
}
