//! Prediction offsets and their dynamic selection (Section II-E).
//!
//! Sizey aims for accurate predictions, so small under-predictions would
//! immediately cause task failures. A safety offset is therefore added to the
//! aggregated estimate. Four candidate strategies are maintained — the
//! standard deviation of the prediction errors, the standard deviation of the
//! under-prediction errors, the median absolute error, and the median
//! under-prediction error — and during online learning the strategy that
//! *would have* caused the least wastage on the already executed tasks is
//! selected.

use sizey_ml::metrics::{percentile_in_place, std_dev};

/// The four offset strategies of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OffsetStrategy {
    /// Standard deviation of all prediction errors.
    StdDev,
    /// Standard deviation of the under-prediction errors only.
    StdDevUnderpredictions,
    /// Median absolute prediction error.
    MedianError,
    /// Median under-prediction error.
    MedianErrorUnderpredictions,
}

impl OffsetStrategy {
    /// All candidate strategies considered by the dynamic selection.
    pub const ALL: [OffsetStrategy; 4] = [
        OffsetStrategy::StdDev,
        OffsetStrategy::StdDevUnderpredictions,
        OffsetStrategy::MedianError,
        OffsetStrategy::MedianErrorUnderpredictions,
    ];

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            OffsetStrategy::StdDev => "std-dev",
            OffsetStrategy::StdDevUnderpredictions => "std-dev-under",
            OffsetStrategy::MedianError => "median-error",
            OffsetStrategy::MedianErrorUnderpredictions => "median-error-under",
        }
    }

    /// Computes the offset (in bytes) this strategy derives from the history
    /// of `(prediction, actual)` pairs.
    pub fn offset(&self, history: &[(f64, f64)]) -> f64 {
        let mut scratch = OffsetScratch::default();
        self.offset_with(history, &mut scratch)
    }

    /// [`OffsetStrategy::offset`] over caller-owned buffers — the
    /// allocation-free twin used by the predict hot path. Identical
    /// arithmetic: the same error values in the same order, the median
    /// strategies sort the scratch buffer in place instead of a fresh copy.
    pub fn offset_with(&self, history: &[(f64, f64)], scratch: &mut OffsetScratch) -> f64 {
        if history.is_empty() {
            return 0.0;
        }
        // error > 0 means the model under-predicted (actual above estimate).
        let errors = &mut scratch.errors;
        errors.clear();
        errors.extend(history.iter().map(|&(pred, actual)| actual - pred));
        let values = &mut scratch.values;
        values.clear();
        let value = match self {
            OffsetStrategy::StdDev => std_dev(errors),
            OffsetStrategy::StdDevUnderpredictions => {
                values.extend(errors.iter().copied().filter(|e| *e > 0.0));
                std_dev(values)
            }
            OffsetStrategy::MedianError => {
                values.extend(errors.iter().map(|e| e.abs()));
                percentile_in_place(values, 50.0)
            }
            OffsetStrategy::MedianErrorUnderpredictions => {
                values.extend(errors.iter().copied().filter(|e| *e > 0.0));
                percentile_in_place(values, 50.0)
            }
        };
        value.max(0.0)
    }
}

/// Reusable buffers for the offset computations on the predict hot path.
#[derive(Debug, Default, Clone)]
pub struct OffsetScratch {
    /// Signed prediction errors (`actual - pred`).
    errors: Vec<f64>,
    /// Strategy-specific working set (under-predictions or absolute errors);
    /// the median strategies sort it in place.
    values: Vec<f64>,
}

impl std::fmt::Display for OffsetStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hypothetical wastage (in bytes, duration-free) of sizing the historical
/// tasks with `prediction + offset`: sufficient allocations waste their
/// surplus, insufficient allocations waste the whole allocation plus the
/// overshoot of the subsequent retry. The retry follows Sizey's failure
/// handling (maximum ever observed, roughly twice the typical peak), so its
/// cost is approximated as `2 × actual`.
pub fn hypothetical_wastage(history: &[(f64, f64)], offset: f64) -> f64 {
    history
        .iter()
        .map(|&(pred, actual)| {
            let alloc = pred + offset;
            if alloc >= actual {
                alloc - actual
            } else {
                alloc + 2.0 * actual
            }
        })
        .sum()
}

/// Selects the offset strategy that would have caused the least wastage on
/// the observed history (the paper's dynamic offset selection), together with
/// the offset value it yields.
pub fn select_dynamic_offset(history: &[(f64, f64)]) -> (OffsetStrategy, f64) {
    let mut scratch = OffsetScratch::default();
    select_dynamic_offset_with(history, &mut scratch)
}

/// [`select_dynamic_offset`] over caller-owned buffers — the allocation-free
/// twin used by the predict hot path. Identical candidate order and
/// tie-breaking.
pub fn select_dynamic_offset_with(
    history: &[(f64, f64)],
    scratch: &mut OffsetScratch,
) -> (OffsetStrategy, f64) {
    let mut best = (
        OffsetStrategy::StdDev,
        OffsetStrategy::StdDev.offset_with(history, scratch),
    );
    let mut best_cost = f64::INFINITY;
    for strategy in OffsetStrategy::ALL {
        let offset = strategy.offset_with(history, scratch);
        let cost = hypothetical_wastage(history, offset);
        if cost < best_cost {
            best_cost = cost;
            best = (strategy, offset);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_gives_zero_offset() {
        for s in OffsetStrategy::ALL {
            assert_eq!(s.offset(&[]), 0.0);
        }
    }

    #[test]
    fn perfect_predictions_need_no_offset() {
        let history = vec![(1e9, 1e9), (2e9, 2e9)];
        for s in OffsetStrategy::ALL {
            assert_eq!(s.offset(&history), 0.0, "{s}");
        }
    }

    #[test]
    fn median_error_under_matches_manual_value() {
        // Errors: +1 GB, +3 GB, -2 GB → under-predictions {1, 3} → median 2.
        let history = vec![(1e9, 2e9), (1e9, 4e9), (5e9, 3e9)];
        let s = OffsetStrategy::MedianErrorUnderpredictions;
        assert!((s.offset(&history) - 2e9).abs() < 1e-3);
    }

    #[test]
    fn median_error_uses_absolute_errors() {
        let history = vec![(1e9, 2e9), (5e9, 3e9)];
        // |errors| = {1 GB, 2 GB} → median 1.5 GB.
        assert!((OffsetStrategy::MedianError.offset(&history) - 1.5e9).abs() < 1e-3);
    }

    #[test]
    fn std_dev_strategies_are_nonnegative() {
        let history = vec![(1e9, 0.5e9), (1e9, 1.5e9), (1e9, 3e9)];
        for s in OffsetStrategy::ALL {
            assert!(s.offset(&history) >= 0.0);
        }
    }

    #[test]
    fn only_overpredictions_yield_zero_underprediction_offsets() {
        let history = vec![(5e9, 1e9), (6e9, 2e9)];
        assert_eq!(OffsetStrategy::StdDevUnderpredictions.offset(&history), 0.0);
        assert_eq!(
            OffsetStrategy::MedianErrorUnderpredictions.offset(&history),
            0.0
        );
    }

    #[test]
    fn hypothetical_wastage_penalises_failures() {
        let history = vec![(1e9, 2e9)];
        // offset 0: alloc 1 < 2 → waste 1 + 2·2 = 5.
        assert!((hypothetical_wastage(&history, 0.0) - 5e9).abs() < 1e-3);
        // offset 1.5 GB: alloc 2.5 ≥ 2 → waste 0.5.
        assert!((hypothetical_wastage(&history, 1.5e9) - 0.5e9).abs() < 1e-3);
    }

    #[test]
    fn dynamic_selection_prefers_covering_systematic_underprediction() {
        // Model systematically under-predicts by ~2 GB: strategies that
        // produce a ~2 GB offset should win over near-zero offsets.
        let history: Vec<(f64, f64)> = (1..=20)
            .map(|i| (i as f64 * 1e9, i as f64 * 1e9 + 2e9))
            .collect();
        let (strategy, offset) = select_dynamic_offset(&history);
        assert!(offset >= 1.9e9, "{strategy} offset {offset}");
        let cost_selected = hypothetical_wastage(&history, offset);
        for s in OffsetStrategy::ALL {
            let cost = hypothetical_wastage(&history, s.offset(&history));
            assert!(cost_selected <= cost + 1e-6);
        }
    }

    #[test]
    fn dynamic_selection_avoids_oversized_offsets_for_accurate_models() {
        // Accurate model with small symmetric noise: the cheapest offset is a
        // small one (median-based), not a large one.
        let history: Vec<(f64, f64)> = (1..=50)
            .map(|i| {
                let actual = 10e9;
                let noise = if i % 2 == 0 { 0.1e9 } else { -0.1e9 };
                (actual + noise, actual)
            })
            .collect();
        let (_, offset) = select_dynamic_offset(&history);
        assert!(offset <= 0.2e9, "offset {offset} should stay small");
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            OffsetStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
