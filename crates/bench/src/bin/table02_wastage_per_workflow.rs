//! Table II — aggregated memory wastage over time (GBh) for every workflow
//! and every method.
//!
//! Run with `cargo run -p sizey-bench --release --bin table02_wastage_per_workflow`.

use sizey_bench::{
    banner, evaluate_all_methods, fmt, generate_workloads, render_table, HarnessSettings,
};
use sizey_sim::{aggregate_method, SimulationConfig};
use sizey_workflows::WORKFLOW_NAMES;

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Table II: memory wastage (GBh) per workflow and method",
        &settings,
    );

    let workloads = generate_workloads(&settings);
    let sim = SimulationConfig::default();
    let results = evaluate_all_methods(&workloads, &sim);

    let headers: Vec<&str> = std::iter::once("Method")
        .chain(WORKFLOW_NAMES.iter().copied())
        .collect();

    let mut rows = Vec::new();
    for (method, reports) in &results {
        let agg = aggregate_method(reports);
        let mut row = vec![method.name().to_string()];
        for wf in WORKFLOW_NAMES {
            row.push(fmt(
                agg.wastage_per_workflow.get(wf).copied().unwrap_or(0.0),
                2,
            ));
        }
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));

    // Count how many workflows Sizey wins outright.
    let sizey = aggregate_method(&results[0].1);
    let mut wins = 0;
    for wf in WORKFLOW_NAMES {
        let sizey_w = sizey.wastage_per_workflow.get(wf).copied().unwrap_or(0.0);
        let best_other = results
            .iter()
            .skip(1)
            .map(|(_, r)| {
                aggregate_method(r)
                    .wastage_per_workflow
                    .get(wf)
                    .copied()
                    .unwrap_or(f64::INFINITY)
            })
            .fold(f64::INFINITY, f64::min);
        if sizey_w < best_other {
            wins += 1;
        }
    }
    println!("Sizey has the lowest wastage in {wins} of 6 workflows (paper: 5 of 6).");
    println!("Paper reference (Table II), Sizey row: methylseq 631.62, chipseq 79.38,");
    println!("eager 678.19, rnaseq 43.62, mag 251.05, iwd 0.36 GBh.");
}
