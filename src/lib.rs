//! # sizey-suite
//!
//! Workspace-level façade for the Sizey reproduction. The actual
//! functionality lives in the member crates; this crate re-exports the most
//! commonly used entry points so that the examples under `examples/` and the
//! integration tests under `tests/` can use one coherent prelude.
//!
//! ```
//! use sizey_suite::prelude::*;
//!
//! let instances = generate_workflow(&profiles::iwd(), &GeneratorConfig::scaled(0.02, 1));
//! let mut sizey = SizeyPredictor::with_defaults();
//! let report = replay_workflow("iwd", &instances, &mut sizey, &SimulationConfig::default());
//! assert_eq!(report.method, "Sizey");
//! ```

#![warn(missing_docs)]

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use sizey_baselines::{PresetPredictor, TovarPpm, WittLr, WittPercentile, WittWastage};
    pub use sizey_bench::{
        aggregate_sweep, run_sweep, Experiment, ExperimentBuilder, ExperimentSpec, MethodSpec,
        RecoveryTracker, SpecError, SweepCell, SweepRow, SweepSpec, RECOVERY_BAND, RECOVERY_WINDOW,
    };
    pub use sizey_core::{
        AdmissionPolicy, AsyncHandle, AsyncService, AsyncSizey, AsyncSizeyHandle, BatchRequest,
        ConcurrentPredictor, ConcurrentSizey, GatingStrategy, OffsetMode, OffsetStrategy,
        OnlineMode, ServePredictor, ServiceCheckpoint, ServiceConfig, ServiceStats,
        SharedPredictor, SharedSizey, SizeyConfig, SizeyPredictor,
    };
    pub use sizey_ml::{Dataset, ModelClass, Regressor};
    pub use sizey_provenance::{
        MachineId, ProvenanceStore, TaskMachineKey, TaskOutcome, TaskRecord, TaskTypeId,
    };
    pub use sizey_sim::{
        aggregate_method, replay_workflow, replay_workflow_occupancy, replay_workflow_streaming,
        schedule_workflows, schedule_workflows_streaming, AttemptContext, AttemptSink,
        CheckpointPredictor, CompactedCheckpoint, CrashStorm, FaultPlan, MemoryPredictor,
        MultiReplayReport, NodeCrash, NodePoolSpec, NullRecordSink, NullSink, PoolPreemption,
        Prediction, PredictorState, RecordSink, ReplayAggregates, ReplayReport, SchedulePolicy,
        Scheduler, SchedulerStats, SimulationConfig, StateError, StreamingReplayReport,
        StreamingTenant, StreamingTenantReport, TaskKillBurst, TaskSubmission, WorkflowTenant,
    };
    pub use sizey_workflows::{
        all_workflows, generate_workflow, profiles, stream_workflow, DriftSpec, GeneratorConfig,
        TaskInstance, WorkflowSpec, WorkflowStream,
    };
}

pub use prelude::*;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let instances = generate_workflow(&profiles::iwd(), &GeneratorConfig::scaled(0.02, 5));
        let mut sizey = SizeyPredictor::with_defaults();
        let report = replay_workflow("iwd", &instances, &mut sizey, &SimulationConfig::default());
        assert_eq!(report.instances, instances.len());
    }
}
