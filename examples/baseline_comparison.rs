//! Compare Sizey against all four state-of-the-art baselines and the
//! workflow presets on a single workflow — a miniature version of the
//! paper's Fig. 8 / Table II experiment.
//!
//! Run with `cargo run --release --example baseline_comparison [workflow] [scale]`.

use sizey_suite::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workflow = args.get(1).map(String::as_str).unwrap_or("mag");
    let scale: f64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05_f64)
        .clamp(0.01, 1.0);
    let Some(spec) = sizey_workflows::workflow_by_name(workflow) else {
        eprintln!("unknown workflow {workflow:?}");
        std::process::exit(1);
    };

    let instances = generate_workflow(&spec, &GeneratorConfig::scaled(scale, 42));
    let sim = SimulationConfig::default();
    println!(
        "{} at scale {scale}: {} task instances, {} task types\n",
        spec.name,
        instances.len(),
        spec.n_task_types()
    );

    // The config-driven method registry replaces the old hand-built list of
    // predictors: one spec per method, `build()` per replay.
    let methods = MethodSpec::default_suite();

    println!(
        "{:<18} {:>14} {:>10} {:>12} {:>14}",
        "method", "wastage GBh", "failures", "runtime h", "unfinished"
    );
    let mut results: Vec<(String, f64)> = Vec::new();
    for method in &methods {
        let mut predictor = method.build();
        let report = replay_workflow(&spec.name, &instances, predictor.as_mut(), &sim);
        println!(
            "{:<18} {:>14.2} {:>10} {:>12.2} {:>14}",
            report.method,
            report.total_wastage_gbh(),
            report.total_failures(),
            report.total_runtime_hours(),
            report.unfinished_instances
        );
        results.push((report.method.clone(), report.total_wastage_gbh()));
    }

    let sizey = results[0].1;
    let best_baseline = results[1..results.len() - 1]
        .iter()
        .map(|(_, w)| *w)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nSizey vs best baseline on {}: {:.1}% lower wastage.",
        spec.name,
        (1.0 - sizey / best_baseline) * 100.0
    );
}
