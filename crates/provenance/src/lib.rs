//! # sizey-provenance
//!
//! Provenance substrate for the Sizey reproduction.
//!
//! In the paper (Fig. 3), Sizey is attached to the provenance database of a
//! scientific workflow management system: on every task submission it
//! retrieves the historical executions of the same task type on the same
//! machine configuration, and on every task completion new monitoring data is
//! appended. This crate provides:
//!
//! * [`record::TaskRecord`] — one finished physical task execution with its
//!   measured input size, peak memory, allocation, runtime and outcome,
//! * [`store::ProvenanceStore`] — a thread-safe, indexed in-memory store with
//!   the query surface Sizey needs,
//! * [`trace_io`] — a plain-text trace format for persisting and replaying
//!   collections of records.
//!
//! ## Example
//!
//! ```
//! use sizey_provenance::{ProvenanceStore, TaskRecord, TaskTypeId, MachineId, TaskOutcome, TaskMachineKey};
//!
//! let store = ProvenanceStore::new();
//! store.insert(TaskRecord {
//!     workflow: "rnaseq".into(),
//!     task_type: TaskTypeId::new("FastQC"),
//!     machine: MachineId::new("node-1"),
//!     sequence: 0,
//!     input_bytes: 1.5e9,
//!     peak_memory_bytes: 0.8e9,
//!     allocated_memory_bytes: 4.0e9,
//!     runtime_seconds: 300.0,
//!     concurrent_tasks: 2,
//!     queue_delay_seconds: 0.0,
//!     outcome: TaskOutcome::Succeeded,
//! });
//! let history = store.history(&TaskMachineKey::new("FastQC", "node-1"));
//! assert_eq!(history.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod record;
pub mod store;
pub mod trace_io;

pub use record::{
    bytes_to_gb, bytes_to_mb, gb_to_bytes, mb_to_bytes, KeyQuery, KeyRef, MachineId,
    TaskMachineKey, TaskOutcome, TaskRecord, TaskTypeId,
};
pub use store::ProvenanceStore;
pub use trace_io::{
    from_trace_string, read_trace, to_trace_string, trace_reader_from_file, trace_writer_to_file,
    write_trace, TraceError, TraceReader, TraceWriter,
};
