//! The cluster capacity model: a set of (possibly heterogeneous) nodes.
//!
//! The event-driven scheduler places tasks on concrete nodes and releases
//! them when they finish; the cluster tracks per-node occupancy (allocated
//! memory and busy slots) plus the high-water marks the property tests
//! assert against. Node selection is policy-driven: first fit walks the
//! nodes in index order, best fit picks the node that would be left with the
//! least free memory (tightest packing).

// The event-driven scheduler consults the cluster on every placement and
// release; the marker opts it into the no-panic-hot-path lint rule.
#![doc = "lint:hot-path"]

use crate::config::SimulationConfig;
use crate::scheduler::SchedulePolicy;
use std::collections::BTreeSet;

/// Relative tolerance used by [`Node::fits`], expressed as a fraction of the
/// node's capacity. Allocation counters are `f64` sums of many placements and
/// releases, so exact comparison would spuriously reject a task whose
/// allocation equals the mathematically free memory; an *absolute* epsilon
/// (the old `1e-6` bytes) is meaningless at byte scale because accumulated
/// rounding error grows with the magnitude of the counters, not with a fixed
/// byte budget. One part in 10⁹ of a 128 GB node is ~128 bytes — far below
/// any real allocation, far above the drift of summing a few hundred floats.
pub const FIT_TOLERANCE: f64 = 1e-9;

/// State of one cluster node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Node index.
    pub id: usize,
    /// Total memory in bytes.
    pub memory_bytes: f64,
    /// Memory currently allocated to running tasks, in bytes.
    pub allocated_bytes: f64,
    /// Task slots (hardware threads).
    pub slots: usize,
    /// Slots currently in use.
    pub used_slots: usize,
    /// High-water mark of `allocated_bytes` over the simulation.
    pub peak_allocated_bytes: f64,
    /// High-water mark of `used_slots` over the simulation.
    pub peak_used_slots: usize,
    /// True while the node is down (crashed or preempted by fault
    /// injection). An offline node accepts no placements; its occupancy
    /// counters keep working so the engines can release the attempts that
    /// were killed on it.
    pub offline: bool,
}

impl Node {
    /// Creates an idle node.
    pub fn new(id: usize, memory_bytes: f64, slots: usize) -> Self {
        Node {
            id,
            memory_bytes,
            allocated_bytes: 0.0,
            slots,
            used_slots: 0,
            peak_allocated_bytes: 0.0,
            peak_used_slots: 0,
            offline: false,
        }
    }

    /// Free memory on this node.
    pub fn free_bytes(&self) -> f64 {
        (self.memory_bytes - self.allocated_bytes).max(0.0)
    }

    /// True when the node can host a task with the given allocation. Offline
    /// nodes host nothing. The memory check uses a tolerance *relative* to
    /// the node capacity (see [`FIT_TOLERANCE`]) so float drift in the
    /// occupancy counters cannot reject an exact fit, while any real
    /// over-subscription is refused.
    pub fn fits(&self, allocation_bytes: f64) -> bool {
        !self.offline
            && self.used_slots < self.slots
            && allocation_bytes <= self.free_bytes() + self.memory_bytes * FIT_TOLERANCE
    }
}

/// A running-task lease handed out by the placement methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the node hosting the task.
    pub node: usize,
}

/// Maps an `f64` to a `u64` key whose unsigned order equals
/// [`f64::total_cmp`] order (the standard sign-flip trick), so float-keyed
/// ordered collections need no wrapper type.
#[inline]
fn total_order_key(value: f64) -> u64 {
    let bits = value.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// The free-capacity index behind [`Cluster::select_node`]: node selection
/// used to scan every node per placement decision, which dominates
/// per-decision cost at cluster scale. Two ordered structures — both
/// maintained on every placement/release — make the policies sublinear
/// while reproducing the linear scans' decisions bit for bit:
///
/// * a **segment tree** over node ids storing the maximum *effective free
///   memory* (`free_bytes + capacity × FIT_TOLERANCE`, the exact
///   right-hand side of [`Node::fits`]; `-inf` when all slots are busy) per
///   id range. First fit descends to the **leftmost** node satisfying
///   `allocation <= effective_free` — the same comparison, and the same
///   lowest-id tie handling, as walking the nodes in index order.
/// * a **[`BTreeSet`] keyed by `(free_bytes, id)`** over nodes with a free
///   slot. Best fit scans ascending from `allocation - max_slack` (the
///   loosest per-node tolerance in the cluster) and returns the first
///   entry whose node fits: the smallest fitting `free_bytes` is exactly
///   the smallest leftover, and the id tiebreak matches `min_by`'s
///   first-of-equals over index order. The scan window below `allocation`
///   is tolerance-sized (bytes); the first node at or above `allocation`
///   always fits, so the scan is O(log n + window).
#[derive(Debug, Clone)]
struct FreeIndex {
    /// Number of indexed nodes (leaves).
    len: usize,
    /// Power-of-two leaf base of the segment tree.
    base: usize,
    /// 1-indexed segment tree of max effective free bytes; leaf `i` lives at
    /// `tree[base + i]`.
    tree: Vec<f64>,
    /// Nodes with at least one free slot, ordered by (free bytes, id).
    by_free: BTreeSet<(u64, usize)>,
    /// Current `by_free` key per node (`None` while slot-saturated).
    keys: Vec<Option<u64>>,
    /// Largest `capacity × FIT_TOLERANCE` across the cluster — the lower
    /// bound of the best-fit scan window.
    max_slack: f64,
}

impl FreeIndex {
    fn new(nodes: &[Node]) -> Self {
        let len = nodes.len();
        let base = len.next_power_of_two().max(1);
        let mut index = FreeIndex {
            len,
            base,
            tree: vec![f64::NEG_INFINITY; 2 * base],
            by_free: BTreeSet::new(),
            keys: vec![None; len],
            max_slack: nodes
                .iter()
                .map(|n| n.memory_bytes * FIT_TOLERANCE)
                .fold(0.0, f64::max),
        };
        for node in nodes {
            index.update(node);
        }
        index
    }

    /// Re-syncs one node after its occupancy changed.
    fn update(&mut self, node: &Node) {
        let id = node.id;
        let has_slot = !node.offline && node.used_slots < node.slots;
        // Segment-tree leaf + path to the root.
        let eff = if has_slot {
            node.free_bytes() + node.memory_bytes * FIT_TOLERANCE
        } else {
            f64::NEG_INFINITY
        };
        let mut i = self.base + id;
        // lint:allow(no-panic-hot-path): the tree is sized 2·base with
        // base >= node count, so the leaf base + id and every ancestor pair
        // (2i, 2i + 1 for i < base) are in bounds by construction.
        self.tree[i] = eff;
        while i > 1 {
            i /= 2;
            // lint:allow(no-panic-hot-path): i < base here, so both
            // children 2i and 2i + 1 are below 2·base — in bounds.
            self.tree[i] = self.tree[2 * i].max(self.tree[2 * i + 1]);
        }
        // Ordered-by-free set.
        // lint:allow(no-panic-hot-path): keys has one slot per node and
        // node ids are assigned densely below the node count.
        if let Some(old) = self.keys[id].take() {
            self.by_free.remove(&(old, id));
        }
        if has_slot {
            let key = total_order_key(node.free_bytes());
            self.by_free.insert((key, id));
            // lint:allow(no-panic-hot-path): same dense node-id invariant
            // as the take() above.
            self.keys[id] = Some(key);
        }
    }

    /// Lowest-indexed node that fits the allocation (first fit).
    ///
    /// The negated float comparisons are deliberate (hence the lint allow):
    /// `!(alloc <= max)` must be *true* for NaN operands so the descent
    /// refuses NaN allocations and NaN-poisoned subtrees, mirroring
    /// [`Node::fits`] returning false — `partial_cmp` plumbing would only
    /// obscure that.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn first_fit(&self, allocation_bytes: f64) -> Option<usize> {
        // NaN allocations compare false against every subtree max, exactly
        // like `fits` rejecting them node by node.
        // lint:allow(no-panic-hot-path): a non-empty index has base >= 1,
        // so the root tree[1] exists; the descent doubles i while
        // i < base, keeping i + 1 below 2·base — in bounds throughout.
        if self.len == 0 || !(allocation_bytes <= self.tree[1]) {
            return None;
        }
        let mut i = 1;
        while i < self.base {
            i *= 2;
            // lint:allow(no-panic-hot-path): i <= 2·base - 1 after the
            // doubling, within the 2·base-sized tree.
            if !(allocation_bytes <= self.tree[i]) {
                i += 1;
            }
        }
        Some(i - self.base)
    }

    /// Fitting node with the least leftover free memory (best fit).
    fn best_fit(&self, allocation_bytes: f64, nodes: &[Node]) -> Option<usize> {
        if allocation_bytes.is_nan() {
            return None;
        }
        // Start at the loosest tolerance below the allocation: every
        // fitting node satisfies `free >= allocation - capacity·tol`, and
        // free bytes are never negative.
        let start = (allocation_bytes - self.max_slack).max(0.0);
        let start = if start.is_nan() { 0.0 } else { start };
        self.by_free
            .range((total_order_key(start), 0)..)
            // lint:allow(no-panic-hot-path): the set only ever holds ids
            // inserted by update(), which are node.id values below the
            // node count.
            .find(|&&(_, id)| nodes[id].fits(allocation_bytes))
            .map(|&(_, id)| id)
    }
}

/// The cluster capacity model.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    /// Free-capacity index kept in sync with every occupancy change.
    index: FreeIndex,
}

impl Cluster {
    /// Builds the cluster described by a simulation config: the default node
    /// pool followed by any extra heterogeneous pools.
    pub fn new(config: &SimulationConfig) -> Self {
        let mut nodes = Vec::new();
        for pool in config.node_pools() {
            for _ in 0..pool.count {
                nodes.push(Node::new(nodes.len(), pool.memory_bytes, pool.slots));
            }
        }
        let index = FreeIndex::new(&nodes);
        Cluster { nodes, index }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The memory capacity of the first node (the single-allocation upper
    /// bound for homogeneous clusters; heterogeneous callers want
    /// [`Cluster::largest_node_memory_bytes`]).
    pub fn node_memory_bytes(&self) -> f64 {
        self.nodes.first().map_or(0.0, |n| n.memory_bytes)
    }

    /// The memory capacity of the largest node — the hard upper bound for
    /// any single allocation.
    pub fn largest_node_memory_bytes(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.memory_bytes)
            .fold(0.0, f64::max)
    }

    /// Number of currently running tasks across the cluster.
    pub fn running_tasks(&self) -> usize {
        self.nodes.iter().map(|n| n.used_slots).sum()
    }

    /// Total allocated memory across the cluster in bytes.
    pub fn allocated_bytes(&self) -> f64 {
        self.nodes.iter().map(|n| n.allocated_bytes).sum()
    }

    /// Selects a node for the given allocation under a scheduling policy,
    /// without placing. `FirstFit` (and `Backfill`, which reuses first-fit
    /// node selection) returns the lowest-indexed node with room; `BestFit`
    /// returns the fitting node with the least leftover free memory.
    ///
    /// Both policies answer from the free-capacity index in O(log n) (+ a
    /// tolerance-sized scan window for best fit) instead of walking every
    /// node, with decisions bit-identical to the linear reference scans (the
    /// equivalence proptests replay both against random occupancy states).
    /// NaN allocations are unplaceable under every policy, never a panic.
    pub fn select_node(&self, allocation_bytes: f64, policy: SchedulePolicy) -> Option<usize> {
        match policy {
            SchedulePolicy::FirstFit | SchedulePolicy::Backfill => {
                self.index.first_fit(allocation_bytes)
            }
            SchedulePolicy::BestFit => self.index.best_fit(allocation_bytes, &self.nodes),
        }
    }

    /// Places a task on a specific node (chosen via [`Cluster::select_node`])
    /// and updates the high-water marks.
    pub fn place_on(&mut self, node: usize, allocation_bytes: f64) -> Placement {
        // lint:allow(no-panic-hot-path): the documented contract is that
        // `node` comes from select_node, which only returns valid indices;
        // a silent no-op on a bad index would hide scheduler corruption,
        // so the bounds check stays a hard error.
        let n = &mut self.nodes[node];
        n.allocated_bytes += allocation_bytes;
        n.used_slots += 1;
        n.peak_allocated_bytes = n.peak_allocated_bytes.max(n.allocated_bytes);
        n.peak_used_slots = n.peak_used_slots.max(n.used_slots);
        // lint:allow(no-panic-hot-path): same select_node contract as the
        // placement above.
        self.index.update(&self.nodes[node]);
        Placement { node }
    }

    /// Attempts to place a task with the given allocation using first fit.
    /// Returns `None` when no node currently has room.
    pub fn try_place(&mut self, allocation_bytes: f64) -> Option<Placement> {
        self.select_node(allocation_bytes, SchedulePolicy::FirstFit)
            .map(|node| self.place_on(node, allocation_bytes))
    }

    /// Releases a placement obtained from one of the placement methods.
    pub fn release(&mut self, placement: Placement, allocation_bytes: f64) {
        // lint:allow(no-panic-hot-path): a Placement is only minted by the
        // placement methods with an in-bounds node index, and node indices
        // never change after construction.
        let node = &mut self.nodes[placement.node];
        node.allocated_bytes = (node.allocated_bytes - allocation_bytes).max(0.0);
        node.used_slots = node.used_slots.saturating_sub(1);
        // lint:allow(no-panic-hot-path): same Placement invariant as above.
        self.index.update(&self.nodes[placement.node]);
    }

    /// Marks a node offline (fault injection) or back online, keeping the
    /// free-capacity index in sync. Out-of-range indices are ignored —
    /// fault plans are user data, not scheduler invariants.
    pub fn set_offline(&mut self, node: usize, offline: bool) {
        if let Some(n) = self.nodes.get_mut(node) {
            n.offline = offline;
        } else {
            return;
        }
        // lint:allow(no-panic-hot-path): the get_mut above proved the index
        // is in bounds, and nodes never shrink.
        self.index.update(&self.nodes[node]);
    }

    /// View of all nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> Cluster {
        Cluster::new(&SimulationConfig {
            node_count: 2,
            node_memory_bytes: 10e9,
            slots_per_node: 2,
            ..SimulationConfig::default()
        })
    }

    #[test]
    fn new_cluster_matches_config() {
        let c = small_cluster();
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_memory_bytes(), 10e9);
        assert_eq!(c.running_tasks(), 0);
        assert_eq!(c.allocated_bytes(), 0.0);
    }

    #[test]
    fn heterogeneous_pools_build_all_nodes() {
        let config = SimulationConfig {
            node_count: 2,
            node_memory_bytes: 10e9,
            slots_per_node: 2,
            ..SimulationConfig::default()
        }
        .with_extra_pool(crate::config::NodePoolSpec {
            count: 1,
            memory_bytes: 40e9,
            slots: 8,
        });
        let c = Cluster::new(&config);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.nodes()[2].memory_bytes, 40e9);
        assert_eq!(c.nodes()[2].slots, 8);
        assert_eq!(c.largest_node_memory_bytes(), 40e9);
    }

    #[test]
    fn first_fit_fills_first_node_then_second() {
        let mut c = small_cluster();
        let p1 = c.try_place(6e9).unwrap();
        assert_eq!(p1.node, 0);
        // 6 GB left on node 0 is not enough for 8 GB, spill to node 1.
        let p2 = c.try_place(8e9).unwrap();
        assert_eq!(p2.node, 1);
        assert_eq!(c.running_tasks(), 2);
        assert_eq!(c.allocated_bytes(), 14e9);
    }

    #[test]
    fn best_fit_picks_the_tightest_node() {
        let mut c = small_cluster();
        // Node 0: 6 GB used (4 GB free); node 1: empty (10 GB free).
        c.try_place(6e9).unwrap();
        // A 3 GB task best-fits node 0 (1 GB leftover vs 7 GB leftover).
        let node = c.select_node(3e9, SchedulePolicy::BestFit).unwrap();
        assert_eq!(node, 0);
        // First fit would agree here; make them disagree: node 0 nearly full.
        c.place_on(0, 3e9);
        // 2 GB task: first fit rejects node 0 (1 GB free), lands on node 1.
        assert_eq!(c.select_node(2e9, SchedulePolicy::FirstFit), Some(1));
        assert_eq!(c.select_node(2e9, SchedulePolicy::BestFit), Some(1));
    }

    #[test]
    fn placement_fails_when_no_capacity() {
        let mut c = small_cluster();
        assert!(c.try_place(11e9).is_none(), "larger than any node");
        // Fill all slots.
        let _ = c.try_place(1e9).unwrap();
        let _ = c.try_place(1e9).unwrap();
        let _ = c.try_place(1e9).unwrap();
        let _ = c.try_place(1e9).unwrap();
        assert!(c.try_place(1e9).is_none(), "all slots busy");
    }

    #[test]
    fn release_restores_capacity() {
        let mut c = small_cluster();
        let p = c.try_place(9e9).unwrap();
        assert!(c.try_place(9e9).is_some(), "second node still free");
        c.release(p, 9e9);
        assert_eq!(c.running_tasks(), 1);
        let free_node0 = c.nodes()[0].free_bytes();
        assert!((free_node0 - 10e9).abs() < 1e-3);
    }

    #[test]
    fn release_never_goes_negative() {
        let mut c = small_cluster();
        let p = c.try_place(1e9).unwrap();
        c.release(p, 5e9);
        assert!(c.nodes()[0].allocated_bytes >= 0.0);
        assert_eq!(c.running_tasks(), 0);
        c.release(Placement { node: 0 }, 1e9);
        assert_eq!(c.running_tasks(), 0);
    }

    #[test]
    fn fits_respects_slots_and_memory() {
        let n = Node {
            allocated_bytes: 6e9,
            ..Node::new(0, 8e9, 1)
        };
        assert!(n.fits(2e9));
        assert!(!n.fits(3e9));
        let full = Node { used_slots: 1, ..n };
        assert!(!full.fits(1e9));
    }

    // Satellite regression: the old absolute `1e-6`-byte epsilon was
    // meaningless at byte scale. The tolerance is now relative to the node
    // capacity: an exact fit (or one within float drift of the occupancy
    // counters) is accepted, anything genuinely above capacity is not.
    #[test]
    fn fits_boundary_is_exact_up_to_relative_tolerance() {
        let n = Node {
            allocated_bytes: 120e9,
            ..Node::new(0, 128e9, 4)
        };
        let free = 8e9;
        // Exact fit passes.
        assert!(n.fits(free));
        // Within the relative tolerance (±capacity × 1e-9 ≈ 128 bytes):
        // indistinguishable from float drift, accepted.
        assert!(n.fits(free + 128e9 * FIT_TOLERANCE * 0.5));
        // One kilobyte over free memory is a real over-subscription: refused.
        assert!(!n.fits(free + 1024.0));
        // The old absolute epsilon would also have refused this, but it
        // equally refused drift-sized overshoots on large counters; assert
        // the drift case explicitly: summing thousands of placements leaves
        // sub-byte error which must not block an exact fit.
        let drifted = Node {
            allocated_bytes: 120e9 + 3.0e-7,
            ..Node::new(0, 128e9, 4)
        };
        assert!(drifted.fits(free));
    }

    #[test]
    fn peaks_track_high_water_marks() {
        let mut c = small_cluster();
        let p1 = c.try_place(4e9).unwrap();
        let _p2 = c.try_place(5e9).unwrap();
        c.release(p1, 4e9);
        let n0 = &c.nodes()[0];
        assert_eq!(n0.peak_allocated_bytes, 9e9);
        assert_eq!(n0.peak_used_slots, 2);
        assert_eq!(n0.used_slots, 1);
    }

    /// Satellite regression: `select_node` under best fit used to compare
    /// leftovers with `partial_cmp(..).expect("finite free memory")`, so a
    /// NaN allocation (e.g. from a corrupted prediction upstream) panicked
    /// the scheduler hot path. `fits` rejects NaN (every comparison with it
    /// is false) and the comparator is total now: the request is simply
    /// unplaceable under every policy.
    #[test]
    fn nan_allocation_is_rejected_not_panicking() {
        let mut c = small_cluster();
        c.try_place(6e9).unwrap();
        for policy in SchedulePolicy::ALL {
            assert_eq!(c.select_node(f64::NAN, policy), None, "{policy:?}");
        }
        assert!(!c.nodes()[0].fits(f64::NAN));
        assert!(c.try_place(f64::NAN).is_none());
        // Infinite requests are equally unplaceable on finite nodes.
        assert_eq!(c.select_node(f64::INFINITY, SchedulePolicy::BestFit), None);
    }

    #[test]
    fn offline_nodes_accept_no_placements_until_back_online() {
        let mut c = small_cluster();
        c.set_offline(0, true);
        for policy in SchedulePolicy::ALL {
            assert_eq!(c.select_node(1e9, policy), Some(1), "{policy:?}");
        }
        assert!(!c.nodes()[0].fits(1e9));
        // Releasing a killed attempt's lease on an offline node still works.
        let p = Placement { node: 0 };
        c.place_on(0, 2e9); // forced placement bypasses fits() by design
        c.release(p, 2e9);
        assert_eq!(c.nodes()[0].allocated_bytes, 0.0);
        // Back online: first fit prefers it again.
        c.set_offline(0, false);
        assert_eq!(c.select_node(1e9, SchedulePolicy::FirstFit), Some(0));
        // Out-of-range indices are ignored, not a panic.
        c.set_offline(99, true);
    }

    #[test]
    fn infinite_memory_node_accepts_everything() {
        let mut c = Cluster::new(&SimulationConfig::unbounded());
        for _ in 0..100 {
            assert!(c.try_place(500e9).is_some());
        }
        assert_eq!(c.running_tasks(), 100);
    }
}
