//! End-to-end regression for the Sizey in-flight allocation leak
//! (`SizeyPredictor::inflight_allocations` used to evict only on
//! `TaskOutcome::Succeeded`, so tasks that exhausted `max_attempts` leaked
//! one entry each, forever).
//!
//! The retry baseline is engine-owned now; replaying a workload of
//! never-satisfiable tasks with the real Sizey predictor must (a) terminate
//! with every instance reported unfinished, (b) leave the event-driven
//! engine's retry ledger empty, and (c) leave the predictor itself free of
//! any per-task retry state — its retry decisions depend only on learned
//! pools plus the context the engine hands in.

use sizey_suite::prelude::*;
use std::sync::{Arc, Mutex};

fn impossible(seq: u64) -> TaskInstance {
    TaskInstance {
        workflow: "wf".into(),
        task_type: TaskTypeId::new("hungry"),
        machine: MachineId::new("m"),
        sequence: seq,
        input_bytes: 2e9,
        // Beyond the 128 GB largest node: every clamped attempt fails.
        true_peak_bytes: 400e9,
        base_runtime_seconds: 30.0,
        preset_memory_bytes: 8e9,
        cpu_utilization_pct: 100.0,
        io_read_bytes: 2e9,
        io_write_bytes: 2e9,
    }
}

#[test]
fn sizey_retry_state_stays_bounded_when_tasks_terminally_fail() {
    let n = 40u64;
    let instances: Vec<TaskInstance> = (0..n).map(impossible).collect();
    let config = SimulationConfig {
        max_attempts: 5,
        ..SimulationConfig::default()
    };

    // Sequential engine: the retry baseline is a stack local per instance.
    let mut sizey = SizeyPredictor::with_defaults();
    let report = replay_workflow("wf", &instances, &mut sizey, &config);
    assert_eq!(report.unfinished_instances, n as usize);
    assert_eq!(report.events.len(), 5 * n as usize);
    // The predictor accumulated learned artifacts only: one pool for the
    // single (task type, machine) key and one provenance record per attempt
    // — bounded by observations, not by abandoned in-flight tasks.
    assert_eq!(sizey.n_pools(), 1);
    assert_eq!(sizey.provenance().len(), report.events.len());

    // Event-driven engine: the ledger must drain despite zero successes.
    let instances: Vec<TaskInstance> = (0..n).map(impossible).collect();
    let result = schedule_workflows(
        vec![WorkflowTenant::new(
            "wf",
            instances,
            Box::new(SizeyPredictor::with_defaults()),
        )],
        &config,
    );
    assert_eq!(result.reports[0].unfinished_instances, n as usize);
    assert!(result.stats.peak_inflight_retries >= 1);
    assert_eq!(
        result.stats.leaked_inflight_retries, 0,
        "terminal failures must evict their in-flight retry entries"
    );

    // The shared concurrent service is equally stateless per task: after the
    // carnage above, a retry with no engine context starts from the preset
    // escalation base for an unknown key, same as a fresh service.
    let service = SharedSizey::sizey(SizeyConfig::default(), 4);
    let task = TaskSubmission {
        workflow: "wf".into(),
        task_type: TaskTypeId::new("unseen"),
        machine: MachineId::new("m"),
        sequence: 0,
        input_bytes: 1e9,
        preset_memory_bytes: 8e9,
    };
    let ctx = AttemptContext {
        attempt: 1,
        last_allocation_bytes: None,
    };
    assert_eq!(service.service().predict(&task, ctx).allocation_bytes, 8e9);
}

/// Fault-injection satellite: tasks lost to node crashes (including ones
/// whose node never comes back) must not strand retry-ledger entries in
/// either event-driven engine. The crash-requeue path deliberately bypasses
/// the ledger — a killed attempt is resubmitted with its original attempt
/// number — so the ledger must drain exactly as in a fault-free run even
/// when a crash interleaves with genuine OOM retry chains.
#[test]
fn crash_lost_tasks_leak_no_inflight_retries_in_either_engine() {
    let n = 30u64;
    // A mix of first-try successes and never-satisfiable tasks so the retry
    // ledger is genuinely exercised while the crashes fire.
    let mk = || -> Vec<TaskInstance> {
        (0..n)
            .map(|seq| {
                let mut inst = impossible(seq);
                inst.base_runtime_seconds = 60.0;
                if seq % 3 == 0 {
                    inst.true_peak_bytes = 4e9;
                }
                inst
            })
            .collect()
    };
    let config = SimulationConfig {
        max_attempts: 4,
        node_count: 4,
        slots_per_node: 4,
        ..SimulationConfig::default()
    }
    .with_faults(
        FaultPlan::default()
            .with_storm(CrashStorm {
                time_seconds: 45.0,
                nodes: 2,
                down_seconds: 120.0,
                seed: 9,
            })
            // This node never comes back: its victims must still finish (or
            // terminally fail) elsewhere without leaking ledger entries.
            .with_node_crash(NodeCrash {
                time_seconds: 100.0,
                node: 1,
                down_seconds: f64::INFINITY,
            }),
    );

    let materialised = schedule_workflows(
        vec![WorkflowTenant::new(
            "wf",
            mk(),
            Box::new(SizeyPredictor::with_defaults()),
        )],
        &config,
    );
    assert!(
        materialised.stats.crash_lost_attempts > 0,
        "the crashes must actually kill running attempts"
    );
    assert!(materialised.stats.peak_inflight_retries >= 1);
    assert_eq!(materialised.stats.leaked_inflight_retries, 0);

    let streaming = schedule_workflows_streaming(
        vec![StreamingTenant::new(
            "wf",
            mk().into_iter(),
            Box::new(SizeyPredictor::with_defaults()),
        )],
        &config,
        &mut NullSink,
        &mut NullRecordSink,
    );
    assert_eq!(streaming.stats.leaked_inflight_retries, 0);
    assert_eq!(streaming.leaked_inflight_instances, 0);
    // Both engines see the identical fault schedule and workload: the fault
    // accounting is pinned bit-identical across them.
    assert_eq!(
        streaming.stats.crash_lost_attempts,
        materialised.stats.crash_lost_attempts
    );
    assert_eq!(
        streaming.stats.requeued_attempts,
        materialised.stats.requeued_attempts
    );
}

/// A predictor handle shared with the test so the streaming replay (which
/// consumes its tenants) can be inspected afterwards.
struct Shared(Arc<Mutex<SizeyPredictor>>);

impl MemoryPredictor for Shared {
    fn name(&self) -> String {
        self.0.lock().expect("predictor lock").name()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        self.0.lock().expect("predictor lock").predict(task, ctx)
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.0.lock().expect("predictor lock").observe(record)
    }
}

/// Streaming-engine regression: instances that exhaust `max_attempts` are
/// evicted from the in-flight working set *and* the retry ledger at their
/// terminal failure — before any record could be compacted away — so a long
/// stream of hopeless tasks leaves no stranded entries. With arrivals spaced
/// wider than a full retry cascade, the working set never holds more than
/// one instance, and a bounded predictor's provenance store stays at its
/// retention window while still having seen every record.
#[test]
fn streaming_replay_evicts_terminal_failures_and_stays_bounded() {
    let n = 40u64;
    let window = 8usize;
    let config = SimulationConfig {
        max_attempts: 5,
        // Five failed attempts take 5 x 30 s; arrivals every 200 s mean each
        // instance reaches its terminal failure before the next arrives.
        submit_interval_seconds: 200.0,
        ..SimulationConfig::default()
    };
    let predictor = Arc::new(Mutex::new(SizeyPredictor::new(
        SizeyConfig::default().with_history_window(window),
    )));
    let mut observed_records = 0usize;
    let mut record_sink = |_: &TaskRecord| observed_records += 1;

    let result = schedule_workflows_streaming(
        vec![StreamingTenant::new(
            "wf",
            (0..n).map(impossible),
            Box::new(Shared(Arc::clone(&predictor))),
        )],
        &config,
        &mut NullSink,
        &mut record_sink,
    );

    let aggregates = &result.reports[0].aggregates;
    assert_eq!(aggregates.instances, n as usize);
    assert_eq!(aggregates.unfinished_instances, n as usize);
    assert_eq!(aggregates.attempts, 5 * n);

    // No stranded in-flight state, and the working set stayed at one
    // instance despite 40 terminally failing ones streaming through.
    assert_eq!(result.leaked_inflight_instances, 0);
    assert_eq!(result.stats.leaked_inflight_retries, 0);
    assert_eq!(result.peak_inflight_instances, 1);
    assert_eq!(result.stats.peak_inflight_retries, 1);

    // Every finished record reached the sink and the predictor, but the
    // bounded provenance store retained only its window.
    assert_eq!(observed_records, 5 * n as usize);
    let sizey = predictor.lock().expect("predictor lock");
    assert_eq!(sizey.provenance().total_inserted(), 5 * n);
    assert_eq!(sizey.provenance().len(), window);
}
