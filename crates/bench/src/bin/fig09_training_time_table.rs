//! Fig. 9 — time required to train Sizey per online-learning step, for full
//! retraining (including hyper-parameter optimisation) and incremental
//! retraining, per workflow.
//!
//! Run with `cargo run -p sizey-bench --release --bin fig09_training_time_table`.
//! A Criterion micro-benchmark of the same quantity lives in
//! `benches/fig09_training_time.rs`.

use sizey_bench::{banner, fmt, render_table, HarnessSettings, MethodSpec};
use sizey_core::SizeyConfig;
use sizey_sim::{replay_workflow, SimulationConfig};
use sizey_workflows::{all_workflows, generate_workflow, GeneratorConfig};

fn median_ms(times: &[std::time::Duration]) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    let mut ms: Vec<f64> = times.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(|a, b| a.total_cmp(b));
    ms[ms.len() / 2]
}

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Fig. 9: Sizey online training time, full vs. incremental retraining",
        &settings,
    );
    // Training-time measurements do not need the full task volume; cap the
    // scale so the full-retraining variant stays tractable.
    let scale = settings.scale.min(0.05);
    let sim = SimulationConfig::default();

    let mut rows = Vec::new();
    let mut all_full = Vec::new();
    let mut all_incr = Vec::new();
    for spec in all_workflows() {
        let instances = generate_workflow(&spec, &GeneratorConfig::scaled(scale, settings.seed));

        let mut full = MethodSpec::Sizey(SizeyConfig::full_retraining())
            .build_sizey()
            .expect("a Sizey spec builds a Sizey predictor");
        let _ = replay_workflow(&spec.name, &instances, &mut full, &sim);

        let mut incremental = MethodSpec::Sizey(SizeyConfig::incremental())
            .build_sizey()
            .expect("a Sizey spec builds a Sizey predictor");
        let _ = replay_workflow(&spec.name, &instances, &mut incremental, &sim);

        rows.push(vec![
            spec.name.clone(),
            fmt(median_ms(full.training_times()), 2),
            fmt(median_ms(incremental.training_times()), 2),
        ]);
        all_full.extend_from_slice(full.training_times());
        all_incr.extend_from_slice(incremental.training_times());
    }

    println!(
        "{}",
        render_table(
            &[
                "Workflow",
                "Sizey-Full median ms",
                "Sizey-Incremental median ms"
            ],
            &rows
        )
    );
    let full_ms = median_ms(&all_full);
    let incr_ms = median_ms(&all_incr);
    println!(
        "Overall medians: full {} ms, incremental {} ms ({}% reduction).",
        fmt(full_ms, 2),
        fmt(incr_ms, 2),
        fmt((1.0 - incr_ms / full_ms.max(1e-9)) * 100.0, 2)
    );
    println!("Paper reference (Fig. 9): median 1.09 s for full retraining (with HPO) and");
    println!("17.5 ms for incremental updates, a 98.39% reduction; both are comparable");
    println!(
        "across workflows. ({} is the Sizey method name used here.)",
        MethodSpec::sizey_defaults().name()
    );
}
