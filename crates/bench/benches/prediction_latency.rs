//! Criterion micro-benchmark of Sizey's end-to-end sizing latency: the cost
//! of producing one allocation decision (pool estimates + RAQ scoring +
//! gating + offset) for a warm predictor. This is the per-submission overhead
//! Sizey adds to the workflow management system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sizey_core::{GatingStrategy, SizeyConfig, SizeyPredictor};
use sizey_provenance::{MachineId, TaskOutcome, TaskRecord, TaskTypeId};
use sizey_sim::{AttemptContext, MemoryPredictor, TaskSubmission};

fn warmed(config: SizeyConfig, history: u64) -> SizeyPredictor {
    let mut p = SizeyPredictor::new(config);
    for seq in 0..history {
        let input = 1e9 + (seq as f64 % 29.0) * 1.2e8;
        p.observe(&TaskRecord {
            workflow: "bench".into(),
            task_type: TaskTypeId::new("bench-task"),
            machine: MachineId::new("bench-machine"),
            sequence: seq,
            input_bytes: input,
            peak_memory_bytes: 2.0 * input + 1e9,
            allocated_memory_bytes: 8e9,
            runtime_seconds: 60.0,
            concurrent_tasks: 1,
            queue_delay_seconds: 0.0,
            outcome: TaskOutcome::Succeeded,
        });
    }
    p
}

fn submission(seq: u64) -> TaskSubmission {
    TaskSubmission {
        workflow: "bench".into(),
        task_type: TaskTypeId::new("bench-task"),
        machine: MachineId::new("bench-machine"),
        sequence: seq,
        input_bytes: 2.7e9,
        preset_memory_bytes: 16e9,
    }
}

fn bench_prediction_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("sizey_prediction_latency");
    group.sample_size(20);

    for (label, gating) in [
        ("interpolation", GatingStrategy::Interpolation { beta: 4.0 }),
        ("argmax", GatingStrategy::Argmax),
    ] {
        for &history in &[32u64, 256u64] {
            let predictor = warmed(SizeyConfig::default().with_gating(gating), history);
            let mut seq = history;
            group.bench_with_input(BenchmarkId::new(label, history), &history, |b, _| {
                b.iter(|| {
                    seq += 1;
                    predictor.predict(
                        std::hint::black_box(&submission(seq)),
                        AttemptContext::first(),
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prediction_latency);
criterion_main!(benches);
