//! Smoke test: every workflow profile replays to completion under every
//! predictor. This is the cheapest possible end-to-end sweep — a tiny
//! workload per profile — meant to catch wiring regressions (a profile whose
//! generated tasks can never finish, a predictor that panics on some task
//! type) rather than to measure quality.

use sizey_suite::prelude::*;

/// One small deterministic workload per profile: a couple of instances per
/// task type, interleaved like the real replays.
fn tiny_config() -> GeneratorConfig {
    GeneratorConfig {
        scale: 0.02,
        seed: 1234,
        min_instances: 2,
        interleave: true,
        drift: None,
    }
}

fn predictors() -> Vec<Box<dyn MemoryPredictor>> {
    vec![
        Box::new(SizeyPredictor::with_defaults()),
        Box::new(WittLr::new()),
        Box::new(WittPercentile::new()),
        Box::new(WittWastage::new()),
        Box::new(TovarPpm::new()),
    ]
}

#[test]
fn every_profile_replays_clean_under_every_predictor() {
    let specs = all_workflows();
    assert_eq!(
        specs.len(),
        sizey_workflows::WORKFLOW_NAMES.len(),
        "all_workflows and WORKFLOW_NAMES disagree"
    );

    for spec in &specs {
        let instances = generate_workflow(spec, &tiny_config());
        assert!(
            !instances.is_empty(),
            "{}: profile generated no instances",
            spec.name
        );

        for predictor in predictors().iter_mut() {
            let report = replay_workflow(
                &spec.name,
                &instances,
                predictor.as_mut(),
                &SimulationConfig::default(),
            );
            assert_eq!(
                report.unfinished_instances, 0,
                "{} / {}: unfinished instances",
                spec.name, report.method
            );
            assert_eq!(report.instances, instances.len());
            assert!(
                report.total_wastage_gbh().is_finite() && report.total_wastage_gbh() >= 0.0,
                "{} / {}: wastage {} not finite and nonnegative",
                spec.name,
                report.method,
                report.total_wastage_gbh()
            );
            assert!(
                report.total_runtime_hours().is_finite() && report.total_runtime_hours() > 0.0,
                "{} / {}: runtime {} not finite and positive",
                spec.name,
                report.method,
                report.total_runtime_hours()
            );
        }
    }
}

#[test]
fn preset_predictor_also_survives_every_profile() {
    // The preset baseline is the reference everything is compared against;
    // keep it in the sweep even though it is not one of the four learned
    // baselines.
    for spec in &all_workflows() {
        let instances = generate_workflow(spec, &tiny_config());
        let mut presets = PresetPredictor;
        let report = replay_workflow(
            &spec.name,
            &instances,
            &mut presets,
            &SimulationConfig::default(),
        );
        assert_eq!(report.unfinished_instances, 0, "{}: unfinished", spec.name);
        assert!(report.total_wastage_gbh().is_finite());
    }
}
