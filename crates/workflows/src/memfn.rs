//! Memory-response, input-size, and runtime models for task types.
//!
//! Every abstract task type in the synthetic workloads is described by three
//! small generative models:
//!
//! * an [`InputModel`] for the size of its input data,
//! * a [`MemoryModel`] mapping input size to peak memory consumption — this
//!   is where the paper's observed task behaviours live (linear like
//!   MarkDuplicates, non-linear like BaseRecalibrator, near-constant,
//!   threshold/bimodal, heavy-tailed),
//! * a [`RuntimeModel`] mapping input size to wall-clock runtime.
//!
//! All models are deterministic functions of the input plus a caller-provided
//! RNG, so workload generation is reproducible from a seed.

use crate::sampling;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of a task type's input size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InputModel {
    /// Uniform between the two bounds (bytes).
    Uniform {
        /// Lower bound in bytes.
        lo: f64,
        /// Upper bound in bytes.
        hi: f64,
    },
    /// Log-uniform between the two bounds (bytes); models inputs spanning
    /// orders of magnitude.
    LogUniform {
        /// Lower bound in bytes.
        lo: f64,
        /// Upper bound in bytes.
        hi: f64,
    },
    /// Normal with a floor (bytes).
    Normal {
        /// Mean input size in bytes.
        mean: f64,
        /// Standard deviation in bytes.
        std_dev: f64,
        /// Smallest possible input in bytes.
        min: f64,
    },
}

impl InputModel {
    /// Draws one input size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            InputModel::Uniform { lo, hi } => sampling::uniform(rng, lo, hi),
            InputModel::LogUniform { lo, hi } => sampling::log_uniform(rng, lo, hi),
            InputModel::Normal { mean, std_dev, min } => {
                sampling::truncated_normal(rng, mean, std_dev, min)
            }
        }
    }

    /// A representative central value (used for presets and documentation).
    pub fn typical(&self) -> f64 {
        match *self {
            InputModel::Uniform { lo, hi } => 0.5 * (lo + hi),
            InputModel::LogUniform { lo, hi } => (lo.ln() * 0.5 + hi.ln() * 0.5).exp(),
            InputModel::Normal { mean, .. } => mean,
        }
    }
}

/// Mapping from input size to peak memory consumption (bytes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemoryModel {
    /// `peak = slope * input + intercept`, with multiplicative log-normal
    /// noise of coefficient `noise_cv`. The dominant pattern reported by the
    /// paper and prior work (Witt et al.).
    Linear {
        /// Bytes of memory per byte of input.
        slope: f64,
        /// Base memory in bytes.
        intercept: f64,
        /// Coefficient of variation of the multiplicative noise.
        noise_cv: f64,
    },
    /// `peak = coefficient * (input / scale)^exponent + intercept` — captures
    /// super-linear growth such as the quadratic BaseRecalibrator example.
    Power {
        /// Multiplier in bytes.
        coefficient: f64,
        /// Input normalisation constant in bytes.
        scale: f64,
        /// Growth exponent (2.0 = quadratic in the scaled input).
        exponent: f64,
        /// Base memory in bytes.
        intercept: f64,
        /// Coefficient of variation of the multiplicative noise.
        noise_cv: f64,
    },
    /// Input-independent consumption around a mean value — tools that load a
    /// fixed reference database.
    Constant {
        /// Mean peak memory in bytes.
        mean: f64,
        /// Coefficient of variation of the multiplicative noise.
        noise_cv: f64,
    },
    /// Two regimes split by an input-size threshold — tools that switch
    /// algorithms or spill to a second data structure for large inputs.
    Threshold {
        /// Input-size threshold in bytes.
        threshold: f64,
        /// Mean peak memory below the threshold, in bytes.
        below_mean: f64,
        /// Mean peak memory at or above the threshold, in bytes.
        above_mean: f64,
        /// Coefficient of variation of the multiplicative noise.
        noise_cv: f64,
    },
    /// Linear growth that saturates towards a ceiling — tools with an
    /// internal cap or streaming behaviour.
    Saturating {
        /// Asymptotic peak memory in bytes.
        ceiling: f64,
        /// Base memory in bytes.
        floor: f64,
        /// Input size (bytes) at which ~63% of the ceiling is reached.
        scale: f64,
        /// Coefficient of variation of the multiplicative noise.
        noise_cv: f64,
    },
}

impl MemoryModel {
    /// The noise-free expected peak memory for a given input size.
    pub fn expected(&self, input_bytes: f64) -> f64 {
        match *self {
            MemoryModel::Linear {
                slope, intercept, ..
            } => slope * input_bytes + intercept,
            MemoryModel::Power {
                coefficient,
                scale,
                exponent,
                intercept,
                ..
            } => coefficient * (input_bytes / scale).powf(exponent) + intercept,
            MemoryModel::Constant { mean, .. } => mean,
            MemoryModel::Threshold {
                threshold,
                below_mean,
                above_mean,
                ..
            } => {
                if input_bytes < threshold {
                    below_mean
                } else {
                    above_mean
                }
            }
            MemoryModel::Saturating {
                ceiling,
                floor,
                scale,
                ..
            } => floor + (ceiling - floor) * (1.0 - (-input_bytes / scale).exp()),
        }
    }

    /// Draws a peak memory sample (expected value times multiplicative
    /// noise), floored at 16 MB so that no task is free.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, input_bytes: f64) -> f64 {
        let cv = match *self {
            MemoryModel::Linear { noise_cv, .. }
            | MemoryModel::Power { noise_cv, .. }
            | MemoryModel::Constant { noise_cv, .. }
            | MemoryModel::Threshold { noise_cv, .. }
            | MemoryModel::Saturating { noise_cv, .. } => noise_cv,
        };
        let noise = sampling::multiplicative_noise(rng, cv);
        (self.expected(input_bytes) * noise).max(16e6)
    }
}

/// A mid-run regime change composed onto any [`MemoryModel`].
///
/// Real workloads are not stationary: a pipeline upgrade, a reference-data
/// refresh, or a dataset shift can change a task type's memory response in
/// the middle of a run (cf. the paper's error-over-time analysis, Fig. 12).
/// A `DriftSpec` models that as a deterministic changepoint in *arrival
/// order*: every instance whose submission [`sequence`] is at or past
/// [`changepoint`](DriftSpec::changepoint) has its true peak transformed by
///
/// ```text
/// peak' = max(peak * memory_scale + slope_delta_bytes_per_input_byte * input, 16 MB)
/// ```
///
/// The transform is applied *after* sampling, so it consumes no RNG draws —
/// the materialised generator and [`WorkflowStream`](crate::WorkflowStream)
/// stay bit-identical by construction, and a drifted workload with
/// `memory_scale = 1.0, slope_delta = 0.0` is bit-identical to a stationary
/// one.
///
/// [`sequence`]: crate::TaskInstance::sequence
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftSpec {
    /// Arrival-sequence index of the first drifted instance. `0` drifts the
    /// whole run; an index past the workload length never fires.
    pub changepoint: u64,
    /// Multiplicative shift of the post-changepoint peak (scale shift).
    pub memory_scale: f64,
    /// Additional bytes of peak memory per byte of input after the
    /// changepoint (slope change). May be negative.
    pub slope_delta_bytes_per_input_byte: f64,
}

impl DriftSpec {
    /// A pure scale shift at `changepoint`.
    pub fn scale_shift(changepoint: u64, memory_scale: f64) -> Self {
        DriftSpec {
            changepoint,
            memory_scale,
            slope_delta_bytes_per_input_byte: 0.0,
        }
    }

    /// Transforms a sampled peak if `sequence` is past the changepoint.
    /// Floored at 16 MB like [`MemoryModel::sample`].
    pub fn apply(&self, sequence: u64, input_bytes: f64, true_peak_bytes: f64) -> f64 {
        if sequence < self.changepoint {
            return true_peak_bytes;
        }
        (true_peak_bytes * self.memory_scale + self.slope_delta_bytes_per_input_byte * input_bytes)
            .max(16e6)
    }
}

/// Mapping from input size to task runtime (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeModel {
    /// Base runtime in seconds regardless of input.
    pub base_seconds: f64,
    /// Additional seconds per gigabyte of input.
    pub seconds_per_gb: f64,
    /// Coefficient of variation of the multiplicative noise.
    pub noise_cv: f64,
}

impl RuntimeModel {
    /// The noise-free expected runtime in seconds.
    pub fn expected(&self, input_bytes: f64) -> f64 {
        self.base_seconds + self.seconds_per_gb * input_bytes / 1e9
    }

    /// Draws a runtime sample, floored at one second.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, input_bytes: f64) -> f64 {
        let noise = sampling::multiplicative_noise(rng, self.noise_cv);
        (self.expected(input_bytes) * noise).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn input_models_sample_within_expected_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = InputModel::Uniform { lo: 1e9, hi: 2e9 };
        let l = InputModel::LogUniform { lo: 1e6, hi: 1e9 };
        let n = InputModel::Normal {
            mean: 5e9,
            std_dev: 1e9,
            min: 1e9,
        };
        for _ in 0..500 {
            let su = u.sample(&mut rng);
            assert!((1e9..2e9).contains(&su));
            let sl = l.sample(&mut rng);
            assert!((1e6..1e9).contains(&sl));
            assert!(n.sample(&mut rng) >= 1e9);
        }
    }

    #[test]
    fn input_typical_is_central() {
        assert_eq!(InputModel::Uniform { lo: 2.0, hi: 4.0 }.typical(), 3.0);
        assert_eq!(
            InputModel::Normal {
                mean: 7.0,
                std_dev: 1.0,
                min: 0.0
            }
            .typical(),
            7.0
        );
        let log_typ = InputModel::LogUniform { lo: 1e2, hi: 1e4 }.typical();
        assert!((log_typ - 1e3).abs() < 1.0);
    }

    #[test]
    fn linear_memory_model_is_linear_in_expectation() {
        let m = MemoryModel::Linear {
            slope: 4.0,
            intercept: 1e9,
            noise_cv: 0.0,
        };
        assert_eq!(m.expected(0.0), 1e9);
        assert_eq!(m.expected(1e9), 5e9);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(m.sample(&mut rng, 1e9), 5e9);
    }

    #[test]
    fn power_model_grows_superlinearly() {
        let m = MemoryModel::Power {
            coefficient: 1e9,
            scale: 1e9,
            exponent: 2.0,
            intercept: 0.0,
            noise_cv: 0.0,
        };
        let a = m.expected(1e9);
        let b = m.expected(2e9);
        assert!((b / a - 4.0).abs() < 1e-9, "quadratic growth expected");
    }

    #[test]
    fn threshold_model_switches_regimes() {
        let m = MemoryModel::Threshold {
            threshold: 1e9,
            below_mean: 1e9,
            above_mean: 8e9,
            noise_cv: 0.0,
        };
        assert_eq!(m.expected(0.5e9), 1e9);
        assert_eq!(m.expected(2e9), 8e9);
    }

    #[test]
    fn saturating_model_approaches_ceiling() {
        let m = MemoryModel::Saturating {
            ceiling: 10e9,
            floor: 1e9,
            scale: 1e9,
            noise_cv: 0.0,
        };
        assert!(m.expected(0.0) - 1e9 < 1e-6);
        assert!(m.expected(10e9) > 9.9e9);
        assert!(m.expected(10e9) < 10e9);
    }

    #[test]
    fn constant_model_ignores_input() {
        let m = MemoryModel::Constant {
            mean: 3e9,
            noise_cv: 0.0,
        };
        assert_eq!(m.expected(1.0), m.expected(1e12));
    }

    #[test]
    fn memory_samples_are_floored() {
        let m = MemoryModel::Constant {
            mean: 1.0,
            noise_cv: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(m.sample(&mut rng, 0.0), 16e6);
    }

    #[test]
    fn memory_noise_spreads_samples() {
        let m = MemoryModel::Linear {
            slope: 1.0,
            intercept: 1e9,
            noise_cv: 0.3,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..200).map(|_| m.sample(&mut rng, 1e9)).collect();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 1.5, "noise should spread samples: {min}..{max}");
    }

    #[test]
    fn drift_spec_is_identity_before_the_changepoint_and_transforms_after() {
        let drift = DriftSpec {
            changepoint: 10,
            memory_scale: 2.0,
            slope_delta_bytes_per_input_byte: 1.0,
        };
        assert_eq!(drift.apply(9, 1e9, 4e9), 4e9);
        assert_eq!(drift.apply(10, 1e9, 4e9), 9e9);
        assert_eq!(drift.apply(11, 0.0, 4e9), 8e9);
        // The 16 MB floor holds even under shrinking drift.
        let shrink = DriftSpec::scale_shift(0, 0.0);
        assert_eq!(shrink.apply(5, 1e9, 4e9), 16e6);
        // The identity drift really is the identity.
        let id = DriftSpec::scale_shift(0, 1.0);
        assert_eq!(id.apply(0, 123.0, 7.5e9), 7.5e9);
    }

    #[test]
    fn runtime_model_scales_with_input() {
        let r = RuntimeModel {
            base_seconds: 60.0,
            seconds_per_gb: 30.0,
            noise_cv: 0.0,
        };
        assert_eq!(r.expected(0.0), 60.0);
        assert_eq!(r.expected(2e9), 120.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(r.sample(&mut rng, 2e9) >= 1.0);
    }
}
