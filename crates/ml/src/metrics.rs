//! Regression quality metrics and summary statistics.
//!
//! These are used both by the hyper-parameter search (validation scores) and
//! by the Sizey core crate (accuracy sub-score, offset strategies, figure
//! reproduction statistics).

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred.iter())
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred.iter())
        .map(|(t, p)| {
            let d = t - p;
            d * d
        })
        .sum::<f64>()
        / y_true.len() as f64
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mse(y_true, y_pred).sqrt()
}

/// Coefficient of determination R².
///
/// Returns 0 when the target variance is zero and the predictions are exact,
/// and can be negative for models worse than predicting the mean.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = mean(y_true);
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred.iter())
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            return 1.0;
        }
        return 0.0;
    }
    1.0 - ss_res / ss_tot
}

/// Mean absolute percentage error (as a fraction, not percent). Observations
/// with a zero true value are skipped.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred.iter()) {
        if *t != 0.0 {
            sum += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Relative error of one prediction, `|pred - actual| / actual`, bounded at
/// `cap` as in Eq. (1) of the paper. Returns `cap` when the actual value is
/// zero but the prediction is not.
pub fn bounded_relative_error(pred: f64, actual: f64, cap: f64) -> f64 {
    if actual == 0.0 {
        return if pred == 0.0 { 0.0 } else { cap };
    }
    ((pred - actual) / actual).abs().min(cap)
}

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance. Returns 0 for slices shorter than 2.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Median of a slice (averaging the two central elements for even lengths).
/// Returns 0 for an empty slice.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Percentile using linear interpolation between closest ranks, matching the
/// default behaviour of `numpy.percentile`. `p` is in `[0, 100]`.
/// Returns 0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = values.to_vec();
    percentile_in_place(&mut sorted, p)
}

/// [`percentile`] over a caller-owned buffer, sorting it in place — the
/// allocation-free twin used by the predict hot path (offset strategies).
/// Identical arithmetic: same total-order sort, same interpolation.
pub fn percentile_in_place(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0);
    if values.len() == 1 {
        return values[0];
    }
    let rank = p / 100.0 * (values.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        values[lo]
    } else {
        let frac = rank - lo as f64;
        values[lo] * (1.0 - frac) + values[hi] * frac
    }
}

/// Minimum of a slice; 0 when empty.
pub fn min(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .pipe_finite_or(0.0)
}

/// Maximum of a slice; 0 when empty.
pub fn max(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .pipe_finite_or(0.0)
}

trait FiniteOr {
    fn pipe_finite_or(self, default: f64) -> f64;
}

impl FiniteOr for f64 {
    fn pipe_finite_or(self, default: f64) -> f64 {
        if self.is_finite() {
            self
        } else {
            default
        }
    }
}

/// Five-number-style summary of a sample, used by the figure harnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl SummaryStats {
    /// Computes summary statistics over a sample. Returns an all-zero summary
    /// for an empty slice.
    pub fn from_values(values: &[f64]) -> Self {
        SummaryStats {
            count: values.len(),
            mean: mean(values),
            std_dev: std_dev(values),
            min: min(values),
            p25: percentile(values, 25.0),
            median: median(values),
            p75: percentile(values, 75.0),
            p95: percentile(values, 95.0),
            max: max(values),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_mse_rmse_match_hand_computation() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 3.0, 5.0];
        assert!((mae(&t, &p) - 1.0).abs() < 1e-12);
        assert!((mse(&t, &p) - 5.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_is_one_for_perfect_prediction() {
        let t = [1.0, 2.0, 3.0];
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_is_zero_for_mean_prediction() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn r2_handles_constant_targets() {
        let t = [5.0, 5.0];
        assert_eq!(r2(&t, &[5.0, 5.0]), 1.0);
        assert_eq!(r2(&t, &[4.0, 6.0]), 0.0);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let t = [0.0, 2.0];
        let p = [1.0, 3.0];
        assert!((mape(&t, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bounded_relative_error_caps_outliers() {
        assert_eq!(bounded_relative_error(10.0, 1.0, 1.0), 1.0);
        assert!((bounded_relative_error(1.5, 1.0, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(bounded_relative_error(0.0, 0.0, 1.0), 0.0);
        assert_eq!(bounded_relative_error(3.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn mean_variance_std_dev() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn median_and_percentiles() {
        let v = [1.0, 3.0, 2.0, 4.0];
        assert!((median(&v) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_interpolates_linearly() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 25.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 95.0) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn min_max_handle_empty() {
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(min(&[3.0, -1.0]), -1.0);
        assert_eq!(max(&[3.0, -1.0]), 3.0);
    }

    #[test]
    fn summary_stats_are_consistent() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = SummaryStats::from_values(&v);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert!(s.iqr() > 0.0);
        assert!(s.p95 > s.p75 && s.p75 > s.median && s.median > s.p25);
    }
}
