//! `cargo xtask` — workspace task runner.
//!
//! The one task today is `lint`: a determinism & safety static-analysis
//! pass over every workspace `.rs` source (vendored third-party stand-ins
//! under `vendor/` are out of scope). See [`rules`] for the rule catalogue
//! and the README "Static analysis" section for the workflow.
//!
//! ```text
//! cargo xtask lint                  # run all rules, non-zero exit on findings
//! cargo xtask lint --rule <id>      # run a single rule
//! cargo xtask lint --list-allows    # audit every lint:allow suppression
//! cargo xtask lint --dynamic        # also run the zero-allocation predict check
//! ```

mod lexer;
mod rules;

use rules::{AllowEntry, Finding, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`; available: lint");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask lint [--rule <id>] [--list-allows] [--dynamic]\n\
         rules: {}",
        RULES.join(", ")
    );
}

fn lint(args: &[String]) -> ExitCode {
    let mut enabled: Vec<&str> = RULES.to_vec();
    let mut list_allows = false;
    let mut dynamic = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rule" => {
                let Some(rule) = it.next() else {
                    eprintln!("--rule needs a rule id");
                    usage();
                    return ExitCode::from(2);
                };
                let Some(known) = RULES.iter().find(|r| **r == rule.as_str()) else {
                    eprintln!("unknown rule `{rule}`; rules: {}", RULES.join(", "));
                    return ExitCode::from(2);
                };
                enabled = vec![known];
            }
            "--list-allows" => list_allows = true,
            "--dynamic" => dynamic = true,
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let root = workspace_root();
    let files = workspace_sources(&root);
    if files.is_empty() {
        eprintln!("no workspace sources found under {}", root.display());
        return ExitCode::from(2);
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut allows: Vec<AllowEntry> = Vec::new();
    for file in &files {
        let Ok(source) = std::fs::read_to_string(file) else {
            eprintln!("warning: unreadable source {}", file.display());
            continue;
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let (mut f, a) = rules::scan_source(&rel, &source, &enabled);
        findings.append(&mut f);
        allows.extend(a);
    }

    if list_allows {
        if allows.is_empty() {
            println!("no lint:allow suppressions in the workspace");
        }
        for a in &allows {
            match &a.justification {
                Some(j) => println!("{}:{} {} — {}", a.file, a.line, a.rule, j),
                None => println!("{}:{} {} — (NO JUSTIFICATION)", a.file, a.line, a.rule),
            }
        }
        // Auditing mode still fails on bare suppressions so CI can gate it.
        let bare = allows.iter().filter(|a| a.justification.is_none()).count();
        return if bare == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for f in &findings {
        println!("{f}");
    }

    let mut failed = !findings.is_empty();
    if failed {
        eprintln!(
            "\ncargo xtask lint: {} finding(s) across {} file(s) scanned",
            findings.len(),
            files.len()
        );
    } else {
        println!(
            "cargo xtask lint: clean ({} files, rules: {})",
            files.len(),
            enabled.join(", ")
        );
    }

    if dynamic {
        println!("\nrunning dynamic zero-allocation check (cargo test -p sizey-bench --test zero_alloc_predict)...");
        let status = std::process::Command::new(env!("CARGO"))
            .args([
                "test",
                "--package",
                "sizey-bench",
                "--test",
                "zero_alloc_predict",
                "--quiet",
            ])
            .current_dir(&root)
            .status();
        match status {
            Ok(s) if s.success() => {
                println!("dynamic check: clean (steady-state predict performs 0 heap allocations)")
            }
            Ok(_) => {
                eprintln!("dynamic check FAILED: steady-state predict allocated");
                failed = true;
            }
            Err(e) => {
                eprintln!("dynamic check could not run: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is this crate's dir when run
/// via `cargo xtask`, two levels below the root.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Every `.rs` file belonging to workspace members (per the root
/// `Cargo.toml` member globs) plus the root package's `src/` and `tests/`.
/// `vendor/*` members are third-party stand-ins and are excluded, as are
/// build artefacts under `target/`.
fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = vec![root.join("src"), root.join("tests")];
    for member in workspace_members(root) {
        if member.starts_with("vendor") {
            continue;
        }
        dirs.push(root.join(member));
    }
    let mut files = Vec::new();
    for dir in dirs {
        collect_rs(&dir, &mut files);
    }
    files.sort();
    files.dedup();
    files
}

/// Member dirs from the root manifest's `members = [..]` list, with a
/// trailing `/*` glob expanded one level.
fn workspace_members(root: &Path) -> Vec<PathBuf> {
    let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                if let Some(prefix) = piece.strip_suffix("/*") {
                    if let Ok(entries) = std::fs::read_dir(root.join(prefix)) {
                        for e in entries.flatten() {
                            if e.path().is_dir() {
                                members.push(PathBuf::from(prefix).join(e.file_name()));
                            }
                        }
                    }
                } else {
                    members.push(PathBuf::from(piece));
                }
            }
            if line.contains(']') {
                break;
            }
        }
    }
    members
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod self_scan {
    use super::*;

    /// The committed tree must be lint-clean: this is the same scan
    /// `cargo xtask lint` runs, asserted as a plain test so `cargo test`
    /// alone also guards the invariants.
    #[test]
    fn workspace_is_clean() {
        let root = workspace_root();
        let files = workspace_sources(&root);
        assert!(
            files.len() > 20,
            "workspace walk looks broken: only {} files found",
            files.len()
        );
        let mut findings = Vec::new();
        for file in &files {
            let source = std::fs::read_to_string(file).expect("readable source");
            let rel = file
                .strip_prefix(&root)
                .unwrap_or(file)
                .to_string_lossy()
                .replace('\\', "/");
            let (f, _) = rules::scan_source(&rel, &source, &RULES);
            findings.extend(f);
        }
        assert!(
            findings.is_empty(),
            "committed tree has lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Every suppression in the tree must carry a justification.
    #[test]
    fn all_suppressions_are_justified() {
        let root = workspace_root();
        for file in workspace_sources(&root) {
            let source = std::fs::read_to_string(&file).expect("readable source");
            let rel = file
                .strip_prefix(&root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let (_, allows) = rules::scan_source(&rel, &source, &[]);
            for a in allows {
                assert!(
                    a.justification.is_some(),
                    "{}:{} lint:allow({}) has no justification",
                    a.file,
                    a.line,
                    a.rule
                );
            }
        }
    }
}
