//! End-to-end tests for the event-driven scheduler on real generated
//! workloads: queueing under finite capacity, the cost of over-allocation in
//! makespan, and multi-tenant contention.

use sizey_suite::prelude::*;

fn workload(name: &str, scale: f64, seed: u64) -> Vec<TaskInstance> {
    let spec = sizey_workflows::workflow_by_name(name).expect("known workflow");
    generate_workflow(&spec, &GeneratorConfig::scaled(scale, seed))
}

/// A cluster where memory (not slots) is the binding resource, so sizing
/// quality decides how many tasks run concurrently.
fn constrained() -> SimulationConfig {
    SimulationConfig::default().with_nodes(1, 128e9, 64)
}

// Acceptance criterion: finite-capacity queueing strictly increases makespan
// for an over-allocating predictor compared to Sizey on the same workload —
// over-allocation now costs time, not just GB·h.
#[test]
fn overallocation_strictly_increases_makespan_under_queueing() {
    let instances = workload("eager", 0.04, 17);
    let sim = constrained();

    let mut presets = PresetPredictor;
    let preset_report = replay_workflow("eager", &instances, &mut presets, &sim);
    let mut sizey = SizeyPredictor::with_defaults();
    let sizey_report = replay_workflow("eager", &instances, &mut sizey, &sim);

    assert_eq!(preset_report.unfinished_instances, 0);
    assert_eq!(sizey_report.unfinished_instances, 0);
    assert!(
        preset_report.makespan_seconds > sizey_report.makespan_seconds,
        "presets makespan {} s should exceed Sizey makespan {} s on a \
         memory-constrained cluster",
        preset_report.makespan_seconds,
        sizey_report.makespan_seconds
    );
    assert!(
        preset_report.total_queue_delay_seconds() > sizey_report.total_queue_delay_seconds(),
        "over-allocation should also show up as queue delay"
    );
}

// Queueing itself stretches the replay: the same predictor on the same
// workload finishes strictly later on a constrained cluster than on an
// unbounded one.
#[test]
fn finite_capacity_strictly_increases_makespan_vs_unbounded() {
    let instances = workload("iwd", 0.06, 17);
    let mut a = PresetPredictor;
    let finite = replay_workflow("iwd", &instances, &mut a, &constrained());
    let mut b = PresetPredictor;
    let unbounded = replay_workflow("iwd", &instances, &mut b, &SimulationConfig::unbounded());
    assert!(
        finite.makespan_seconds > unbounded.makespan_seconds,
        "finite {} s vs unbounded {} s",
        finite.makespan_seconds,
        unbounded.makespan_seconds
    );
    // Decisions are identical either way — only timing changes.
    assert_eq!(finite.total_wastage_gbh(), unbounded.total_wastage_gbh());
    assert_eq!(finite.total_failures(), unbounded.total_failures());
}

// Multi-tenant contention on real workloads: a preset-sized tenant sharing
// the cluster delays a lean tenant relative to running alone.
#[test]
fn multi_tenant_replay_completes_and_contention_is_visible() {
    let iwd = workload("iwd", 0.04, 5);
    let rnaseq = workload("rnaseq", 0.02, 5);
    let sim = constrained();

    let shared = schedule_workflows(
        vec![
            WorkflowTenant::new("iwd", iwd.clone(), Box::new(PresetPredictor)),
            WorkflowTenant::new("rnaseq", rnaseq, Box::new(PresetPredictor)),
        ],
        &sim,
    );
    assert_eq!(shared.reports.len(), 2);
    for report in &shared.reports {
        assert_eq!(
            report.unfinished_instances, 0,
            "{} unfinished",
            report.workflow
        );
        assert!(report.total_wastage_gbh() > 0.0);
    }
    assert_eq!(shared.stats.forced_placements, 0);

    let alone = schedule_workflows(
        vec![WorkflowTenant::new("iwd", iwd, Box::new(PresetPredictor))],
        &sim,
    );
    assert!(
        shared.reports[0].total_queue_delay_seconds()
            >= alone.reports[0].total_queue_delay_seconds(),
        "sharing the cluster cannot reduce a tenant's queue delay"
    );
    assert!(shared.makespan_seconds >= alone.makespan_seconds);
}

// Scheduling policies only move tasks in time: the allocation decisions, and
// with them wastage and failures, are identical across policies for the
// sequential replay.
#[test]
fn policies_change_timing_but_not_decisions() {
    let instances = workload("rnaseq", 0.03, 11);
    let mut reference: Option<ReplayReport> = None;
    for policy in SchedulePolicy::ALL {
        let mut p = PresetPredictor;
        let report = replay_workflow(
            "rnaseq",
            &instances,
            &mut p,
            &constrained().with_policy(policy),
        );
        if let Some(r) = &reference {
            assert_eq!(r.total_wastage_gbh(), report.total_wastage_gbh());
            assert_eq!(r.total_failures(), report.total_failures());
            assert_eq!(r.events.len(), report.events.len());
        } else {
            reference = Some(report);
        }
    }
}

// Heterogeneous pools end to end: adding a big-memory node lets allocations
// exceed the default node size.
#[test]
fn heterogeneous_pool_raises_the_allocation_ceiling() {
    let instances = workload("iwd", 0.03, 7);
    let hetero = SimulationConfig::default().with_extra_pool(NodePoolSpec {
        count: 1,
        memory_bytes: 512e9,
        slots: 16,
    });
    assert_eq!(hetero.largest_node_memory_bytes(), 512e9);
    let mut p = PresetPredictor;
    let report = replay_workflow("iwd", &instances, &mut p, &hetero);
    assert_eq!(report.unfinished_instances, 0);
    for e in &report.events {
        assert!(e.allocated_bytes <= 512e9);
    }
}
