//! The Resource Allocation Quality (RAQ) score (Section II-C).
//!
//! The RAQ score rates each pool member for the task currently being sized.
//! It combines
//!
//! * the **accuracy score** (Eq. 1) — the model's mean bounded relative error
//!   over the historical task instances of the same (task type, machine)
//!   combination, and
//! * the **efficiency score** (Eq. 2) — how small the model's current
//!   estimate is relative to the largest estimate in the pool, punishing
//!   outlying overestimates.
//!
//! Both sub-scores and the combined RAQ (Eq. 3) are normalised to `[0, 1]`.

use sizey_ml::metrics::bounded_relative_error;

/// Computes the accuracy score of one model (Eq. 1) from the pairs of
/// historical `(prediction, actual)` values it produced for this
/// (task type, machine) combination. Returns 0 when no history exists —
/// a model we know nothing about should never be preferred on accuracy.
///
/// This is the straightforward reference implementation; the predict hot
/// path uses [`accuracy_score_cached`] over per-pair contributions computed
/// once at observation time (the equivalence proptests assert the two are
/// bit-identical).
pub fn accuracy_score(history: &[(f64, f64)]) -> f64 {
    if history.is_empty() {
        return 0.0;
    }
    let sum: f64 = history
        .iter()
        .map(|&(pred, actual)| pair_accuracy(pred, actual))
        .sum();
    (sum / history.len() as f64).clamp(0.0, 1.0)
}

/// The contribution of one `(prediction, actual)` pair to the accuracy score
/// of Eq. 1. Pool members cache this value when the pair is recorded, so a
/// prediction sums cached contributions instead of re-scoring the
/// prequential history on every call.
#[inline]
pub fn pair_accuracy(pred: f64, actual: f64) -> f64 {
    1.0 - bounded_relative_error(pred, actual, 1.0)
}

/// Accuracy score over **cached** per-pair contributions
/// ([`pair_accuracy`]). Bit-identical to [`accuracy_score`] over the pairs
/// the contributions were computed from: same values, same summation order.
pub fn accuracy_score_cached(scores: &[f64]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let sum: f64 = scores.iter().sum();
    (sum / scores.len() as f64).clamp(0.0, 1.0)
}

/// Computes the efficiency scores of all pool members (Eq. 2) from their
/// current estimates. The model with the largest estimate always scores 0.
/// Degenerate cases (empty pool, all-zero estimates) return all-zero scores.
pub fn efficiency_scores(estimates: &[f64]) -> Vec<f64> {
    let max = estimates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if estimates.is_empty() || !max.is_finite() || max <= 0.0 {
        return vec![0.0; estimates.len()];
    }
    estimates
        .iter()
        .map(|&e| (1.0 - e / max).clamp(0.0, 1.0))
        .collect()
}

/// Combines accuracy and efficiency into the RAQ score (Eq. 3):
/// `RAQ = (1 - alpha) * AS + alpha * ES`.
pub fn raq_score(accuracy: f64, efficiency: f64, alpha: f64) -> f64 {
    let alpha = alpha.clamp(0.0, 1.0);
    ((1.0 - alpha) * accuracy + alpha * efficiency).clamp(0.0, 1.0)
}

/// Convenience: computes the RAQ scores of the whole pool from each model's
/// accuracy history and current estimate. Reference implementation — the
/// hot path uses [`pool_raq_scores_from_accuracy`] over pre-computed
/// accuracy scores.
pub fn pool_raq_scores(
    accuracy_histories: &[Vec<(f64, f64)>],
    estimates: &[f64],
    alpha: f64,
) -> Vec<f64> {
    debug_assert_eq!(accuracy_histories.len(), estimates.len());
    let accuracies: Vec<f64> = accuracy_histories
        .iter()
        .map(|hist| accuracy_score(hist))
        .collect();
    pool_raq_scores_from_accuracy(&accuracies, estimates, alpha)
}

/// RAQ scores of the whole pool from each model's already-computed accuracy
/// score and current estimate — the allocation-light predict path (accuracy
/// comes from [`accuracy_score_cached`] over cached contributions).
pub fn pool_raq_scores_from_accuracy(
    accuracies: &[f64],
    estimates: &[f64],
    alpha: f64,
) -> Vec<f64> {
    let mut out = Vec::new();
    pool_raq_scores_into(accuracies, estimates, alpha, &mut out);
    out
}

/// [`pool_raq_scores_from_accuracy`] written into a caller-owned buffer —
/// the allocation-free twin used by the predict hot path. The Eq. 2
/// efficiency score is computed inline from the same pool maximum instead of
/// materialising an intermediate vector; values and order are identical.
pub fn pool_raq_scores_into(accuracies: &[f64], estimates: &[f64], alpha: f64, out: &mut Vec<f64>) {
    debug_assert_eq!(accuracies.len(), estimates.len());
    let max = estimates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let degenerate = estimates.is_empty() || !max.is_finite() || max <= 0.0;
    out.clear();
    out.extend(accuracies.iter().zip(estimates.iter()).map(|(&acc, &e)| {
        let eff = if degenerate {
            0.0
        } else {
            (1.0 - e / max).clamp(0.0, 1.0)
        };
        raq_score(acc, eff, alpha)
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_give_accuracy_one() {
        let history = vec![(2e9, 2e9), (4e9, 4e9)];
        assert_eq!(accuracy_score(&history), 1.0);
    }

    #[test]
    fn accuracy_bounds_large_errors_at_zero_contribution() {
        // A 10x overestimate contributes 0 (bounded at 1), so with one
        // perfect prediction the mean is 0.5.
        let history = vec![(20e9, 2e9), (4e9, 4e9)];
        assert!((accuracy_score(&history) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_of_empty_history_is_zero() {
        assert_eq!(accuracy_score(&[]), 0.0);
    }

    #[test]
    fn accuracy_matches_equation_one_example() {
        // Errors of 10% and 30% => scores 0.9 and 0.7 => mean 0.8.
        let history = vec![(1.1e9, 1.0e9), (0.7e9, 1.0e9)];
        assert!((accuracy_score(&history) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn efficiency_of_largest_estimate_is_zero() {
        let scores = efficiency_scores(&[2e9, 4e9, 8e9]);
        assert_eq!(scores[2], 0.0);
        assert!((scores[0] - 0.75).abs() < 1e-12);
        assert!((scores[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_handles_equal_and_degenerate_estimates() {
        let equal = efficiency_scores(&[3e9, 3e9]);
        assert_eq!(equal, vec![0.0, 0.0]);
        assert_eq!(efficiency_scores(&[]), Vec::<f64>::new());
        assert_eq!(efficiency_scores(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn raq_interpolates_between_accuracy_and_efficiency() {
        assert_eq!(raq_score(0.8, 0.2, 0.0), 0.8);
        assert_eq!(raq_score(0.8, 0.2, 1.0), 0.2);
        assert!((raq_score(0.8, 0.2, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn raq_clamps_alpha_and_result() {
        assert_eq!(raq_score(0.8, 0.2, 7.0), 0.2);
        assert!(raq_score(2.0, 2.0, 0.5) <= 1.0);
    }

    #[test]
    fn accuracy_denominator_is_the_actual_value() {
        // Eq. 1 normalises by the actual peak: a 2x overestimate of a 1 GB
        // peak caps at error 1 (score 0), while a half-sized underestimate is
        // error 0.5 (score 0.5).
        assert!((accuracy_score(&[(2.0e9, 1.0e9)]) - 0.0).abs() < 1e-12);
        assert!((accuracy_score(&[(0.5e9, 1.0e9)]) - 0.5).abs() < 1e-12);
        // Zero actual and zero prediction is a perfect score.
        assert_eq!(accuracy_score(&[(0.0, 0.0)]), 1.0);
    }

    #[test]
    fn worked_example_through_equations_one_to_three() {
        // Three models sized for the same submission, alpha = 0.25.
        //
        // Accuracy (Eq. 1):
        //   model 0: errors 0.2 and 0.1      -> AS = (0.8 + 0.9) / 2 = 0.85
        //   model 1: error 0.5               -> AS = 0.5
        //   model 2: error 3.0, capped at 1  -> AS = 0.0
        // Efficiency (Eq. 2) for estimates [2, 3, 4] GB:
        //   ES = [1 - 2/4, 1 - 3/4, 1 - 4/4] = [0.5, 0.25, 0.0]
        // RAQ (Eq. 3) = 0.75 * AS + 0.25 * ES:
        //   [0.75*0.85 + 0.25*0.5, 0.75*0.5 + 0.25*0.25, 0.0]
        //   = [0.7625, 0.4375, 0.0]
        let histories = vec![
            vec![(1.2e9, 1.0e9), (0.9e9, 1.0e9)],
            vec![(1.5e9, 1.0e9)],
            vec![(4.0e9, 1.0e9)],
        ];
        let estimates = vec![2.0e9, 3.0e9, 4.0e9];
        let raq = pool_raq_scores(&histories, &estimates, 0.25);
        assert!((raq[0] - 0.7625).abs() < 1e-12, "raq[0] = {}", raq[0]);
        assert!((raq[1] - 0.4375).abs() < 1e-12, "raq[1] = {}", raq[1]);
        assert!((raq[2] - 0.0).abs() < 1e-12, "raq[2] = {}", raq[2]);
    }

    #[test]
    fn pool_scores_combine_both_components() {
        let histories = vec![
            vec![(1.0e9, 1.0e9)], // perfectly accurate
            vec![(3.0e9, 1.0e9)], // wildly inaccurate
        ];
        let estimates = vec![1.0e9, 5.0e9];
        // alpha = 0: pure accuracy.
        let raq0 = pool_raq_scores(&histories, &estimates, 0.0);
        assert!(raq0[0] > raq0[1]);
        // alpha = 1: pure efficiency — the smaller estimate wins.
        let raq1 = pool_raq_scores(&histories, &estimates, 1.0);
        assert!(raq1[0] > raq1[1]);
        assert_eq!(raq1[1], 0.0);
        for s in raq0.iter().chain(raq1.iter()) {
            assert!((0.0..=1.0).contains(s));
        }
    }
}
