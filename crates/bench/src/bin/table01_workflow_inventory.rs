//! Table I — number of task types and average number of task instances per
//! task type for each experimental workflow.
//!
//! Run with `cargo run -p sizey-bench --release --bin table01_workflow_inventory`.

use sizey_bench::{banner, fmt, render_table, HarnessSettings};
use sizey_workflows::{all_workflows, inventory};

fn main() {
    let settings = HarnessSettings::from_env();
    banner("Table I: workflow inventory", &settings);

    let rows: Vec<Vec<String>> = inventory(&all_workflows())
        .into_iter()
        .map(|row| {
            vec![
                row.workflow,
                row.task_types.to_string(),
                fmt(row.avg_instances_per_type, 0),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(
            &[
                "Workflow",
                "# Task Types",
                "AVG # Task Instances per Task Type"
            ],
            &rows
        )
    );
    println!("Paper reference (Table I): eager 13/121, methylseq 9/100, chipseq 30/82,");
    println!("rnaseq 30/39, mag 8/720, iwd 5/332.");
}
