//! # sizey-core
//!
//! The Sizey online task-memory prediction method (Bader et al., CLUSTER
//! 2024), implemented on top of the workspace's own ML, provenance and
//! simulation substrates.
//!
//! Sizey maintains one model pool per (task type, machine) combination with
//! four regression model classes (linear, k-NN, MLP, random forest). Each
//! pool member is scored with the **Resource Allocation Quality (RAQ)**
//! score — a convex combination of its historical accuracy and the relative
//! efficiency of its current estimate — and a gating mechanism (Argmax or
//! softmax Interpolation) turns the individual estimates into one prediction.
//! A dynamically selected offset protects against under-prediction, failures
//! escalate to the maximum memory ever observed and then double, and models
//! are updated online after every task completion.
//!
//! * [`config`] — all hyper-parameters (α, gating, offset, online mode),
//! * [`raq`] — accuracy score, efficiency score and RAQ (Eqs. 1–3),
//! * [`gating`] — Argmax and Interpolation gating (Eq. 4),
//! * [`offset`] — the four offset strategies and their dynamic selection,
//! * [`failure`] — max-observed-then-double failure handling,
//! * [`pool`] — the per-(task type, machine) model pool,
//! * [`sizey`] — the [`SizeyPredictor`] implementing
//!   [`sizey_sim::MemoryPredictor`] (read-path `predict`, write-path
//!   `observe`),
//! * [`serve`] — the concurrent serving layer: [`ConcurrentPredictor`]
//!   shards predictors by (task type, machine) behind per-shard read-write
//!   locks and batches predictions across a thread pool;
//!   [`SharedPredictor`] handles let several tenants share one service,
//! * [`service`] — the async serving front-end: [`AsyncService`] puts
//!   bounded per-shard request queues with micro-batching and admission
//!   control in front of the write path, and serves predictions lock-free
//!   from epoch-swapped immutable model snapshots
//!   ([`service::snapshot::SnapshotCell`]).
//!
//! ## Example
//!
//! ```
//! use sizey_core::SizeyPredictor;
//! use sizey_sim::{replay_workflow, SimulationConfig};
//! use sizey_workflows::{generate_workflow, GeneratorConfig, profiles};
//!
//! let instances = generate_workflow(&profiles::iwd(), &GeneratorConfig::scaled(0.03, 7));
//! let mut sizey = SizeyPredictor::with_defaults();
//! let report = replay_workflow("iwd", &instances, &mut sizey, &SimulationConfig::default());
//! assert_eq!(report.method, "Sizey");
//! assert!(report.total_wastage_gbh() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod failure;
pub mod gating;
pub mod offset;
pub mod pool;
pub mod raq;
pub mod serve;
pub mod service;
pub mod sizey;

pub use config::{DriftPolicy, GatingStrategy, OffsetMode, OnlineMode, SizeyConfig};
pub use failure::{failure_allocation, failure_allocation_clamped};
pub use gating::{gate, gate_with, GatingDecision};
pub use offset::{
    hypothetical_wastage, select_dynamic_offset, select_dynamic_offset_with, OffsetScratch,
    OffsetStrategy,
};
pub use pool::{GatedOutcome, ModelPool, PoolScratch, RetrainJob, RetrainPolicy, RetrainedModels};
pub use raq::{accuracy_score, efficiency_scores, pool_raq_scores, raq_score};
pub use serve::{
    BatchRequest, ConcurrentPredictor, ConcurrentSizey, ServiceCheckpoint, SharedPredictor,
    SharedSizey, DEFAULT_SHARDS,
};
pub use service::{
    AdmissionPolicy, AsyncHandle, AsyncService, AsyncSizey, AsyncSizeyHandle, ServePredictor,
    ServiceConfig, ServiceStats,
};
pub use sizey::SizeyPredictor;

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_sim::{replay_workflow, PresetPredictor, SimulationConfig};
    use sizey_workflows::{generate_workflow, profiles, GeneratorConfig};

    #[test]
    fn sizey_wastes_less_than_presets_end_to_end() {
        let spec = profiles::iwd();
        let instances = generate_workflow(&spec, &GeneratorConfig::scaled(0.08, 21));
        let config = SimulationConfig::default();

        let mut presets = PresetPredictor;
        let preset_report = replay_workflow("iwd", &instances, &mut presets, &config);

        let mut sizey = SizeyPredictor::with_defaults();
        let sizey_report = replay_workflow("iwd", &instances, &mut sizey, &config);

        assert!(
            sizey_report.total_wastage_gbh() < preset_report.total_wastage_gbh() / 2.0,
            "Sizey {} GBh should be well below the presets' {} GBh",
            sizey_report.total_wastage_gbh(),
            preset_report.total_wastage_gbh()
        );
        assert_eq!(sizey_report.unfinished_instances, 0);
    }
}
