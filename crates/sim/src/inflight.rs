//! Engine-owned in-flight retry state.
//!
//! Before the predictor API was split into read and write paths, every
//! predictor kept its own map from task sequence to the allocation of the
//! most recent attempt, so that a retry could escalate from it. Sizey's map
//! evicted entries only on *success*: a task that exhausted its attempt
//! budget leaked one entry forever — unbounded memory for any long-running
//! service. The fix is structural, not local: per-attempt retry state now
//! lives in exactly one place, this ledger, owned by the replay engine,
//! with an explicit lifecycle that evicts on success **and** on terminal
//! failure. Predictors receive the retry baseline through
//! [`AttemptContext`](crate::predictor::AttemptContext) and cannot leak it.
//!
//! The sequential [`replay_workflow`](crate::replay::replay_workflow) loop
//! does not even need the ledger — its retry baseline is a stack local that
//! dies with the per-instance loop. The event-driven engine underneath
//! [`schedule_workflows`](crate::scheduler::schedule_workflows) interleaves
//! attempts of many tasks, so it keys the ledger by (tenant, instance) and
//! the property/regression suites assert it drains to empty even when every
//! task terminally fails.

use std::collections::HashMap;

/// The replay engine's map from in-flight task to the allocation its most
/// recent failed attempt ran with.
///
/// Entries exist only while a task is *between* a failed attempt and its
/// retry; they are evicted when the task succeeds or exhausts its attempt
/// budget, so `len()` is bounded by the number of tasks currently awaiting
/// a retry — never by the total number of tasks replayed.
#[derive(Debug, Clone, Default)]
pub struct RetryLedger<K: std::hash::Hash + Eq + Copy> {
    last_allocation: HashMap<K, f64>,
    peak_entries: usize,
}

impl<K: std::hash::Hash + Eq + Copy> RetryLedger<K> {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        RetryLedger {
            last_allocation: HashMap::new(),
            peak_entries: 0,
        }
    }

    /// Records that task `key`'s most recent attempt failed after running
    /// with `allocation_bytes`; the next retry escalates from this value.
    pub fn record_failure(&mut self, key: K, allocation_bytes: f64) {
        self.last_allocation.insert(key, allocation_bytes);
        self.peak_entries = self.peak_entries.max(self.last_allocation.len());
    }

    /// The allocation of `key`'s most recent failed attempt, if a retry is
    /// pending.
    pub fn last_allocation(&self, key: K) -> Option<f64> {
        self.last_allocation.get(&key).copied()
    }

    /// Evicts `key` because its task reached a terminal state — success
    /// **or** an exhausted attempt budget. Idempotent: evicting a task that
    /// never failed (or was already evicted) is a no-op.
    pub fn finish(&mut self, key: K) {
        self.last_allocation.remove(&key);
    }

    /// Number of tasks currently awaiting a retry.
    pub fn len(&self) -> usize {
        self.last_allocation.len()
    }

    /// True when no task is awaiting a retry.
    pub fn is_empty(&self) -> bool {
        self.last_allocation.is_empty()
    }

    /// High-water mark of simultaneously tracked retries.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_then_success_round_trip() {
        let mut ledger: RetryLedger<u64> = RetryLedger::new();
        assert!(ledger.is_empty());
        ledger.record_failure(7, 4e9);
        assert_eq!(ledger.last_allocation(7), Some(4e9));
        ledger.record_failure(7, 8e9);
        assert_eq!(ledger.last_allocation(7), Some(8e9));
        assert_eq!(ledger.len(), 1);
        ledger.finish(7);
        assert!(ledger.is_empty());
        assert_eq!(ledger.last_allocation(7), None);
    }

    /// Regression for the pre-split leak: eviction must happen on *terminal
    /// failure* too, not only on success. A ledger driven through many tasks
    /// that all exhaust their attempt budgets ends empty.
    #[test]
    fn terminally_failed_tasks_are_evicted() {
        let mut ledger: RetryLedger<u64> = RetryLedger::new();
        for task in 0..1000u64 {
            for attempt in 1..=3u32 {
                ledger.record_failure(task, attempt as f64 * 1e9);
            }
            // Attempt budget exhausted: the task will never succeed, and the
            // engine retires it.
            ledger.finish(task);
        }
        assert!(ledger.is_empty(), "terminal failures must not leak entries");
        assert_eq!(ledger.peak_entries(), 1);
    }

    #[test]
    fn peak_tracks_concurrent_retries() {
        let mut ledger: RetryLedger<(usize, usize)> = RetryLedger::new();
        for i in 0..5 {
            ledger.record_failure((0, i), 1e9);
        }
        assert_eq!(ledger.peak_entries(), 5);
        for i in 0..5 {
            ledger.finish((0, i));
        }
        assert!(ledger.is_empty());
        assert_eq!(ledger.peak_entries(), 5, "peak is a high-water mark");
    }

    #[test]
    fn finish_is_idempotent_and_safe_for_unknown_keys() {
        let mut ledger: RetryLedger<u64> = RetryLedger::new();
        ledger.finish(42);
        ledger.record_failure(1, 2e9);
        ledger.finish(1);
        ledger.finish(1);
        assert!(ledger.is_empty());
    }
}
