//! Equivalence proptests for the hot-path overhaul: every optimized kernel
//! must be **bit-identical** to the straightforward implementation it
//! replaced.
//!
//! * k-NN: flattened/pre-scaled buffer + `select_nth_unstable` partial
//!   selection vs. scale-per-row + stable full sort,
//! * RAQ: cached per-pair accuracy contributions vs. re-scoring the
//!   prequential history on every call,
//! * `Cluster::select_node`: the free-capacity index (segment tree +
//!   ordered-by-free set) vs. the naive linear scans, across random
//!   occupancy states, policies and degenerate allocations.

use proptest::prelude::*;
use sizey_core::raq::{
    accuracy_score, accuracy_score_cached, pair_accuracy, pool_raq_scores,
    pool_raq_scores_from_accuracy,
};
use sizey_ml::knn::{KnnConfig, KnnRegression, KnnWeighting};
use sizey_ml::model::Regressor;
use sizey_sim::{Node, Placement};
use sizey_suite::prelude::*;

// ---------------------------------------------------------------------------
// k-NN: optimized selection vs. the straightforward reference.
// ---------------------------------------------------------------------------

/// The pre-overhaul k-NN, verbatim: min-max scaler fitted on the rows, every
/// stored row re-scaled per query, distances ranked by a stable full sort.
fn naive_knn_predict(config: KnnConfig, rows: &[Vec<f64>], targets: &[f64], query: &[f64]) -> f64 {
    let n_cols = rows[0].len();
    // Min-max scaler parameters, exactly as `Scaler::fit` computes them.
    let mut shift = vec![0.0; n_cols];
    let mut scale = vec![1.0; n_cols];
    for c in 0..n_cols {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in rows {
            lo = lo.min(r[c]);
            hi = hi.max(r[c]);
        }
        let range = hi - lo;
        shift[c] = lo;
        scale[c] = if range > 1e-12 { range } else { 1.0 };
    }
    let transform = |row: &[f64]| -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(c, &v)| (v - shift[c]) / scale[c])
            .collect()
    };
    let scaled_query = transform(query);
    let mut dists: Vec<(usize, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let scaled = transform(row);
            let d2: f64 = scaled
                .iter()
                .zip(scaled_query.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            (i, d2)
        })
        .collect();
    dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
    let k = config.k.max(1).min(dists.len());
    dists.truncate(k);
    match config.weighting {
        KnnWeighting::Uniform => {
            let sum: f64 = dists.iter().map(|&(i, _)| targets[i]).sum();
            sum / dists.len() as f64
        }
        KnnWeighting::InverseDistance => {
            let exact: Vec<usize> = dists
                .iter()
                .filter(|(_, d)| *d == 0.0)
                .map(|&(i, _)| i)
                .collect();
            if !exact.is_empty() {
                let sum: f64 = exact.iter().map(|&i| targets[i]).sum();
                return sum / exact.len() as f64;
            }
            let mut weight_sum = 0.0;
            let mut value_sum = 0.0;
            for &(i, d2) in &dists {
                let w = 1.0 / d2.sqrt();
                weight_sum += w;
                value_sum += w * targets[i];
            }
            value_sum / weight_sum
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_partial_selection_is_bit_identical_to_the_full_sort(
        raw in proptest::collection::vec(
            (proptest::collection::vec(0.0f64..1e10, 2..3), 1e8f64..1e11),
            1..40,
        ),
        query in proptest::collection::vec(0.0f64..1e10, 2..3),
        k in 1usize..12,
        uniform in 0u8..2,
    ) {
        let uniform = uniform == 1;
        let rows: Vec<Vec<f64>> = raw.iter().map(|(f, _)| f.clone()).collect();
        let targets: Vec<f64> = raw.iter().map(|(_, t)| *t).collect();
        let config = KnnConfig {
            k,
            weighting: if uniform {
                KnnWeighting::Uniform
            } else {
                KnnWeighting::InverseDistance
            },
        };
        let mut model = KnnRegression::new(config);
        model.fit(&Dataset::from_parts(rows.clone(), targets.clone())).unwrap();
        let optimized = model.predict(&query).unwrap();
        let reference = naive_knn_predict(config, &rows, &targets, &query);
        prop_assert_eq!(
            optimized.to_bits(),
            reference.to_bits(),
            "optimized {} vs reference {}",
            optimized,
            reference
        );
    }

    #[test]
    fn knn_partial_fit_growth_matches_the_reference(
        first in proptest::collection::vec((0.0f64..1e10, 1e8f64..1e11), 2..20),
        second in proptest::collection::vec((0.0f64..1e10, 1e8f64..1e11), 1..20),
        query in 0.0f64..1e10,
        k in 1usize..8,
    ) {
        let config = KnnConfig { k, weighting: KnnWeighting::InverseDistance };
        let mut model = KnnRegression::new(config);
        let to_ds = |pairs: &[(f64, f64)]| {
            let xs: Vec<f64> = pairs.iter().map(|(x, _)| *x).collect();
            let ys: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
            Dataset::from_univariate(&xs, &ys)
        };
        model.fit(&to_ds(&first)).unwrap();
        model.partial_fit(&to_ds(&second)).unwrap();
        let rows: Vec<Vec<f64>> = first
            .iter()
            .chain(second.iter())
            .map(|(x, _)| vec![*x])
            .collect();
        let targets: Vec<f64> = first.iter().chain(second.iter()).map(|(_, y)| *y).collect();
        let optimized = model.predict(&[query]).unwrap();
        let reference = naive_knn_predict(config, &rows, &targets, &[query]);
        prop_assert_eq!(optimized.to_bits(), reference.to_bits());
    }
}

// ---------------------------------------------------------------------------
// RAQ: cached per-pair contributions vs. per-call re-scoring.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cached_accuracy_and_raq_scores_are_bit_identical(
        histories in proptest::collection::vec(
            proptest::collection::vec((0.0f64..1e12, 1.0f64..1e12), 0..80),
            1..5,
        ),
        alpha in 0.0f64..1.0,
        window in 1usize..60,
    ) {
        // Estimates derived from the histories so they are arbitrary but
        // deterministic.
        let estimates: Vec<f64> = histories
            .iter()
            .map(|h| h.first().map_or(1e9, |(p, _)| *p + 1.0))
            .collect();
        // Full-history equivalence.
        let naive = pool_raq_scores(&histories, &estimates, alpha);
        let cached_accuracies: Vec<f64> = histories
            .iter()
            .map(|h| {
                let scores: Vec<f64> =
                    h.iter().map(|&(p, a)| pair_accuracy(p, a)).collect();
                accuracy_score_cached(&scores)
            })
            .collect();
        let cached = pool_raq_scores_from_accuracy(&cached_accuracies, &estimates, alpha);
        prop_assert_eq!(naive.len(), cached.len());
        for (n, c) in naive.iter().zip(cached.iter()) {
            prop_assert_eq!(n.to_bits(), c.to_bits());
        }
        // Windowed equivalence (the predict path scores a bounded window):
        // summing the cached tail must equal re-scoring the tail pairs.
        for h in &histories {
            let tail = &h[h.len().saturating_sub(window)..];
            let scores: Vec<f64> = tail.iter().map(|&(p, a)| pair_accuracy(p, a)).collect();
            prop_assert_eq!(
                accuracy_score_cached(&scores).to_bits(),
                accuracy_score(tail).to_bits()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Cluster::select_node: free-capacity index vs. the naive linear scans.
// ---------------------------------------------------------------------------

/// The pre-overhaul node selection, verbatim.
fn naive_select_node(
    nodes: &[Node],
    allocation_bytes: f64,
    policy: SchedulePolicy,
) -> Option<usize> {
    match policy {
        SchedulePolicy::FirstFit | SchedulePolicy::Backfill => nodes
            .iter()
            .find(|n| n.fits(allocation_bytes))
            .map(|n| n.id),
        SchedulePolicy::BestFit => nodes
            .iter()
            .filter(|n| n.fits(allocation_bytes))
            .min_by(|a, b| {
                (a.free_bytes() - allocation_bytes).total_cmp(&(b.free_bytes() - allocation_bytes))
            })
            .map(|n| n.id),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_select_node_matches_the_linear_scan(
        node_count in 1usize..12,
        node_mem_gb in 4.0f64..64.0,
        slots in 1usize..4,
        extra_pool in (0usize..4, 8.0f64..128.0, 1usize..6),
        ops in proptest::collection::vec((0.1f64..40.0, 0u8..2), 1..60),
        probes in proptest::collection::vec(0.05f64..80.0, 1..10),
    ) {
        let mut config = SimulationConfig {
            node_count,
            node_memory_bytes: node_mem_gb * 1e9,
            slots_per_node: slots,
            ..SimulationConfig::default()
        };
        let (extra_count, extra_mem_gb, extra_slots) = extra_pool;
        if extra_count > 0 {
            config = config.with_extra_pool(NodePoolSpec {
                count: extra_count,
                memory_bytes: extra_mem_gb * 1e9,
                slots: extra_slots,
            });
        }
        let mut cluster = sizey_sim::Cluster::new(&config);
        let mut placements: Vec<(Placement, f64)> = Vec::new();

        for (alloc_gb, place) in ops {
            let place = place == 1;
            let alloc = alloc_gb * 1e9;
            // Every mutation is followed by a full policy comparison, so the
            // index is validated across arbitrary occupancy states, not just
            // the final one.
            if place || placements.is_empty() {
                if let Some(p) = cluster.try_place(alloc) {
                    placements.push((p, alloc));
                }
            } else {
                let (p, released) = placements.swap_remove(placements.len() / 2);
                cluster.release(p, released);
            }
            for &probe_gb in &probes {
                let probe = probe_gb * 1e9;
                for policy in SchedulePolicy::ALL {
                    prop_assert_eq!(
                        cluster.select_node(probe, policy),
                        naive_select_node(cluster.nodes(), probe, policy),
                        "policy {:?}, probe {} bytes",
                        policy,
                        probe
                    );
                }
            }
            // Exact-boundary and degenerate allocations: free amounts
            // themselves, NaN and infinity must agree as well.
            let boundary: Vec<f64> = cluster
                .nodes()
                .iter()
                .map(|n| n.free_bytes())
                .chain([f64::NAN, f64::INFINITY, 0.0])
                .collect();
            for probe in boundary {
                for policy in SchedulePolicy::ALL {
                    prop_assert_eq!(
                        cluster.select_node(probe, policy),
                        naive_select_node(cluster.nodes(), probe, policy),
                        "policy {:?}, boundary probe {} bytes",
                        policy,
                        probe
                    );
                }
            }
        }
    }
}
