//! Fig. 2 — peak memory consumption in relation to the input size for two
//! task types, with a linear regression applied: MarkDuplicates (clearly
//! linear) and BaseRecalibrator (clearly non-linear, so a linear model either
//! under- or over-estimates badly).
//!
//! Run with `cargo run -p sizey-bench --release --bin fig02_input_memory_relation`.

use sizey_bench::{banner, fmt, render_table, HarnessSettings};
use sizey_ml::dataset::Dataset;
use sizey_ml::linear::LinearRegression;
use sizey_ml::metrics::mape;
use sizey_ml::model::Regressor;
use sizey_workflows::{generate_workflow, stats, workflow_by_name, GeneratorConfig};

const FIG2_TASKS: [(&str, &str); 2] = [("eager", "MarkDuplicates"), ("rnaseq", "BaseRecalibrator")];

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Fig. 2: input size vs. peak memory with a linear fit",
        &settings,
    );

    let mut rows = Vec::new();
    for (workflow, task) in FIG2_TASKS {
        let spec = workflow_by_name(workflow).expect("known workflow");
        let instances = generate_workflow(&spec, &GeneratorConfig::scaled(1.0, settings.seed));
        let scatter = stats::input_memory_scatter(&instances, task);

        let xs: Vec<f64> = scatter.iter().map(|&(x, _)| x / 1e9).collect();
        let ys: Vec<f64> = scatter.iter().map(|&(_, y)| y / 1e9).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut linear = LinearRegression::with_defaults();
        linear.fit(&data).expect("fit linear model");
        let preds: Vec<f64> = xs
            .iter()
            .map(|&x| linear.predict(&[x]).expect("predict"))
            .collect();
        // How many tasks would fail if sized exactly with the linear fit?
        let underestimated = ys.iter().zip(preds.iter()).filter(|(y, p)| p < y).count();

        let min_in = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_in = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min_mem = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_mem = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

        rows.push(vec![
            task.to_string(),
            scatter.len().to_string(),
            format!("{}-{}", fmt(min_in, 1), fmt(max_in, 1)),
            format!("{}-{}", fmt(min_mem, 1), fmt(max_mem, 1)),
            fmt(linear.coefficients()[1], 2),
            fmt(linear.coefficients()[0], 2),
            fmt(mape(&ys, &preds) * 100.0, 1),
            fmt(underestimated as f64 / scatter.len() as f64 * 100.0, 1),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "Task",
                "n",
                "input GB",
                "peak GB",
                "slope GB/GB",
                "intercept GB",
                "linear MAPE %",
                "underestimated %"
            ],
            &rows
        )
    );
    println!("Paper reference (Fig. 2): MarkDuplicates is linear (2-5 GB input -> 18-22 GB peak),");
    println!("BaseRecalibrator is non-linear (0.2-1.0 GB input -> 0.5-3.5 GB peak), so a linear");
    println!("model leaves roughly half of its instances underestimated.");
}
