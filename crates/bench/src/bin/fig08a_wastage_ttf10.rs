//! Fig. 8a — total memory wastage over time (GBh) aggregated over all six
//! workflows, for every method, with a time-to-failure of 1.0.
//!
//! Run with `cargo run -p sizey-bench --release --bin fig08a_wastage_ttf10`.

use sizey_bench::{
    banner, evaluate_all_methods, fmt, generate_workloads, render_table, HarnessSettings,
    MethodSpec,
};
use sizey_sim::{aggregate_method, SimulationConfig};

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Fig. 8a: total memory wastage (GBh), all workflows, time-to-failure 1.0",
        &settings,
    );

    let workloads = generate_workloads(&settings);
    let sim = SimulationConfig::default().with_time_to_failure(1.0);
    let results = evaluate_all_methods(&workloads, &sim);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(method, reports)| {
            let agg = aggregate_method(reports);
            vec![
                method.name().to_string(),
                fmt(agg.total_wastage_gbh, 2),
                agg.total_failures.to_string(),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(&["Method", "Total Wastage GBh", "Failures"], &rows)
    );

    let sizey = aggregate_method(&results[0].1).total_wastage_gbh;
    let best_baseline = results
        .iter()
        .skip(1)
        .filter(|(m, _)| !matches!(m, MethodSpec::Preset))
        .map(|(_, r)| aggregate_method(r).total_wastage_gbh)
        .fold(f64::INFINITY, f64::min);
    let presets = aggregate_method(&results.last().expect("presets present").1).total_wastage_gbh;
    println!(
        "Sizey vs best baseline: {}% lower wastage (paper: 64.58% lower than Witt-Wastage).",
        fmt((1.0 - sizey / best_baseline) * 100.0, 2)
    );
    println!(
        "Workflow-Presets vs Sizey: {}x higher wastage (paper: ~17x).",
        fmt(presets / sizey, 1)
    );
    println!("Paper reference (Fig. 8a): Sizey 1684.21, Witt-Wastage 5437.08, Witt-LR 4754.85,");
    println!("Tovar-PPM 5072.26, Witt-Percentile 5767.20, Workflow-Presets 28370.77 GBh.");
}
