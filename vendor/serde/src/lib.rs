//! Vendored no-op stand-in for the `serde` derive macros.
//!
//! The build environment has no network access to crates.io. The workspace
//! derives `Serialize`/`Deserialize` on its data model types as forward
//! compatibility markers, but never calls a serializer: persistent traces go
//! through the hand-rolled TSV codec in `sizey-provenance::trace_io`. These
//! derives therefore expand to nothing, which keeps the types' derive lists
//! source-compatible with the real `serde` for when a registry is available
//! (swap this vendored crate for `serde = { version = "1", features =
//! ["derive"] }` and everything still compiles).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepted and discarded.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepted and discarded.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
