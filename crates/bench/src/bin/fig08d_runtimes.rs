//! Fig. 8d — aggregated workflow task runtimes for each method (hours of
//! task execution including the reruns caused by memory failures).
//!
//! Run with `cargo run -p sizey-bench --release --bin fig08d_runtimes`.

use sizey_bench::{
    banner, evaluate_all_methods, fmt, generate_workloads, render_table, HarnessSettings,
};
use sizey_sim::{aggregate_method, SimulationConfig};

fn main() {
    let settings = HarnessSettings::from_env();
    banner("Fig. 8d: aggregated task runtimes per method", &settings);

    let workloads = generate_workloads(&settings);
    let sim = SimulationConfig::default();
    let results = evaluate_all_methods(&workloads, &sim);

    // The failure-free runtime is identical for every method; report it as
    // the baseline the paper's 1221.04 h corresponds to.
    let failure_free_hours: f64 = workloads
        .iter()
        .flat_map(|w| w.instances.iter())
        .map(|i| i.base_runtime_seconds)
        .sum::<f64>()
        / 3600.0;

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(method, reports)| {
            let agg = aggregate_method(reports);
            vec![
                method.name().to_string(),
                fmt(agg.total_runtime_hours, 2),
                fmt(agg.total_runtime_hours - failure_free_hours, 2),
                agg.total_failures.to_string(),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(
            &[
                "Method",
                "Total Runtime h",
                "Overhead vs failure-free h",
                "Failures"
            ],
            &rows
        )
    );
    println!(
        "Failure-free total task runtime: {} h",
        fmt(failure_free_hours, 2)
    );
    println!("Paper reference (Fig. 8d): Workflow-Presets 1221.04 h (no failures), Sizey");
    println!("1221.04-1344.52 h range across methods, Witt-Wastage highest at 1475.40 h.");
    println!("Expected shape: more failures => more rerun hours; presets are the floor.");
}
