//! Fig. 11 — proportion of model classes selected by Sizey (Argmax gating)
//! for the rnaseq workflow.
//!
//! Run with `cargo run -p sizey-bench --release --bin fig11_model_selection_share`.

use sizey_bench::{banner, fmt, render_table, HarnessSettings, MethodSpec};
use sizey_core::{GatingStrategy, SizeyConfig};
use sizey_sim::{replay_workflow, SimulationConfig};
use sizey_workflows::{generate_workflow, workflow_by_name, GeneratorConfig};

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Fig. 11: share of model classes selected by Sizey (Argmax) on rnaseq",
        &settings,
    );

    let spec = workflow_by_name("rnaseq").expect("rnaseq profile");
    let instances = generate_workflow(
        &spec,
        &GeneratorConfig::scaled(settings.scale.max(0.3), settings.seed),
    );
    let mut sizey =
        MethodSpec::Sizey(SizeyConfig::default().with_gating(GatingStrategy::Argmax)).build();
    let report = replay_workflow(
        "rnaseq",
        &instances,
        sizey.as_mut(),
        &SimulationConfig::default(),
    );

    let shares = report.model_selection_share();
    let rows: Vec<Vec<String>> = shares
        .iter()
        .map(|(model, share)| vec![model.clone(), fmt(share * 100.0, 1)])
        .collect();
    println!("{}", render_table(&["Model class", "Share %"], &rows));

    let with_model = report
        .events
        .iter()
        .filter(|e| e.attempt == 0 && e.selected_model.is_some())
        .count();
    println!(
        "Model-based predictions: {with_model} of {} first attempts (the rest used the preset \
         because the task type was still unknown).",
        report.instances
    );
    println!("Paper reference (Fig. 11): MLP 42.7%, KNN 29.1%, Random Forest 19.4%,");
    println!("Linear Regression 8.8%. Expected shape: the non-linear models dominate once");
    println!("enough data is available, while the linear model matters early on.");
}
