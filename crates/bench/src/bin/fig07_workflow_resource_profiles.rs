//! Fig. 7 — distribution of memory, CPU and I/O utilisation of the six
//! executed workflows.
//!
//! Run with `cargo run -p sizey-bench --release --bin fig07_workflow_resource_profiles`.

use sizey_bench::{banner, fmt, render_table, HarnessSettings};
use sizey_workflows::{
    all_workflows, generate_workflow, workflow_resource_profile, GeneratorConfig,
};

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Fig. 7: per-workflow resource utilisation distributions",
        &settings,
    );

    let mut cpu_rows = Vec::new();
    let mut mem_rows = Vec::new();
    let mut read_rows = Vec::new();
    let mut write_rows = Vec::new();

    for spec in all_workflows() {
        let instances = generate_workflow(
            &spec,
            &GeneratorConfig::scaled(settings.scale.max(0.2), settings.seed),
        );
        let profile = workflow_resource_profile(&spec.name, &instances);

        let row = |d: &sizey_workflows::Distribution, decimals: usize| -> Vec<String> {
            vec![
                spec.name.clone(),
                fmt(d.min, decimals),
                fmt(d.q1, decimals),
                fmt(d.median, decimals),
                fmt(d.q3, decimals),
                fmt(d.max, decimals),
            ]
        };
        cpu_rows.push(row(&profile.cpu_utilization_pct, 0));
        mem_rows.push(row(&profile.memory_mb, 0));
        read_rows.push(row(&profile.io_read_mb, 0));
        write_rows.push(row(&profile.io_write_mb, 0));
    }

    let headers = ["Workflow", "min", "q1", "median", "q3", "max"];
    println!("CPU utilisation in %:");
    println!("{}", render_table(&headers, &cpu_rows));
    println!("Memory utilisation in MB:");
    println!("{}", render_table(&headers, &mem_rows));
    println!("I/O read in MB:");
    println!("{}", render_table(&headers, &read_rows));
    println!("I/O write in MB:");
    println!("{}", render_table(&headers, &write_rows));

    println!("Paper reference (Fig. 7): all workflows differ; methylseq is both I/O- and");
    println!("CPU-intensive, mag has the largest memory spread, iwd the smallest footprint.");
}
