//! Vendored minimal stand-in for `parking_lot`.
//!
//! The build environment has no network access to crates.io, so this crate
//! wraps `std::sync` primitives behind `parking_lot`'s ergonomics: `read()`,
//! `write()` and `lock()` return guards directly instead of a poison
//! `Result`. Poisoned locks are recovered with `into_inner`, matching
//! parking_lot's behaviour of not propagating panics through locks.

use std::sync;

/// Reader–writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for shared access to an [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for exclusive access to an [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for a held [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Result of a timed [`Condvar`] wait: reports whether the wait ended
/// because the timeout elapsed.
pub type WaitTimeoutResult = sync::WaitTimeoutResult;

/// Condition variable with `parking_lot`'s non-poisoning behaviour.
///
/// The guard passing follows `std` style (by value, returned back) because
/// [`MutexGuard`] is a type alias for `std`'s guard; poisoning is recovered
/// rather than propagated, like the other primitives in this shim.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the mutex while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0
            .wait(guard)
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Blocks until notified or the wall-clock `deadline` passes.
    pub fn wait_until<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        deadline: std::time::Instant,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        self.0
            .wait_timeout(guard, remaining)
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let signaller = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            *signaller.0.lock() = true;
            signaller.1.notify_all();
        });
        let mut ready = pair.0.lock();
        while !*ready {
            ready = pair.1.wait(ready);
        }
        drop(ready);
        handle.join().expect("signaller thread panicked");
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(5);
        let (_guard, result) = cv.wait_until(m.lock(), deadline);
        assert!(result.timed_out());
    }
}
