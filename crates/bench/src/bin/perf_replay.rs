//! `perf_replay` — the reproducible performance harness for the
//! predict/observe hot path and the streaming replay engine.
//!
//! Two pinned scenarios (fixed workflows, scale, seed, policy and cluster —
//! deliberately independent of the `SIZEY_BENCH_*` environment variables, so
//! two runs on different commits measure the same workload):
//!
//! * **replay** (the default): a multi-tenant sweep through the materialised
//!   event-driven scheduler with one online-learning Sizey predictor per
//!   tenant, reporting end-to-end throughput in dispatched attempts per
//!   second and per-call latency percentiles of `MemoryPredictor::predict`
//!   and `MemoryPredictor::observe` (p50 / p90 / p99 / p999 / max,
//!   microseconds), plus the number of full model-pool retrains behind the
//!   observe tail.
//! * **scale** (`--scale`): a million-instance, 50-tenant workload through
//!   the *streaming* engine ([`schedule_workflows_streaming`]) with
//!   bounded-history predictors and null sinks. The harness runs the same
//!   spec at a calibration fraction first and asserts that peak heap usage
//!   grows **at most logarithmically** with instance count — the
//!   bounded-memory contract of the streaming pipeline. The run fails loudly
//!   (non-zero exit) when the ratio of peaks exceeds the logarithmic bound.
//!
//! Either run rewrites its scenario inside `BENCH_replay.json` at the
//! repository root (schema `sizey-perf-replay/v2`), preserving the other
//! scenario's committed measurement — the perf trajectory tracked across
//! commits.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sizey-bench --bin perf_replay                    # full replay sweep
//! cargo run --release -p sizey-bench --bin perf_replay -- --smoke         # small CI smoke spec
//! cargo run --release -p sizey-bench --bin perf_replay -- --scale         # 1M-instance streaming run
//! cargo run --release -p sizey-bench --bin perf_replay -- --scale --smoke # CI bounded-RSS gate
//! cargo run --release -p sizey-bench --bin perf_replay -- --out /tmp/bench.json
//! ```

use sizey_bench::perf_json::{json_latency, print_latency, summarize, write_bench_json};
use sizey_core::{SizeyConfig, SizeyPredictor};
use sizey_sim::{
    schedule_workflows, schedule_workflows_streaming, AttemptContext, MemoryPredictor,
    NullRecordSink, NullSink, Prediction, SchedulePolicy, SimulationConfig, StreamingTenant,
    TaskSubmission, WorkflowTenant,
};
use sizey_workflows::{all_workflows, generate_workflow, stream_workflow, GeneratorConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sizey_provenance::TaskRecord;

// ---------------------------------------------------------------------------
// Counting allocator: the measurement instrument of the bounded-RSS gate.
// ---------------------------------------------------------------------------

/// A passthrough [`System`] allocator that tracks live and peak heap bytes.
/// Registered for the whole binary so the streaming-scale scenario can assert
/// its bounded-memory contract without platform-specific RSS probes.
struct CountingAllocator;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let now = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
}

// SAFETY: a pure passthrough to the [`System`] allocator — layout
// contracts are forwarded untouched, so the GlobalAlloc invariants hold
// exactly as they do for `System` itself; the atomic counters never
// allocate and cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: delegates to `System.alloc_zeroed` with the caller's layout.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: delegates to `System.dealloc`; `ptr`/`layout` come from a
    // prior alloc on this same (passthrough) allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: delegates to `System.realloc` under the caller's contract
    // (live `ptr`, matching `layout`, non-zero rounded `new_size`).
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let out = System.realloc(ptr, layout, new_size);
        if !out.is_null() {
            if new_size >= layout.size() {
                note_alloc(new_size - layout.size());
            } else {
                LIVE_BYTES.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        out
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Resets the peak-heap high-water mark to the currently live bytes, so the
/// next measurement window starts clean.
fn heap_reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak heap bytes since the last [`heap_reset_peak`].
fn heap_peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Pinned specs.
// ---------------------------------------------------------------------------

/// The pinned harness parameters of one replay-scenario mode.
struct PinnedSpec {
    mode: &'static str,
    /// Fraction of the paper's task volume per workflow.
    scale: f64,
    /// Workload generation seed.
    seed: u64,
    /// Number of tenant workflows (taken in `all_workflows()` order).
    tenants: usize,
    /// Seconds between consecutive instance arrivals of one tenant.
    submit_interval_seconds: f64,
    /// Arrival stagger between tenants, in seconds.
    arrival_stagger_seconds: f64,
}

const FULL: PinnedSpec = PinnedSpec {
    mode: "full",
    scale: 0.5,
    seed: 42,
    tenants: 6,
    submit_interval_seconds: 5.0,
    arrival_stagger_seconds: 600.0,
};

const SMOKE: PinnedSpec = PinnedSpec {
    mode: "smoke",
    scale: 0.01,
    seed: 42,
    tenants: 2,
    submit_interval_seconds: 5.0,
    arrival_stagger_seconds: 60.0,
};

/// The pinned parameters of one streaming-scale-scenario mode. The workload
/// is replayed twice — once at `calibration_scale`, once at `scale` — and
/// the two peak-heap measurements carry the logarithmic-growth assertion.
struct ScaleSpec {
    mode: &'static str,
    /// Fraction of the paper's task volume per workflow for the main run.
    scale: f64,
    /// Fraction for the smaller calibration run.
    calibration_scale: f64,
    /// Workload generation seed.
    seed: u64,
    /// Number of tenant workflows (cycling `all_workflows()`).
    tenants: usize,
    /// Seconds between consecutive instance arrivals of one tenant. Large
    /// enough that the pinned cluster keeps up with 50 tenants — the pending
    /// queue must stay bounded for the memory contract to be meaningful.
    submit_interval_seconds: f64,
    /// Arrival stagger between tenants, in seconds.
    arrival_stagger_seconds: f64,
    /// `SizeyConfig::history_window` for the per-tenant predictors.
    history_window: usize,
}

const SCALE_FULL: ScaleSpec = ScaleSpec {
    mode: "full",
    // 50 tenants cycling the six workflows produce ~113k instances per unit
    // of scale; 10x pushes the pinned run past a million task instances.
    scale: 10.0,
    calibration_scale: 1.25,
    seed: 42,
    tenants: 50,
    submit_interval_seconds: 600.0,
    arrival_stagger_seconds: 120.0,
    history_window: 256,
};

const SCALE_SMOKE: ScaleSpec = ScaleSpec {
    mode: "smoke",
    scale: 0.02,
    calibration_scale: 0.005,
    seed: 42,
    tenants: 50,
    submit_interval_seconds: 600.0,
    arrival_stagger_seconds: 120.0,
    history_window: 64,
};

/// Regression gate applied in `--smoke` mode: the replay exits non-zero when
/// the observe p50 exceeds this ceiling. The incremental learning path puts
/// the full-spec observe p50 in the single-digit microseconds; the ceiling is
/// set an order of magnitude above that so shared CI runners never trip it on
/// noise, while a reversion to the former O(history)-per-observe behaviour
/// (~290 us p50) fails loudly.
const SMOKE_OBSERVE_P50_CEILING_US: f64 = 120.0;

/// Slack factor of the bounded-RSS gate: the main run's peak heap must stay
/// within `slack * ln(n_main) / ln(n_calibration)` times the calibration
/// run's peak. A streaming pipeline whose memory is O(working set) passes
/// with a ratio near 1; any O(n) retention (materialised workload, unbounded
/// journal, stranded in-flight records) blows through the bound.
const HEAP_GROWTH_SLACK: f64 = 3.0;

// ---------------------------------------------------------------------------
// Predictor timing (replay scenario).
// ---------------------------------------------------------------------------

/// Wraps a Sizey predictor and records the wall-clock duration of every
/// `predict` and `observe` call in nanoseconds. The handles are shared with
/// the harness, which reads them back after the replay consumed the tenants;
/// on drop each wrapper also folds its predictor's full-retrain count into
/// the shared total, so the harness can report how many model-pool retrains
/// the observe tail paid for.
struct TimedPredictor {
    inner: SizeyPredictor,
    predict_ns: Arc<Mutex<Vec<u64>>>,
    observe_ns: Arc<Mutex<Vec<u64>>>,
    full_retrains: Arc<AtomicU64>,
}

impl MemoryPredictor for TimedPredictor {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        let start = Instant::now();
        let prediction = self.inner.predict(task, ctx);
        let elapsed = start.elapsed().as_nanos() as u64;
        self.predict_ns.lock().expect("timer lock").push(elapsed);
        prediction
    }

    fn observe(&mut self, record: &TaskRecord) {
        let start = Instant::now();
        self.inner.observe(record);
        let elapsed = start.elapsed().as_nanos() as u64;
        self.observe_ns.lock().expect("timer lock").push(elapsed);
    }
}

impl Drop for TimedPredictor {
    fn drop(&mut self) {
        self.full_retrains
            .fetch_add(self.inner.total_full_retrains(), Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Scenario: replay (materialised engine, predict/observe latency).
// ---------------------------------------------------------------------------

fn run_replay(smoke: bool, out_path: &Path) {
    let spec = if smoke { SMOKE } else { FULL };
    println!("=== perf_replay ({} spec) ===", spec.mode);
    println!(
        "pinned workload: {} tenants, scale {}, seed {}, first-fit, \
         submit interval {} s, stagger {} s",
        spec.tenants,
        spec.scale,
        spec.seed,
        spec.submit_interval_seconds,
        spec.arrival_stagger_seconds
    );

    let generator = GeneratorConfig::scaled(spec.scale, spec.seed);
    let workflows = all_workflows();
    let predict_ns = Arc::new(Mutex::new(Vec::new()));
    let observe_ns = Arc::new(Mutex::new(Vec::new()));
    let full_retrains = Arc::new(AtomicU64::new(0));

    let tenants: Vec<WorkflowTenant> = workflows
        .iter()
        .cycle()
        .take(spec.tenants)
        .enumerate()
        .map(|(i, wf)| {
            let instances = generate_workflow(wf, &generator);
            WorkflowTenant::new(
                format!("{}-{i}", wf.name),
                instances,
                Box::new(TimedPredictor {
                    inner: SizeyPredictor::with_defaults(),
                    predict_ns: Arc::clone(&predict_ns),
                    observe_ns: Arc::clone(&observe_ns),
                    full_retrains: Arc::clone(&full_retrains),
                }),
            )
            .with_arrival_offset(i as f64 * spec.arrival_stagger_seconds)
        })
        .collect();
    let total_instances: usize = tenants.iter().map(|t| t.instances.len()).sum();

    let sim = SimulationConfig {
        submit_interval_seconds: spec.submit_interval_seconds,
        ..SimulationConfig::default().with_policy(SchedulePolicy::FirstFit)
    };

    let start = Instant::now();
    let result = schedule_workflows(tenants, &sim);
    let wall_seconds = start.elapsed().as_secs_f64();

    let attempts = result.stats.dispatched_attempts;
    let throughput = attempts as f64 / wall_seconds;
    let predict = summarize(
        Arc::try_unwrap(predict_ns)
            .expect("replay dropped its timer handles")
            .into_inner()
            .expect("timer lock"),
    );
    let observe = summarize(
        Arc::try_unwrap(observe_ns)
            .expect("replay dropped its timer handles")
            .into_inner()
            .expect("timer lock"),
    );
    let retrains = full_retrains.load(Ordering::Relaxed);

    println!();
    println!(
        "replayed {total_instances} instances / {attempts} attempts in {wall_seconds:.3} s \
         ({throughput:.0} attempts/s)"
    );
    print_latency("predict", &predict);
    print_latency("observe", &observe);
    println!("full model-pool retrains: {retrains} (the spikes behind the observe p99/p999 tail)");

    let body = format!(
        "{{\"mode\": \"{}\", \
         \"workload\": {{\"tenants\": {}, \"scale\": {}, \"seed\": {}, \
         \"policy\": \"first-fit\", \"submit_interval_seconds\": {}, \
         \"arrival_stagger_seconds\": {}}}, \
         \"instances\": {}, \"attempts\": {}, \"wall_seconds\": {:.6}, \
         \"throughput_attempts_per_sec\": {:.3}, \
         \"makespan_seconds\": {:.3}, \"full_retrains\": {}, \
         \"predict_latency_us\": {}, \"observe_latency_us\": {}}}",
        spec.mode,
        spec.tenants,
        spec.scale,
        spec.seed,
        spec.submit_interval_seconds,
        spec.arrival_stagger_seconds,
        total_instances,
        attempts,
        wall_seconds,
        throughput,
        result.makespan_seconds,
        retrains,
        json_latency(&predict),
        json_latency(&observe),
    );
    write_bench_json(out_path, "replay", &body);

    // CI latency gate: only in smoke mode (the full sweep is a measurement,
    // not a check), and only after the JSON landed so a failing run still
    // leaves its numbers behind for diagnosis.
    if smoke {
        if observe.p50_us > SMOKE_OBSERVE_P50_CEILING_US {
            eprintln!(
                "FAIL: smoke observe p50 {:.1} us exceeds the {:.0} us regression ceiling",
                observe.p50_us, SMOKE_OBSERVE_P50_CEILING_US
            );
            std::process::exit(1);
        }
        println!(
            "observe p50 gate: {:.1} us <= {:.0} us ceiling",
            observe.p50_us, SMOKE_OBSERVE_P50_CEILING_US
        );
    }
}

// ---------------------------------------------------------------------------
// Scenario: scale (streaming engine, bounded-RSS gate).
// ---------------------------------------------------------------------------

/// One measured streaming replay at a given workload fraction.
struct ScaleRun {
    instances: usize,
    attempts: usize,
    wall_seconds: f64,
    makespan_seconds: f64,
    peak_pending_tasks: usize,
    peak_inflight_instances: usize,
    peak_heap_bytes: usize,
}

fn run_scale_once(spec: &ScaleSpec, scale: f64) -> ScaleRun {
    let generator = GeneratorConfig::scaled(scale, spec.seed);
    let workflows = all_workflows();
    heap_reset_peak();
    let tenants: Vec<StreamingTenant> = workflows
        .iter()
        .cycle()
        .take(spec.tenants)
        .enumerate()
        .map(|(i, wf)| {
            let config = SizeyConfig::default().with_history_window(spec.history_window);
            StreamingTenant::new(
                format!("{}-{i}", wf.name),
                stream_workflow(wf, &generator),
                Box::new(SizeyPredictor::new(config)),
            )
            .with_arrival_offset(i as f64 * spec.arrival_stagger_seconds)
        })
        .collect();

    let sim = SimulationConfig {
        submit_interval_seconds: spec.submit_interval_seconds,
        ..SimulationConfig::default().with_policy(SchedulePolicy::FirstFit)
    };

    let start = Instant::now();
    let result = schedule_workflows_streaming(tenants, &sim, &mut NullSink, &mut NullRecordSink);
    let wall_seconds = start.elapsed().as_secs_f64();
    let peak_heap_bytes = heap_peak_bytes();

    let instances: usize = result.reports.iter().map(|r| r.aggregates.instances).sum();
    assert_eq!(
        result.leaked_inflight_instances, 0,
        "streaming replay stranded in-flight instances"
    );
    ScaleRun {
        instances,
        attempts: result.stats.dispatched_attempts,
        wall_seconds,
        makespan_seconds: result.makespan_seconds,
        peak_pending_tasks: result.stats.peak_pending_tasks,
        peak_inflight_instances: result.peak_inflight_instances,
        peak_heap_bytes,
    }
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn run_scale(smoke: bool, out_path: &Path) {
    let spec = if smoke { SCALE_SMOKE } else { SCALE_FULL };
    println!("=== perf_replay --scale ({} spec) ===", spec.mode);
    println!(
        "pinned workload: {} tenants, scale {} (calibration {}), seed {}, first-fit, \
         submit interval {} s, stagger {} s, history window {}",
        spec.tenants,
        spec.scale,
        spec.calibration_scale,
        spec.seed,
        spec.submit_interval_seconds,
        spec.arrival_stagger_seconds,
        spec.history_window
    );

    let calibration = run_scale_once(&spec, spec.calibration_scale);
    println!(
        "calibration: {} instances / {} attempts in {:.3} s, peak heap {:.1} MB",
        calibration.instances,
        calibration.attempts,
        calibration.wall_seconds,
        mb(calibration.peak_heap_bytes)
    );

    let main_run = run_scale_once(&spec, spec.scale);
    let throughput = main_run.attempts as f64 / main_run.wall_seconds;
    println!(
        "streamed {} instances / {} attempts in {:.3} s ({throughput:.0} attempts/s), \
         peak heap {:.1} MB, peak pending {}, peak in-flight {}",
        main_run.instances,
        main_run.attempts,
        main_run.wall_seconds,
        mb(main_run.peak_heap_bytes),
        main_run.peak_pending_tasks,
        main_run.peak_inflight_instances,
    );

    // The bounded-memory contract: peak heap may grow at most
    // logarithmically with instance count (with slack). Guard the ratio
    // denominator — a degenerate calibration run would make the bound
    // meaningless rather than strict.
    assert!(
        calibration.instances > 1 && main_run.instances > calibration.instances,
        "scale spec must replay strictly more instances than its calibration run"
    );
    let growth = main_run.peak_heap_bytes as f64 / (calibration.peak_heap_bytes.max(1)) as f64;
    let bound =
        HEAP_GROWTH_SLACK * (main_run.instances as f64).ln() / (calibration.instances as f64).ln();
    let passed = growth <= bound;

    let body = format!(
        "{{\"mode\": \"{}\", \
         \"workload\": {{\"tenants\": {}, \"scale\": {}, \"calibration_scale\": {}, \
         \"seed\": {}, \"policy\": \"first-fit\", \"submit_interval_seconds\": {}, \
         \"arrival_stagger_seconds\": {}, \"history_window\": {}}}, \
         \"instances\": {}, \"attempts\": {}, \"wall_seconds\": {:.6}, \
         \"throughput_attempts_per_sec\": {:.3}, \"makespan_seconds\": {:.3}, \
         \"peak_pending_tasks\": {}, \"peak_inflight_instances\": {}, \
         \"peak_heap_bytes\": {}, \
         \"calibration\": {{\"instances\": {}, \"peak_heap_bytes\": {}}}, \
         \"heap_growth_ratio\": {:.4}, \"heap_growth_bound\": {:.4}}}",
        spec.mode,
        spec.tenants,
        spec.scale,
        spec.calibration_scale,
        spec.seed,
        spec.submit_interval_seconds,
        spec.arrival_stagger_seconds,
        spec.history_window,
        main_run.instances,
        main_run.attempts,
        main_run.wall_seconds,
        throughput,
        main_run.makespan_seconds,
        main_run.peak_pending_tasks,
        main_run.peak_inflight_instances,
        main_run.peak_heap_bytes,
        calibration.instances,
        calibration.peak_heap_bytes,
        growth,
        bound,
    );
    write_bench_json(out_path, "scale", &body);

    // The gate itself, after the JSON landed so a failing run still leaves
    // its numbers behind for diagnosis.
    if !passed {
        eprintln!(
            "FAIL: peak heap grew {growth:.2}x from {} to {} instances, \
             exceeding the logarithmic bound {bound:.2}x",
            calibration.instances, main_run.instances
        );
        std::process::exit(1);
    }
    println!(
        "bounded-RSS gate: peak heap {:.1} MB at {} instances vs {:.1} MB at {} \
         (growth {growth:.2}x <= bound {bound:.2}x)",
        mb(main_run.peak_heap_bytes),
        main_run.instances,
        mb(calibration.peak_heap_bytes),
        calibration.instances,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = args.iter().any(|a| a == "--scale");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/bench/../../ == repository root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("BENCH_replay.json")
        });

    if scale {
        run_scale(smoke, &out_path);
    } else {
        run_replay(smoke, &out_path);
    }
}
