//! # sizey-workflows
//!
//! Workflow model and calibrated synthetic workload generators for the six
//! nf-core-style workflows of the Sizey evaluation (eager, methylseq,
//! chipseq, rnaseq, mag, iwd).
//!
//! The paper evaluates on measured traces of real workflow executions. Those
//! traces are not publicly available, so this crate generates synthetic
//! workloads calibrated to every statistic the paper publishes about them
//! (Table I inventory, Fig. 1 memory distributions, Fig. 2 input/memory
//! relations, Fig. 7 resource spreads, the Prokka instance count of Fig. 12).
//! See `DESIGN.md` for the substitution rationale.
//!
//! * [`model`] — workflow / task type / task instance types,
//! * [`memfn`] — input, memory-response and runtime models,
//! * [`profiles`] — the six calibrated workflow profiles,
//! * [`generator`] — deterministic workload generation (scalable volume),
//! * [`stats`] — aggregation helpers used by the figure harnesses,
//! * [`sampling`] — distribution sampling primitives.
//!
//! ## Example
//!
//! ```
//! use sizey_workflows::generator::{generate_workflow, GeneratorConfig};
//! use sizey_workflows::profiles;
//!
//! let spec = profiles::rnaseq();
//! let instances = generate_workflow(&spec, &GeneratorConfig::scaled(0.05, 1));
//! assert!(!instances.is_empty());
//! // Instances arrive in submission order with concrete input sizes.
//! assert!(instances.iter().all(|i| i.input_bytes > 0.0));
//! ```

#![warn(missing_docs)]

pub mod generator;
pub mod memfn;
pub mod model;
pub mod profiles;
pub mod sampling;
pub mod stats;

pub use generator::{
    generate_all, generate_workflow, stream_workflow, GeneratorConfig, WorkflowStream,
};
pub use memfn::{DriftSpec, InputModel, MemoryModel, RuntimeModel};
pub use model::{ResourceFootprint, TaskInstance, TaskTypeSpec, WorkflowSpec};
pub use profiles::{
    all_workflows, workflow_by_name, MACHINE_NAME, NODE_COUNT, NODE_MEMORY_BYTES, WORKFLOW_NAMES,
};
pub use stats::{
    inventory, peak_memory_by_task_type, workflow_resource_profile, Distribution, InventoryRow,
    WorkflowResourceProfile,
};
