//! Property tests for the event-driven scheduler invariants.
//!
//! Three families of properties, for any workload, cluster shape and policy:
//!
//! 1. **Capacity safety** — per-node `allocated_bytes ≤ memory_bytes` and
//!    `used_slots ≤ slots` at every event. Allocation only changes at
//!    placements, so the per-node high-water marks recorded by the cluster
//!    witness every instant of the simulation.
//! 2. **Liveness** — every submitted task eventually finishes or exhausts
//!    its retry budget; nothing is lost in the queue or double-counted.
//! 3. **Equivalence** — under unbounded capacity the scheduler-backed replay
//!    produces exactly the wastage of the legacy occupancy model (the
//!    pre-scheduler Fig. 8 path).

use proptest::prelude::*;
use sizey_provenance::{MachineId, TaskRecord, TaskTypeId};
use sizey_sim::{
    replay_workflow, replay_workflow_occupancy, schedule_workflows, AttemptContext,
    MemoryPredictor, Prediction, PresetPredictor, SchedulePolicy, SimulationConfig, TaskSubmission,
    WorkflowTenant,
};
use sizey_workflows::TaskInstance;

fn instance(seq: u64, peak_gb: f64, runtime: f64, preset_gb: f64) -> TaskInstance {
    TaskInstance {
        workflow: "wf".into(),
        task_type: TaskTypeId::new(format!("t{}", seq % 3)),
        machine: MachineId::new("m"),
        sequence: seq,
        input_bytes: 1e9,
        true_peak_bytes: peak_gb * 1e9,
        base_runtime_seconds: runtime,
        preset_memory_bytes: preset_gb * 1e9,
        cpu_utilization_pct: 100.0,
        io_read_bytes: 1e9,
        io_write_bytes: 1e9,
    }
}

/// (peak GB, runtime s, preset GB) tuples — peaks may exceed presets (forcing
/// retries) and node capacity (forcing exhaustion).
fn workload_strategy() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec((0.1f64..24.0, 1.0f64..500.0, 0.1f64..16.0), 1..40)
}

fn build(tasks: &[(f64, f64, f64)]) -> Vec<TaskInstance> {
    tasks
        .iter()
        .enumerate()
        .map(|(i, &(peak, runtime, preset))| instance(i as u64, peak, runtime, preset))
        .collect()
}

fn policy_from(idx: usize) -> SchedulePolicy {
    SchedulePolicy::ALL[idx % SchedulePolicy::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Invariant 1: per-node capacity is respected at every event, for every
    // policy, on a small cluster where contention is guaranteed.
    #[test]
    fn node_capacity_is_never_exceeded(
        tasks in workload_strategy(),
        policy_idx in 0usize..3,
        node_count in 1usize..4,
        slots in 1usize..5,
    ) {
        let config = SimulationConfig::default()
            .with_nodes(node_count, 16e9, slots)
            .with_policy(policy_from(policy_idx));
        let result = schedule_workflows(
            vec![WorkflowTenant::new("wf", build(&tasks), Box::new(PresetPredictor))],
            &config,
        );
        prop_assert_eq!(result.stats.forced_placements, 0,
            "clamped allocations must always be schedulable");
        for node in &result.nodes {
            prop_assert!(
                node.peak_allocated_bytes <= node.memory_bytes * (1.0 + 1e-9),
                "node {} peaked at {} of {} bytes",
                node.id, node.peak_allocated_bytes, node.memory_bytes
            );
            prop_assert!(node.peak_used_slots <= node.slots);
            // End state: everything released.
            prop_assert!(node.allocated_bytes.abs() < 1.0);
            prop_assert_eq!(node.used_slots, 0);
        }
    }

    // Invariant 2: every submitted task finishes or exhausts its retries.
    #[test]
    fn every_task_finishes_or_exhausts_retries(
        tasks in workload_strategy(),
        policy_idx in 0usize..3,
    ) {
        let config = SimulationConfig::default()
            .with_nodes(2, 16e9, 3)
            .with_policy(policy_from(policy_idx));
        let instances = build(&tasks);
        let n = instances.len();
        let result = schedule_workflows(
            vec![WorkflowTenant::new("wf", instances, Box::new(PresetPredictor))],
            &config,
        );
        let report = &result.reports[0];
        prop_assert_eq!(report.instances, n);
        prop_assert_eq!(
            report.finished_instances() + report.unfinished_instances,
            n
        );
        // One success per finished instance, max_attempts failures per
        // unfinished one, nothing else.
        let successes = report.events.iter().filter(|e| e.success).count();
        prop_assert_eq!(successes, report.finished_instances());
        prop_assert!(report.events.len() <= n * config.max_attempts as usize);
        for e in &report.events {
            prop_assert!(e.attempt < config.max_attempts);
            prop_assert!(e.queue_delay_seconds >= 0.0);
        }
        // An unfinished instance burned its whole budget.
        let failures = report.total_failures();
        prop_assert!(failures >= report.unfinished_instances * config.max_attempts as usize);
    }

    // Invariant 2b, synchronous engine: the FIFO replay conserves instances
    // and never dispatches below the queue-delay floor.
    #[test]
    fn sync_replay_conserves_instances(
        tasks in workload_strategy(),
        policy_idx in 0usize..3,
    ) {
        let config = SimulationConfig::default()
            .with_nodes(2, 16e9, 3)
            .with_policy(policy_from(policy_idx));
        let instances = build(&tasks);
        let mut p = PresetPredictor;
        let report = replay_workflow("wf", &instances, &mut p, &config);
        prop_assert_eq!(report.instances, instances.len());
        let first_attempts = report.events.iter().filter(|e| e.attempt == 0).count();
        prop_assert_eq!(first_attempts, instances.len());
        prop_assert!(report.total_queue_delay_seconds() >= 0.0);
        prop_assert!(report.makespan_seconds >= 0.0);
    }

    // Invariant 3: with capacity out of the picture the scheduler must not
    // change a single decision — wastage, failures and event sequences are
    // identical to the legacy occupancy model.
    #[test]
    fn unbounded_capacity_reproduces_the_occupancy_model(
        tasks in workload_strategy(),
    ) {
        let config = SimulationConfig::unbounded();
        let instances = build(&tasks);
        let mut a = PresetPredictor;
        let mut b = PresetPredictor;
        let new = replay_workflow("wf", &instances, &mut a, &config);
        let old = replay_workflow_occupancy("wf", &instances, &mut b, &config);
        prop_assert_eq!(new.events.len(), old.events.len());
        prop_assert_eq!(new.total_failures(), old.total_failures());
        prop_assert_eq!(new.unfinished_instances, old.unfinished_instances);
        // Bit-identical, not approximately equal.
        prop_assert_eq!(new.total_wastage_gbh(), old.total_wastage_gbh());
        for (e_new, e_old) in new.events.iter().zip(&old.events) {
            prop_assert_eq!(e_new.allocated_bytes, e_old.allocated_bytes);
            prop_assert_eq!(e_new.wastage_gbh, e_old.wastage_gbh);
            prop_assert_eq!(e_new.success, e_old.success);
        }
    }

    // Finite capacity can only add waiting: makespan under a constrained
    // cluster is never below the unbounded makespan of the same decisions.
    #[test]
    fn finite_capacity_never_shrinks_makespan(
        tasks in workload_strategy(),
        policy_idx in 0usize..3,
    ) {
        let instances = build(&tasks);
        let finite_config = SimulationConfig::default()
            .with_nodes(1, 16e9, 2)
            .with_policy(policy_from(policy_idx));
        let mut a = PresetPredictor;
        let finite = replay_workflow("wf", &instances, &mut a, &finite_config);
        let mut b = PresetPredictor;
        let unbounded = replay_workflow("wf", &instances, &mut b, &SimulationConfig::unbounded());
        prop_assert!(finite.makespan_seconds >= unbounded.makespan_seconds - 1e-9);
    }
}

/// A doubling predictor whose base sits near the node-capacity boundary —
/// the regression case for retry clamping.
struct DoublingFrom {
    base: f64,
}

impl MemoryPredictor for DoublingFrom {
    fn name(&self) -> String {
        "doubling".into()
    }
    fn predict(&self, _task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        Prediction::simple(self.base * 2.0_f64.powi(ctx.attempt as i32))
    }
    fn observe(&mut self, _record: &TaskRecord) {}
}

// Satellite regression: retry allocations at the clamp boundary. A 96 GB
// base doubles to 192 GB on the first retry, which must clamp to the 128 GB
// node — and stay clamped (monotone in attempt), never exceeding the largest
// node.
#[test]
fn retry_allocations_clamp_at_the_largest_node_and_stay_monotone() {
    let config = SimulationConfig {
        max_attempts: 5,
        ..SimulationConfig::default()
    };
    // Impossible task: every attempt fails, exercising the whole chain.
    let inst = instance(0, 200.0, 60.0, 1.0);
    let mut p = DoublingFrom { base: 96e9 };
    let report = replay_workflow("wf", &[inst], &mut p, &config);
    assert_eq!(report.events.len(), 5);
    let allocs: Vec<f64> = report.events.iter().map(|e| e.allocated_bytes).collect();
    assert_eq!(allocs[0], 96e9);
    assert_eq!(allocs[1], 128e9, "192 GB must clamp to the node capacity");
    let largest = config.largest_node_memory_bytes();
    for pair in allocs.windows(2) {
        assert!(pair[1] >= pair[0], "retry allocation shrank: {allocs:?}");
    }
    for a in &allocs {
        assert!(*a <= largest, "allocation exceeded the largest node");
    }
}

// The same boundary through the event-driven engine.
#[test]
fn event_engine_clamps_retries_to_the_largest_node() {
    let config = SimulationConfig {
        max_attempts: 4,
        ..SimulationConfig::default()
    };
    let result = schedule_workflows(
        vec![WorkflowTenant::new(
            "wf",
            vec![instance(0, 200.0, 60.0, 1.0)],
            Box::new(DoublingFrom { base: 100e9 }),
        )],
        &config,
    );
    let allocs: Vec<f64> = result.reports[0]
        .events
        .iter()
        .map(|e| e.allocated_bytes)
        .collect();
    assert_eq!(allocs.len(), 4);
    for pair in allocs.windows(2) {
        assert!(pair[1] >= pair[0]);
    }
    assert!(allocs.iter().all(|&a| a <= 128e9));
    assert_eq!(allocs[1], 128e9);
    assert_eq!(result.stats.forced_placements, 0);
}
