//! The predictor interface every memory-sizing method implements.
//!
//! Sizey, the four state-of-the-art baselines and the workflow presets all
//! plug into the replay engine through [`MemoryPredictor`]: the engine asks
//! for an allocation when a task is submitted (and again for every retry
//! after an out-of-memory failure), and feeds back a provenance record when
//! an attempt finishes.

use sizey_provenance::{MachineId, TaskRecord, TaskTypeId};

/// The information a sizing method sees when a task is submitted — exactly
/// what a resource manager knows before execution: identity, input size and
/// the workflow developer's requested memory.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSubmission {
    /// Workflow the task belongs to.
    pub workflow: String,
    /// Abstract task type.
    pub task_type: TaskTypeId,
    /// Machine configuration the task will run on.
    pub machine: MachineId,
    /// Submission order within the workflow execution.
    pub sequence: u64,
    /// Input size in bytes.
    pub input_bytes: f64,
    /// The user-provided memory request for this task type, in bytes.
    pub preset_memory_bytes: f64,
}

impl TaskSubmission {
    /// Feature vector exposed to learning-based predictors.
    pub fn features(&self) -> Vec<f64> {
        vec![self.input_bytes]
    }
}

/// A sizing decision for one attempt of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The memory the task should be allocated, in bytes.
    pub allocation_bytes: f64,
    /// The raw model estimate before any safety offset was applied (used by
    /// the Fig. 12 prediction-error analysis). `None` when the method has no
    /// notion of a raw estimate (e.g. presets).
    pub raw_estimate_bytes: Option<f64>,
    /// Name of the model (class) that produced the estimate, when the method
    /// selects among several (used by the Fig. 11 analysis).
    pub selected_model: Option<String>,
}

impl Prediction {
    /// Convenience constructor for methods without raw-estimate/model
    /// telemetry.
    pub fn simple(allocation_bytes: f64) -> Self {
        Prediction {
            allocation_bytes,
            raw_estimate_bytes: None,
            selected_model: None,
        }
    }
}

/// A memory sizing method that can be replayed through the online simulator.
pub trait MemoryPredictor: Send {
    /// Human-readable method name (used in result tables).
    fn name(&self) -> String;

    /// Produces the allocation for an attempt of a task. `attempt` is 0 for
    /// the first submission and increments after every out-of-memory failure
    /// of the same task instance; methods implement their own failure
    /// handling (doubling, node maximum, ...) based on it.
    fn predict(&mut self, task: &TaskSubmission, attempt: u32) -> Prediction;

    /// Called after every finished attempt (successful or failed) with the
    /// monitoring record; online methods update their models here.
    fn observe(&mut self, record: &TaskRecord);
}

/// A trivial predictor that always allocates the user preset — the
/// `Workflow-Presets` sanity baseline of the paper. It lives here (rather
/// than in the baselines crate) because the simulator's own tests need a
/// predictor.
#[derive(Debug, Default, Clone)]
pub struct PresetPredictor;

impl MemoryPredictor for PresetPredictor {
    fn name(&self) -> String {
        "Workflow-Presets".to_string()
    }

    fn predict(&mut self, task: &TaskSubmission, attempt: u32) -> Prediction {
        // Presets are already conservative; on the (rare) failure double.
        let factor = 2.0_f64.powi(attempt as i32);
        Prediction::simple(task.preset_memory_bytes * factor)
    }

    fn observe(&mut self, _record: &TaskRecord) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission() -> TaskSubmission {
        TaskSubmission {
            workflow: "rnaseq".into(),
            task_type: TaskTypeId::new("FastQC"),
            machine: MachineId::new("node"),
            sequence: 5,
            input_bytes: 2e9,
            preset_memory_bytes: 8e9,
        }
    }

    #[test]
    fn submission_features_are_input_size() {
        assert_eq!(submission().features(), vec![2e9]);
    }

    #[test]
    fn simple_prediction_has_no_telemetry() {
        let p = Prediction::simple(4e9);
        assert_eq!(p.allocation_bytes, 4e9);
        assert!(p.raw_estimate_bytes.is_none());
        assert!(p.selected_model.is_none());
    }

    #[test]
    fn preset_predictor_allocates_preset_and_doubles_on_retry() {
        let mut p = PresetPredictor;
        let task = submission();
        assert_eq!(p.predict(&task, 0).allocation_bytes, 8e9);
        assert_eq!(p.predict(&task, 1).allocation_bytes, 16e9);
        assert_eq!(p.predict(&task, 2).allocation_bytes, 32e9);
        assert_eq!(p.name(), "Workflow-Presets");
    }
}
