//! Random sampling helpers (uniform, log-uniform, normal, log-normal).
//!
//! The workload generators need a handful of standard distributions. `rand`
//! only provides uniform sampling out of the box, so the Gaussian variants
//! are implemented here via the Box-Muller transform; that keeps the
//! dependency list to the approved offline crates.

use rand::Rng;

/// Samples a standard normal variate using the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Samples a normal variate truncated from below at `min`.
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64, min: f64) -> f64 {
    normal(rng, mean, std_dev).max(min)
}

/// Samples a log-normal variate parameterised by the mean and coefficient of
/// variation of the *multiplicative* noise: the result has median 1.0 when
/// `cv` is interpreted as the sigma of the underlying normal.
pub fn multiplicative_noise<R: Rng + ?Sized>(rng: &mut R, cv: f64) -> f64 {
    if cv <= 0.0 {
        return 1.0;
    }
    (standard_normal(rng) * cv).exp()
}

/// Samples uniformly from `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    rng.gen_range(lo..hi)
}

/// Samples log-uniformly from `[lo, hi)` — useful for input sizes spanning
/// orders of magnitude.
pub fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if hi <= lo || lo <= 0.0 {
        return lo.max(0.0);
    }
    let (llo, lhi) = (lo.ln(), hi.ln());
    uniform(rng, llo, lhi).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 100.0, 10.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 100.0).abs() < 0.5);
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(truncated_normal(&mut rng, 0.0, 5.0, 1.0) >= 1.0);
        }
    }

    #[test]
    fn multiplicative_noise_is_positive_and_centred() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| multiplicative_noise(&mut rng, 0.1))
            .collect();
        assert!(samples.iter().all(|&s| s > 0.0));
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((median - 1.0).abs() < 0.02, "median = {median}");
        assert_eq!(multiplicative_noise(&mut rng, 0.0), 1.0);
    }

    #[test]
    fn uniform_stays_in_range_and_handles_degenerate() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = uniform(&mut rng, 2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
        assert_eq!(uniform(&mut rng, 5.0, 5.0), 5.0);
        assert_eq!(uniform(&mut rng, 5.0, 4.0), 5.0);
    }

    #[test]
    fn log_uniform_spans_orders_of_magnitude() {
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<f64> = (0..5000).map(|_| log_uniform(&mut rng, 1e6, 1e9)).collect();
        assert!(samples.iter().all(|&s| (1e6..1e9).contains(&s)));
        // Roughly a third of the mass should fall in each decade.
        let below_1e7 = samples.iter().filter(|&&s| s < 1e7).count() as f64 / 5000.0;
        assert!(
            (below_1e7 - 1.0 / 3.0).abs() < 0.06,
            "fraction = {below_1e7}"
        );
        assert_eq!(log_uniform(&mut rng, 0.0, 10.0), 0.0);
    }
}
