//! # sizey-sim
//!
//! Online execution simulator substrate for the Sizey reproduction.
//!
//! The paper evaluates memory sizing methods by replaying measured workflow
//! traces through a simulated online environment with strict memory limits
//! and a configurable time-to-failure (Section III-A). This crate is that
//! environment:
//!
//! * [`predictor::MemoryPredictor`] — the interface every sizing method
//!   (Sizey and all baselines) implements,
//! * [`config::SimulationConfig`] — time-to-failure, attempt budget and the
//!   8-node / 128 GB cluster dimensions,
//! * [`cluster`] — the node capacity / occupancy model,
//! * [`replay`] — the replay engine that sizes, executes, fails, retries and
//!   feeds provenance records back for online learning,
//! * [`accounting`] — wastage (GBh), failure, runtime, model-selection and
//!   prediction-error aggregation used by every figure of the evaluation.
//!
//! ## Example
//!
//! ```
//! use sizey_sim::{replay_workflow, PresetPredictor, SimulationConfig};
//! use sizey_workflows::{generate_workflow, GeneratorConfig, profiles};
//!
//! let spec = profiles::iwd();
//! let instances = generate_workflow(&spec, &GeneratorConfig::scaled(0.02, 1));
//! let mut presets = PresetPredictor;
//! let report = replay_workflow("iwd", &instances, &mut presets, &SimulationConfig::default());
//! assert!(report.total_wastage_gbh() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod accounting;
pub mod cluster;
pub mod config;
pub mod predictor;
pub mod replay;

pub use accounting::{aggregate_method, AttemptEvent, MethodAggregate, ReplayReport};
pub use cluster::{Cluster, Node, Placement};
pub use config::SimulationConfig;
pub use predictor::{MemoryPredictor, Prediction, PresetPredictor, TaskSubmission};
pub use replay::{replay_with, replay_workflow, MIN_ALLOCATION_BYTES};
