//! The config-driven method registry.
//!
//! [`MethodSpec`] is the single description of "a sizing method with its
//! hyper-parameters" used everywhere in the harness: the sweep runner, the
//! figure/table binaries, the ablation drivers and the spec-driven
//! [`experiment`](crate::experiment) entry point all dispatch through it
//! instead of bare strings or ad-hoc constructors. A spec
//!
//! * [`build`](MethodSpec::build)s a fresh predictor (boxed behind the
//!   checkpointable predictor interface, which upcasts to
//!   [`MemoryPredictor`](sizey_sim::MemoryPredictor) wherever a plain
//!   predictor is expected),
//! * [`restore`](MethodSpec::restore)s a predictor from a
//!   [`PredictorState`] checkpoint (warm starts, recovery),
//! * round-trips through the TOML spec format
//!   ([`from_table`](MethodSpec::from_table) /
//!   [`to_toml`](MethodSpec::to_toml)),
//! * carries stable identifiers: [`name`](MethodSpec::name) is the paper's
//!   display name, [`id`](MethodSpec::id) the kebab-case kind used in spec
//!   files and checkpoint filenames, and
//!   [`figure_order`](MethodSpec::figure_order) the canonical comparison
//!   order of the paper's figures.
//!
//! Two specs are equal iff they would build identically configured
//! predictors, so result rows keyed by `MethodSpec` compare and aggregate
//! structurally — there is no string name to go stale.

use crate::toml_lite::{write as toml_write, TomlTable, TomlValue};
use sizey_baselines::{
    TovarPpm, TovarPpmConfig, WittLr, WittLrConfig, WittPercentile, WittPercentileConfig,
    WittWastage, WittWastageConfig,
};
use sizey_core::{
    DriftPolicy, GatingStrategy, OffsetMode, OnlineMode, SizeyConfig, SizeyPredictor,
};
use sizey_ml::model::ModelClass;
use sizey_sim::lifecycle::{CheckpointPredictor, PredictorState, StateError};
use sizey_sim::PresetPredictor;

/// A fully configured sizing method: which algorithm, with which
/// hyper-parameters. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub enum MethodSpec {
    /// The Sizey method with an explicit configuration.
    Sizey(SizeyConfig),
    /// Witt et al. low-wastage regression.
    WittWastage(WittWastageConfig),
    /// Witt et al. linear regression with offset.
    WittLr(WittLrConfig),
    /// Tovar et al. peak-probability sizing.
    TovarPpm(TovarPpmConfig),
    /// Witt et al. percentile predictor.
    WittPercentile(WittPercentileConfig),
    /// The workflow developers' memory requests.
    Preset,
}

impl MethodSpec {
    /// The Sizey method with the paper's default configuration.
    pub fn sizey_defaults() -> Self {
        MethodSpec::Sizey(SizeyConfig::default())
    }

    /// The six evaluation methods with their default configurations, in the
    /// order used by the paper's figures.
    pub fn default_suite() -> Vec<MethodSpec> {
        vec![
            MethodSpec::Sizey(SizeyConfig::default()),
            MethodSpec::WittWastage(WittWastageConfig::default()),
            MethodSpec::WittLr(WittLrConfig::default()),
            MethodSpec::TovarPpm(TovarPpmConfig::default()),
            MethodSpec::WittPercentile(WittPercentileConfig::default()),
            MethodSpec::Preset,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            MethodSpec::Sizey(_) => "Sizey",
            MethodSpec::WittWastage(_) => "Witt-Wastage",
            MethodSpec::WittLr(_) => "Witt-LR",
            MethodSpec::TovarPpm(_) => "Tovar-PPM",
            MethodSpec::WittPercentile(_) => "Witt-Percentile",
            MethodSpec::Preset => "Workflow-Presets",
        }
    }

    /// The kebab-case kind identifier used in spec files and checkpoint
    /// filenames.
    pub fn id(&self) -> &'static str {
        match self {
            MethodSpec::Sizey(_) => "sizey",
            MethodSpec::WittWastage(_) => "witt-wastage",
            MethodSpec::WittLr(_) => "witt-lr",
            MethodSpec::TovarPpm(_) => "tovar-ppm",
            MethodSpec::WittPercentile(_) => "witt-percentile",
            MethodSpec::Preset => "preset",
        }
    }

    /// Position in the paper's canonical figure order (Sizey first,
    /// Workflow-Presets last).
    pub fn figure_order(&self) -> usize {
        match self {
            MethodSpec::Sizey(_) => 0,
            MethodSpec::WittWastage(_) => 1,
            MethodSpec::WittLr(_) => 2,
            MethodSpec::TovarPpm(_) => 3,
            MethodSpec::WittPercentile(_) => 4,
            MethodSpec::Preset => 5,
        }
    }

    /// A total, deterministic ordering key: figure order first, then the
    /// spec's full parameterisation as a tiebreak (so two Sizey variants in
    /// one sweep sort stably).
    pub fn sort_key(&self) -> (usize, String) {
        (self.figure_order(), format!("{self:?}"))
    }

    /// Builds a fresh predictor for this spec. The box is checkpointable;
    /// it coerces to `Box<dyn MemoryPredictor>` (or `&mut dyn
    /// MemoryPredictor`) wherever the replay engines expect one.
    pub fn build(&self) -> Box<dyn CheckpointPredictor> {
        match self {
            MethodSpec::Sizey(config) => Box::new(SizeyPredictor::new(config.clone())),
            MethodSpec::WittWastage(config) => Box::new(WittWastage::with_config(config.clone())),
            MethodSpec::WittLr(config) => Box::new(WittLr::with_config(*config)),
            MethodSpec::TovarPpm(config) => Box::new(TovarPpm::with_config(*config)),
            MethodSpec::WittPercentile(config) => Box::new(WittPercentile::with_config(*config)),
            MethodSpec::Preset => Box::new(PresetPredictor),
        }
    }

    /// Builds the concrete [`SizeyPredictor`] when this spec is the Sizey
    /// method — for harnesses that need Sizey-specific telemetry (per-step
    /// training times, offset-selection tallies) beyond the predictor
    /// traits. Returns `None` for every other method.
    pub fn build_sizey(&self) -> Option<SizeyPredictor> {
        match self {
            MethodSpec::Sizey(config) => Some(SizeyPredictor::new(config.clone())),
            _ => None,
        }
    }

    /// Builds a predictor and restores a checkpointed state into it — the
    /// warm-start path. The state must have been snapshotted from a
    /// predictor built by an equal spec; the restored predictor is then
    /// bit-identical to the one that was snapshotted.
    pub fn restore(
        &self,
        state: &PredictorState,
    ) -> Result<Box<dyn CheckpointPredictor>, StateError> {
        let mut predictor = self.build();
        predictor.restore(state)?;
        Ok(predictor)
    }
}

/// Errors produced while reading or validating an experiment spec.
#[derive(Debug)]
pub enum SpecError {
    /// The TOML layer failed.
    Toml(crate::toml_lite::TomlError),
    /// A `[[method]]` table names an unknown kind.
    UnknownMethod {
        /// The offending kind string.
        kind: String,
        /// 1-based line of the method table header.
        line: usize,
    },
    /// A table contains a key the spec format does not know (typo guard).
    UnknownKey {
        /// Which table the key appeared in.
        context: String,
        /// The offending key.
        key: String,
    },
    /// A key's value is malformed (wrong type, out of range, unknown name).
    InvalidValue {
        /// Which table the key appeared in.
        context: String,
        /// The offending key.
        key: String,
        /// What was wrong with it.
        message: String,
    },
    /// The spec references a workflow profile the workspace does not have.
    UnknownWorkflow {
        /// The offending profile name.
        name: String,
    },
    /// The spec references an unknown scheduling policy.
    UnknownPolicy {
        /// The offending policy name.
        name: String,
    },
    /// A list that must be non-empty (methods, profiles, seeds, policies)
    /// is empty, or the scale is non-positive.
    Empty {
        /// Which part of the spec is degenerate.
        what: String,
    },
    /// Reading the spec file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Toml(e) => write!(f, "{e}"),
            SpecError::UnknownMethod { kind, line } => {
                write!(f, "unknown method kind {kind:?} at line {line}")
            }
            SpecError::UnknownKey { context, key } => {
                write!(f, "unknown key {key:?} in {context}")
            }
            SpecError::InvalidValue {
                context,
                key,
                message,
            } => write!(f, "invalid value for {key:?} in {context}: {message}"),
            SpecError::UnknownWorkflow { name } => write!(
                f,
                "unknown workflow profile {name:?} (known: {})",
                sizey_workflows::WORKFLOW_NAMES.join(", ")
            ),
            SpecError::UnknownPolicy { name } => write!(f, "unknown scheduling policy {name:?}"),
            SpecError::Empty { what } => write!(f, "spec has an empty/degenerate {what}"),
            SpecError::Io(e) => write!(f, "spec I/O error: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<crate::toml_lite::TomlError> for SpecError {
    fn from(e: crate::toml_lite::TomlError) -> Self {
        SpecError::Toml(e)
    }
}

pub(crate) fn invalid(context: &str, key: &str, message: impl Into<String>) -> SpecError {
    SpecError::InvalidValue {
        context: context.to_string(),
        key: key.to_string(),
        message: message.into(),
    }
}

pub(crate) fn need_float(context: &str, key: &str, value: &TomlValue) -> Result<f64, SpecError> {
    value.as_float().ok_or_else(|| {
        invalid(
            context,
            key,
            format!("expected a number, found {}", value.type_name()),
        )
    })
}

pub(crate) fn need_usize(context: &str, key: &str, value: &TomlValue) -> Result<usize, SpecError> {
    value
        .as_int()
        .filter(|i| *i >= 0)
        .map(|i| i as usize)
        .ok_or_else(|| {
            invalid(
                context,
                key,
                format!(
                    "expected a non-negative integer, found {}",
                    value.type_name()
                ),
            )
        })
}

pub(crate) fn need_str<'v>(
    context: &str,
    key: &str,
    value: &'v TomlValue,
) -> Result<&'v str, SpecError> {
    value.as_str().ok_or_else(|| {
        invalid(
            context,
            key,
            format!("expected a string, found {}", value.type_name()),
        )
    })
}

pub(crate) fn need_bool(context: &str, key: &str, value: &TomlValue) -> Result<bool, SpecError> {
    value.as_bool().ok_or_else(|| {
        invalid(
            context,
            key,
            format!("expected a boolean, found {}", value.type_name()),
        )
    })
}

impl MethodSpec {
    /// Parses one `[[method]]` table. The `kind` key selects the variant;
    /// every other key overrides one field of that variant's default
    /// configuration. Unknown kinds and keys are errors, not silently
    /// ignored defaults.
    pub fn from_table(table: &TomlTable) -> Result<Self, SpecError> {
        let kind = match table.get("kind") {
            Some(v) => need_str("[[method]]", "kind", v)?,
            None => {
                return Err(invalid(
                    "[[method]]",
                    "kind",
                    "missing (every method table needs one)",
                ))
            }
        };
        match kind {
            "sizey" => Ok(MethodSpec::Sizey(sizey_config_from_table(table)?)),
            "witt-wastage" => {
                let context = "[[method]] kind = \"witt-wastage\"";
                let mut config = WittWastageConfig::default();
                for (key, value) in &table.entries {
                    match key.as_str() {
                        "kind" => {}
                        "quantiles" => {
                            let items = value.as_array().ok_or_else(|| {
                                invalid(context, key, "expected an array of percentiles")
                            })?;
                            config.candidate_quantiles = items
                                .iter()
                                .map(|v| need_float(context, key, v))
                                .collect::<Result<_, _>>()?;
                        }
                        "min_history" => config.min_history = need_usize(context, key, value)?,
                        "failure_penalty" => {
                            config.failure_penalty = need_float(context, key, value)?
                        }
                        _ => {
                            return Err(SpecError::UnknownKey {
                                context: context.to_string(),
                                key: key.clone(),
                            })
                        }
                    }
                }
                Ok(MethodSpec::WittWastage(config))
            }
            "witt-lr" => {
                let context = "[[method]] kind = \"witt-lr\"";
                let mut config = WittLrConfig::default();
                for (key, value) in &table.entries {
                    match key.as_str() {
                        "kind" => {}
                        "min_history" => config.min_history = need_usize(context, key, value)?,
                        "offset_sigmas" => config.offset_sigmas = need_float(context, key, value)?,
                        _ => {
                            return Err(SpecError::UnknownKey {
                                context: context.to_string(),
                                key: key.clone(),
                            })
                        }
                    }
                }
                Ok(MethodSpec::WittLr(config))
            }
            "tovar-ppm" => {
                let context = "[[method]] kind = \"tovar-ppm\"";
                let mut config = TovarPpmConfig::default();
                for (key, value) in &table.entries {
                    match key.as_str() {
                        "kind" => {}
                        "node_memory_bytes" => {
                            config.node_memory_bytes = need_float(context, key, value)?
                        }
                        "min_history" => config.min_history = need_usize(context, key, value)?,
                        "headroom" => config.headroom = need_float(context, key, value)?,
                        _ => {
                            return Err(SpecError::UnknownKey {
                                context: context.to_string(),
                                key: key.clone(),
                            })
                        }
                    }
                }
                Ok(MethodSpec::TovarPpm(config))
            }
            "witt-percentile" => {
                let context = "[[method]] kind = \"witt-percentile\"";
                let mut config = WittPercentileConfig::default();
                for (key, value) in &table.entries {
                    match key.as_str() {
                        "kind" => {}
                        "percentile" => config.percentile = need_float(context, key, value)?,
                        "min_history" => config.min_history = need_usize(context, key, value)?,
                        _ => {
                            return Err(SpecError::UnknownKey {
                                context: context.to_string(),
                                key: key.clone(),
                            })
                        }
                    }
                }
                Ok(MethodSpec::WittPercentile(config))
            }
            "preset" => {
                if let Some(key) = table.keys().find(|k| *k != "kind") {
                    return Err(SpecError::UnknownKey {
                        context: "[[method]] kind = \"preset\"".to_string(),
                        key: key.to_string(),
                    });
                }
                Ok(MethodSpec::Preset)
            }
            other => Err(SpecError::UnknownMethod {
                kind: other.to_string(),
                line: table.line,
            }),
        }
    }

    /// Serialises the spec as one `[[method]]` TOML table (the inverse of
    /// [`from_table`](MethodSpec::from_table); the round-trip is lossless).
    pub fn to_toml(&self) -> String {
        let mut out = String::from("[[method]]\n");
        out.push_str(&format!("kind = {}\n", toml_write::string(self.id())));
        match self {
            MethodSpec::Sizey(c) => {
                out.push_str(&format!("alpha = {}\n", toml_write::float(c.alpha)));
                match c.gating {
                    GatingStrategy::Argmax => out.push_str("gating = \"argmax\"\n"),
                    GatingStrategy::Interpolation { beta } => {
                        out.push_str("gating = \"interpolation\"\n");
                        out.push_str(&format!("beta = {}\n", toml_write::float(beta)));
                    }
                }
                match c.offset {
                    OffsetMode::Dynamic => out.push_str("offset = \"dynamic\"\n"),
                    OffsetMode::None => out.push_str("offset = \"none\"\n"),
                    OffsetMode::Fixed(strategy) => {
                        out.push_str(&format!(
                            "offset = {}\n",
                            toml_write::string(strategy.name())
                        ));
                    }
                }
                match c.online {
                    OnlineMode::FullRetrain => out.push_str("online = \"full-retrain\"\n"),
                    OnlineMode::Incremental {
                        retrain_interval,
                        mlp_update_interval,
                    } => {
                        out.push_str("online = \"incremental\"\n");
                        out.push_str(&format!("retrain_interval = {retrain_interval}\n"));
                        out.push_str(&format!("mlp_update_interval = {mlp_update_interval}\n"));
                    }
                }
                let classes: Vec<String> = c
                    .model_classes
                    .iter()
                    .map(|class| toml_write::string(class.name()))
                    .collect();
                out.push_str(&format!("model_classes = [{}]\n", classes.join(", ")));
                out.push_str(&format!("min_history = {}\n", c.min_history));
                out.push_str(&format!(
                    "cold_start_observations = {}\n",
                    c.cold_start_observations
                ));
                out.push_str(&format!(
                    "hyperparameter_optimization = {}\n",
                    c.hyperparameter_optimization
                ));
                out.push_str(&format!("seed = {}\n", c.seed));
                if let Some(capacity) = c.node_capacity_bytes {
                    out.push_str(&format!(
                        "node_capacity_bytes = {}\n",
                        toml_write::float(capacity)
                    ));
                }
                if let Some(window) = c.history_window {
                    out.push_str(&format!("history_window = {window}\n"));
                }
                if let DriftPolicy::Retrain {
                    window,
                    threshold,
                    keep_recent,
                } = c.drift
                {
                    out.push_str(&format!("drift_window = {window}\n"));
                    out.push_str(&format!(
                        "drift_threshold = {}\n",
                        toml_write::float(threshold)
                    ));
                    out.push_str(&format!("drift_keep_recent = {keep_recent}\n"));
                }
            }
            MethodSpec::WittWastage(c) => {
                let quantiles: Vec<String> = c
                    .candidate_quantiles
                    .iter()
                    .map(|q| toml_write::float(*q))
                    .collect();
                out.push_str(&format!("quantiles = [{}]\n", quantiles.join(", ")));
                out.push_str(&format!("min_history = {}\n", c.min_history));
                out.push_str(&format!(
                    "failure_penalty = {}\n",
                    toml_write::float(c.failure_penalty)
                ));
            }
            MethodSpec::WittLr(c) => {
                out.push_str(&format!("min_history = {}\n", c.min_history));
                out.push_str(&format!(
                    "offset_sigmas = {}\n",
                    toml_write::float(c.offset_sigmas)
                ));
            }
            MethodSpec::TovarPpm(c) => {
                out.push_str(&format!(
                    "node_memory_bytes = {}\n",
                    toml_write::float(c.node_memory_bytes)
                ));
                out.push_str(&format!("min_history = {}\n", c.min_history));
                out.push_str(&format!("headroom = {}\n", toml_write::float(c.headroom)));
            }
            MethodSpec::WittPercentile(c) => {
                out.push_str(&format!(
                    "percentile = {}\n",
                    toml_write::float(c.percentile)
                ));
                out.push_str(&format!("min_history = {}\n", c.min_history));
            }
            MethodSpec::Preset => {}
        }
        out
    }
}

fn sizey_config_from_table(table: &TomlTable) -> Result<SizeyConfig, SpecError> {
    let context = "[[method]] kind = \"sizey\"";
    let mut config = SizeyConfig::default();
    // `gating`/`beta` and `online`/`retrain_interval` are sibling keys that
    // configure one field together; collect them first so file order between
    // the siblings does not matter.
    let mut gating: Option<&str> = None;
    let mut beta: Option<f64> = None;
    let mut online: Option<&str> = None;
    let mut retrain_interval: Option<usize> = None;
    let mut mlp_update_interval: Option<usize> = None;
    let mut drift_window: Option<usize> = None;
    let mut drift_threshold: Option<f64> = None;
    let mut drift_keep_recent: Option<usize> = None;
    for (key, value) in &table.entries {
        match key.as_str() {
            "kind" => {}
            "alpha" => config.alpha = need_float(context, key, value)?,
            "gating" => gating = Some(need_str(context, key, value)?),
            "beta" => beta = Some(need_float(context, key, value)?),
            "offset" => {
                config.offset = match need_str(context, key, value)? {
                    "dynamic" => OffsetMode::Dynamic,
                    "none" => OffsetMode::None,
                    name => OffsetMode::Fixed(
                        sizey_core::OffsetStrategy::ALL
                            .into_iter()
                            .find(|s| s.name() == name)
                            .ok_or_else(|| {
                                invalid(
                                    context,
                                    key,
                                    format!(
                                    "unknown offset {name:?} (dynamic, none, or a strategy name)"
                                ),
                                )
                            })?,
                    ),
                }
            }
            "online" => online = Some(need_str(context, key, value)?),
            "retrain_interval" => retrain_interval = Some(need_usize(context, key, value)?),
            "mlp_update_interval" => mlp_update_interval = Some(need_usize(context, key, value)?),
            "model_classes" => {
                let items = value
                    .as_array()
                    .ok_or_else(|| invalid(context, key, "expected an array of class names"))?;
                let mut classes = Vec::with_capacity(items.len());
                for item in items {
                    let name = need_str(context, key, item)?;
                    let class = ModelClass::ALL
                        .into_iter()
                        .find(|c| c.name() == name)
                        .ok_or_else(|| {
                            invalid(context, key, format!("unknown model class {name:?}"))
                        })?;
                    classes.push(class);
                }
                if classes.is_empty() {
                    return Err(invalid(context, key, "the model pool cannot be empty"));
                }
                config.model_classes = classes;
            }
            "min_history" => config.min_history = need_usize(context, key, value)?,
            "cold_start_observations" => {
                config.cold_start_observations = need_usize(context, key, value)?
            }
            "hyperparameter_optimization" => {
                config.hyperparameter_optimization = need_bool(context, key, value)?
            }
            "seed" => {
                config.seed = value
                    .as_int()
                    .filter(|i| *i >= 0)
                    .map(|i| i as u64)
                    .ok_or_else(|| invalid(context, key, "expected a non-negative integer seed"))?
            }
            "node_capacity_bytes" => {
                config.node_capacity_bytes = Some(need_float(context, key, value)?)
            }
            "history_window" => {
                let window = value
                    .as_int()
                    .filter(|i| *i >= 1)
                    .ok_or_else(|| invalid(context, key, "expected a positive integer window"))?;
                config.history_window = Some(window as usize);
            }
            "drift_window" => drift_window = Some(need_usize(context, key, value)?),
            "drift_threshold" => drift_threshold = Some(need_float(context, key, value)?),
            "drift_keep_recent" => drift_keep_recent = Some(need_usize(context, key, value)?),
            _ => {
                return Err(SpecError::UnknownKey {
                    context: context.to_string(),
                    key: key.clone(),
                })
            }
        }
    }
    match (gating, beta) {
        (Some("argmax"), None) => config.gating = GatingStrategy::Argmax,
        (Some("argmax"), Some(_)) => {
            return Err(invalid(
                context,
                "beta",
                "beta only applies to interpolation gating",
            ))
        }
        (Some("interpolation"), b) => {
            let default_beta = match GatingStrategy::default() {
                GatingStrategy::Interpolation { beta } => beta,
                GatingStrategy::Argmax => 8.0,
            };
            config.gating = GatingStrategy::Interpolation {
                beta: b.unwrap_or(default_beta),
            };
        }
        (Some(other), _) => {
            return Err(invalid(
                context,
                "gating",
                format!("unknown gating {other:?} (argmax or interpolation)"),
            ))
        }
        (None, Some(b)) => {
            config.gating = GatingStrategy::Interpolation { beta: b };
        }
        (None, None) => {}
    }
    let (default_interval, default_mlp_interval) = match OnlineMode::default() {
        OnlineMode::Incremental {
            retrain_interval,
            mlp_update_interval,
        } => (retrain_interval, mlp_update_interval),
        OnlineMode::FullRetrain => (25, 4),
    };
    match (online, retrain_interval, mlp_update_interval) {
        (Some("full-retrain"), None, None) => config.online = OnlineMode::FullRetrain,
        (Some("full-retrain"), Some(_), _) => {
            return Err(invalid(
                context,
                "retrain_interval",
                "retrain_interval only applies to incremental mode",
            ))
        }
        (Some("full-retrain"), _, Some(_)) => {
            return Err(invalid(
                context,
                "mlp_update_interval",
                "mlp_update_interval only applies to incremental mode",
            ))
        }
        (Some("incremental"), interval, mlp) => {
            config.online = OnlineMode::Incremental {
                retrain_interval: interval.unwrap_or(default_interval),
                mlp_update_interval: mlp.unwrap_or(default_mlp_interval),
            };
        }
        (Some(other), _, _) => {
            return Err(invalid(
                context,
                "online",
                format!("unknown online mode {other:?} (full-retrain or incremental)"),
            ))
        }
        (None, interval @ Some(_), mlp) | (None, interval, mlp @ Some(_)) => {
            config.online = OnlineMode::Incremental {
                retrain_interval: interval.unwrap_or(default_interval),
                mlp_update_interval: mlp.unwrap_or(default_mlp_interval),
            };
        }
        (None, None, None) => {}
    }
    // The three drift_* keys configure one DriftPolicy together; any one of
    // them arms the detector, the others fall back to the policy defaults.
    if drift_window.is_some() || drift_threshold.is_some() || drift_keep_recent.is_some() {
        let (dw, dt, dk) = match DriftPolicy::retrain_defaults() {
            DriftPolicy::Retrain {
                window,
                threshold,
                keep_recent,
            } => (window, threshold, keep_recent),
            DriftPolicy::Off => (20, 0.6, 30),
        };
        config.drift = DriftPolicy::Retrain {
            window: drift_window.unwrap_or(dw),
            threshold: drift_threshold.unwrap_or(dt),
            keep_recent: drift_keep_recent.unwrap_or(dk),
        };
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml_lite::TomlDocument;
    use sizey_provenance::{MachineId, TaskOutcome, TaskRecord, TaskTypeId};
    use sizey_sim::{AttemptContext, TaskSubmission};

    #[test]
    fn default_suite_matches_the_figure_order_and_names() {
        let suite = MethodSpec::default_suite();
        assert_eq!(suite.len(), 6);
        let names: Vec<&str> = suite.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            [
                "Sizey",
                "Witt-Wastage",
                "Witt-LR",
                "Tovar-PPM",
                "Witt-Percentile",
                "Workflow-Presets"
            ]
        );
        for (i, spec) in suite.iter().enumerate() {
            assert_eq!(spec.figure_order(), i);
            assert_eq!(spec.build().name(), spec.name());
        }
        let ids: std::collections::HashSet<&str> = suite.iter().map(|m| m.id()).collect();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn every_spec_round_trips_through_toml() {
        let mut variants = MethodSpec::default_suite();
        variants.push(MethodSpec::Sizey(
            SizeyConfig::full_retraining()
                .with_alpha(0.3)
                .with_gating(GatingStrategy::Argmax)
                .with_model_classes(vec![ModelClass::Linear, ModelClass::Knn]),
        ));
        variants.push(MethodSpec::Sizey(SizeyConfig {
            offset: OffsetMode::Fixed(sizey_core::OffsetStrategy::MedianError),
            node_capacity_bytes: Some(64e9),
            ..SizeyConfig::default()
        }));
        variants.push(MethodSpec::Sizey(
            SizeyConfig::default().with_history_window(128),
        ));
        variants.push(MethodSpec::Sizey(SizeyConfig::default().with_drift_policy(
            sizey_core::DriftPolicy::Retrain {
                window: 16,
                threshold: 0.5,
                keep_recent: 24,
            },
        )));
        variants.push(MethodSpec::WittPercentile(WittPercentileConfig {
            percentile: 99.5,
            min_history: 4,
        }));
        for spec in variants {
            let text = spec.to_toml();
            let doc = TomlDocument::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let tables = doc.array_of("method");
            assert_eq!(tables.len(), 1, "{text}");
            let parsed =
                MethodSpec::from_table(tables[0]).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, spec, "round-trip changed the spec:\n{text}");
        }
    }

    #[test]
    fn unknown_kinds_and_keys_are_rejected() {
        let doc = TomlDocument::parse("[[method]]\nkind = \"hal-9000\"\n").unwrap();
        assert!(matches!(
            MethodSpec::from_table(doc.array_of("method")[0]),
            Err(SpecError::UnknownMethod { .. })
        ));
        let doc = TomlDocument::parse("[[method]]\nkind = \"sizey\"\nalhpa = 0.1\n").unwrap();
        assert!(matches!(
            MethodSpec::from_table(doc.array_of("method")[0]),
            Err(SpecError::UnknownKey { .. })
        ));
        let doc =
            TomlDocument::parse("[[method]]\nkind = \"sizey\"\ngating = \"argmax\"\nbeta = 2.0\n")
                .unwrap();
        assert!(matches!(
            MethodSpec::from_table(doc.array_of("method")[0]),
            Err(SpecError::InvalidValue { .. })
        ));
        let doc = TomlDocument::parse("[[method]]\nkind = \"preset\"\npercentile = 9\n").unwrap();
        assert!(matches!(
            MethodSpec::from_table(doc.array_of("method")[0]),
            Err(SpecError::UnknownKey { .. })
        ));
    }

    #[test]
    fn partial_sizey_tables_override_only_named_fields() {
        let doc = TomlDocument::parse(
            "[[method]]\nkind = \"sizey\"\nalpha = 0.25\nonline = \"incremental\"\nretrain_interval = 7\n",
        )
        .unwrap();
        let spec = MethodSpec::from_table(doc.array_of("method")[0]).unwrap();
        match spec {
            MethodSpec::Sizey(c) => {
                assert_eq!(c.alpha, 0.25);
                assert_eq!(c.online, OnlineMode::incremental(7));
                // Untouched fields keep their defaults.
                assert_eq!(c.gating, GatingStrategy::default());
                assert_eq!(c.model_classes.len(), 4);
            }
            other => panic!("expected Sizey, got {other:?}"),
        }
    }

    #[test]
    fn build_then_restore_is_bit_identical_for_every_method() {
        fn record(task_type: &str, seq: u64, input: f64, peak: f64) -> TaskRecord {
            TaskRecord {
                workflow: "wf".into(),
                task_type: TaskTypeId::new(task_type),
                machine: MachineId::new("m"),
                sequence: seq,
                input_bytes: input,
                peak_memory_bytes: peak,
                allocated_memory_bytes: peak * 1.4,
                runtime_seconds: 30.0,
                concurrent_tasks: 1,
                queue_delay_seconds: 0.0,
                outcome: TaskOutcome::Succeeded,
            }
        }
        let task = TaskSubmission {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 99,
            input_bytes: 5e9,
            preset_memory_bytes: 20e9,
        };
        for spec in MethodSpec::default_suite() {
            let mut original = spec.build();
            for i in 1..=12u64 {
                original.observe(&record("t", i, i as f64 * 1e9, 2.0 * i as f64 * 1e9 + 1e9));
            }
            let state = original.snapshot();
            let restored = spec
                .restore(&state)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.id()));
            // State equality first: the comparison predicts below advance
            // Sizey's offset-selection counters on both sides.
            assert_eq!(restored.snapshot(), state, "{} state drifted", spec.id());
            assert_eq!(
                original.predict(&task, AttemptContext::first()),
                restored.predict(&task, AttemptContext::first()),
                "{} diverged after restore",
                spec.id()
            );
        }
    }
}
