//! A minimal line-oriented lexer for Rust source: splits every line into
//! *code* (with string/char literal contents blanked so patterns inside
//! literals never match) and *comment* text (so `// SAFETY:` and
//! `// lint:allow(...)` markers can be read), then marks the line ranges
//! belonging to `#[cfg(test)]` modules and `#[test]` functions so rules can
//! skip them.
//!
//! This is intentionally not a full Rust lexer — it only needs to be exact
//! about the things that would otherwise produce false findings: line and
//! (nested) block comments, string/byte-string literals, raw strings with
//! arbitrary `#` fences, and the char-literal vs. lifetime ambiguity.

/// One source line after lexing.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments removed and literal contents replaced by spaces
    /// (the delimiting quotes are kept, so `""` still reads as a string).
    pub code: String,
    /// Concatenated comment text on this line (line + block comments).
    pub comment: String,
}

impl Line {
    fn is_blank(&self) -> bool {
        self.code.trim().is_empty() && self.comment.trim().is_empty()
    }

    /// True when the line carries comment text but no code.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }
}

/// A lexed source file.
pub struct Lexed {
    pub lines: Vec<Line>,
    /// Per line: true when the line sits inside `#[cfg(test)]` or `#[test]`
    /// item bodies (rules skip these).
    pub in_test: Vec<bool>,
}

pub fn lex(source: &str) -> Lexed {
    let lines = split_lines(source);
    let in_test = mark_test_lines(&lines);
    Lexed { lines, in_test }
}

fn split_lines(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut i = 0usize;

    macro_rules! newline {
        () => {
            lines.push(std::mem::take(&mut cur))
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                newline!();
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment: capture text until end of line.
                i += 2;
                while i < chars.len() && chars[i] != '\n' {
                    cur.comment.push(chars[i]);
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, possibly nested, possibly multi-line.
                i += 2;
                let mut depth = 1usize;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            newline!();
                        } else {
                            cur.comment.push(chars[i]);
                        }
                        i += 1;
                    }
                }
            }
            '"' => i = consume_string(&chars, i, &mut cur, &mut lines),
            'r' | 'b' if starts_raw_or_byte_string(&chars, i) => {
                i = consume_raw_or_byte(&chars, i, &mut cur, &mut lines);
            }
            '\'' => {
                // Char literal vs. lifetime. A lifetime is `'` + ident not
                // followed by a closing `'`; a char literal always closes.
                if let Some(end) = char_literal_end(&chars, i) {
                    cur.code.push('\'');
                    for _ in i + 1..end {
                        cur.code.push(' ');
                    }
                    cur.code.push('\'');
                    i = end + 1;
                } else {
                    cur.code.push('\'');
                    i += 1;
                }
            }
            _ => {
                cur.code.push(c);
                i += 1;
            }
        }
    }
    if !cur.is_blank() || !cur.code.is_empty() {
        lines.push(cur);
    }
    lines
}

/// `i` points at `"`. Consumes an ordinary (escaped) string literal,
/// pushing blanked content into `cur` and handling embedded newlines.
fn consume_string(chars: &[char], mut i: usize, cur: &mut Line, lines: &mut Vec<Line>) -> usize {
    cur.code.push('"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2, // skip the escaped char (incl. \" and \\)
            '"' => {
                cur.code.push('"');
                return i + 1;
            }
            '\n' => {
                lines.push(std::mem::take(cur));
                i += 1;
            }
            _ => {
                cur.code.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Does `chars[i..]` start a raw string (`r"`, `r#"`, ...) or byte string
/// (`b"`, `br#"`, ...)? Plain identifiers beginning with r/b fall through.
fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'"') {
            return true;
        }
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    // chars[j] == 'r'
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn consume_raw_or_byte(
    chars: &[char],
    mut i: usize,
    cur: &mut Line,
    lines: &mut Vec<Line>,
) -> usize {
    // Emit the prefix (r/b/br + fences) as code so the token stays visible.
    if chars[i] == 'b' {
        cur.code.push('b');
        i += 1;
    }
    if chars.get(i) == Some(&'r') {
        cur.code.push('r');
        i += 1;
        let mut fences = 0usize;
        while chars.get(i) == Some(&'#') {
            cur.code.push('#');
            fences += 1;
            i += 1;
        }
        // Opening quote.
        cur.code.push('"');
        i += 1;
        // Raw string: no escapes; closes on `"` + fences `#`s.
        while i < chars.len() {
            if chars[i] == '"' {
                let mut ok = true;
                for k in 0..fences {
                    if chars.get(i + 1 + k) != Some(&'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    cur.code.push('"');
                    for _ in 0..fences {
                        cur.code.push('#');
                    }
                    return i + 1 + fences;
                }
            }
            if chars[i] == '\n' {
                lines.push(std::mem::take(cur));
            } else {
                cur.code.push(' ');
            }
            i += 1;
        }
        i
    } else {
        // Plain byte string b"..."
        consume_string(chars, i, cur, lines)
    }
}

/// If `chars[i]` (a `'`) opens a char literal, returns the index of the
/// closing `'`; returns None for lifetimes.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char: scan to the closing quote (handles \', \u{..}).
            let mut j = i + 2;
            while j < chars.len() {
                if chars[j] == '\\' {
                    j += 2;
                    continue;
                }
                if chars[j] == '\'' {
                    return Some(j);
                }
                j += 1;
            }
            None
        }
        _ => {
            if chars.get(i + 2) == Some(&'\'') {
                Some(i + 2)
            } else {
                None // lifetime like 'a or loop label
            }
        }
    }
}

/// Marks line ranges covered by `#[cfg(test)]` items and `#[test]`
/// functions by matching the braces of the item that follows the attribute.
fn mark_test_lines(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut idx = 0usize;
    while idx < lines.len() {
        let code = &lines[idx].code;
        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            // Find the opening brace of the annotated item (skipping further
            // attribute lines and the signature) and mark through its close.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = idx;
            while j < lines.len() {
                in_test[j] = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        // An un-braced annotated item (e.g. `#[cfg(test)]
                        // mod fixtures;`) ends at the semicolon.
                        ';' if !opened && depth == 0 => {
                            depth = -1;
                        }
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                if !opened && depth < 0 {
                    break;
                }
                j += 1;
            }
            idx = j + 1;
        } else {
            idx += 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_but_quotes_kept() {
        let lexed = lex("let x = \"Instant::now()\";\n");
        assert!(!lexed.lines[0].code.contains("Instant"));
        assert!(lexed.lines[0].code.contains('"'));
    }

    #[test]
    fn line_comments_go_to_comment_channel() {
        let lexed = lex("foo(); // SAFETY: fine\n");
        assert!(lexed.lines[0].code.contains("foo()"));
        assert!(lexed.lines[0].comment.contains("SAFETY: fine"));
    }

    #[test]
    fn block_comments_span_lines() {
        let lexed = lex("a /* one\ntwo */ b\n");
        assert!(lexed.lines[0].comment.contains("one"));
        assert!(lexed.lines[1].comment.contains("two"));
        assert!(lexed.lines[1].code.contains('b'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lexed = lex("let s = r#\"x.partial_cmp(y)\"#;\n");
        assert!(!lexed.lines[0].code.contains("partial_cmp"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(lexed.lines[0].code.contains("&'a str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let lexed = lex("let c = '\\''; let d = 'x';\n");
        let code = &lexed.lines[0].code;
        assert!(!code.contains('x') || code.contains("let"));
        assert!(!code.contains("'x'"));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lexed = lex(src);
        assert!(!lexed.in_test[0]);
        assert!(lexed.in_test[1] && lexed.in_test[2] && lexed.in_test[3] && lexed.in_test[4]);
        assert!(!lexed.in_test[5]);
    }

    #[test]
    fn test_fn_blocks_are_marked() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn live() {}\n";
        let lexed = lex(src);
        assert!(lexed.in_test[0] && lexed.in_test[2]);
        assert!(!lexed.in_test[4]);
    }
}
