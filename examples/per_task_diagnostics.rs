//! Per-task-type diagnostics: wastage, failure counts and mean relative
//! prediction error for each task type of one workflow, for Sizey and one
//! baseline. Useful when investigating where the remaining wastage sits.
//!
//! Run with `cargo run --release --example per_task_diagnostics [workflow] [scale]`.

use sizey_suite::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workflow = args.get(1).map(String::as_str).unwrap_or("rnaseq");
    let scale: f64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2_f64)
        .clamp(0.01, 1.0);
    let Some(spec) = sizey_workflows::workflow_by_name(workflow) else {
        eprintln!("unknown workflow {workflow:?}");
        std::process::exit(1);
    };
    let instances = generate_workflow(&spec, &GeneratorConfig::scaled(scale, 42));
    let sim = SimulationConfig::default();

    let mut sizey = SizeyPredictor::with_defaults();
    let sizey_report = replay_workflow(&spec.name, &instances, &mut sizey, &sim);
    let mut witt = WittWastage::new();
    let witt_report = replay_workflow(&spec.name, &instances, &mut witt, &sim);

    let count_by_type: BTreeMap<String, usize> =
        instances.iter().fold(BTreeMap::new(), |mut m, i| {
            *m.entry(i.task_type.to_string()).or_insert(0) += 1;
            m
        });

    println!(
        "{} at scale {scale}: Sizey {:.1} GBh / {} failures, Witt-Wastage {:.1} GBh / {} failures\n",
        spec.name,
        sizey_report.total_wastage_gbh(),
        sizey_report.total_failures(),
        witt_report.total_wastage_gbh(),
        witt_report.total_failures()
    );
    println!(
        "{:<28} {:>5} {:>12} {:>8} {:>12} {:>8}",
        "task type", "n", "Sizey GBh", "fails", "Witt GBh", "fails"
    );

    let sizey_wastage = sizey_report.wastage_by_task_type();
    let sizey_fails = sizey_report.failures_by_task_type();
    let witt_wastage = witt_report.wastage_by_task_type();
    let witt_fails = witt_report.failures_by_task_type();

    let mut rows: Vec<(String, f64)> = sizey_wastage
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (task, wastage) in rows {
        let key = TaskTypeId::new(task.clone());
        println!(
            "{:<28} {:>5} {:>12.2} {:>8} {:>12.2} {:>8}",
            task,
            count_by_type.get(&task).copied().unwrap_or(0),
            wastage,
            sizey_fails.get(&key).copied().unwrap_or(0),
            witt_wastage.get(&key).copied().unwrap_or(0.0),
            witt_fails.get(&key).copied().unwrap_or(0)
        );
    }
}
