//! The parallel experiment sweep runner.
//!
//! The paper's evaluation is a cartesian product: workflows × sizing methods
//! (× seeds × scheduling policies, now that the simulator has a real
//! scheduler). Each cell of that product is an independent replay, so the
//! sweep fans the cells out across the [`sizey_ml::parallel`] thread pool
//! and collects one flat table — replacing the serial per-bin loops that
//! used to walk the product one replay at a time.

use crate::{HarnessSettings, Method};
use sizey_core::{SharedSizey, SizeyConfig};
use sizey_ml::parallel::{default_parallelism, parallel_map};
use sizey_sim::{
    replay_workflow, schedule_workflows, SchedulePolicy, SimulationConfig, WorkflowTenant,
};
use sizey_workflows::{generate_workflow, workflow_by_name, GeneratorConfig};

/// One cartesian sweep over workflows × methods × seeds × policies.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Workflow names to replay (must exist in
    /// [`sizey_workflows::WORKFLOW_NAMES`]).
    pub workflows: Vec<String>,
    /// Sizing methods to compare.
    pub methods: Vec<Method>,
    /// Workload-generation seeds; every seed yields an independent workload.
    pub seeds: Vec<u64>,
    /// Scheduling policies to compare.
    pub policies: Vec<SchedulePolicy>,
    /// Fraction of the paper's task volume to generate per workload.
    pub scale: f64,
    /// Base simulation configuration; the policy field is overridden per
    /// cell.
    pub sim: SimulationConfig,
}

impl SweepSpec {
    /// The full evaluation sweep: all six workflows, every method, one seed,
    /// every scheduling policy, at the harness scale.
    pub fn full(settings: &HarnessSettings, sim: SimulationConfig) -> Self {
        SweepSpec {
            workflows: sizey_workflows::WORKFLOW_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            methods: Method::ALL.to_vec(),
            seeds: vec![settings.seed],
            policies: SchedulePolicy::ALL.to_vec(),
            scale: settings.scale,
            sim,
        }
    }

    /// Number of cells in the cartesian product.
    pub fn len(&self) -> usize {
        self.workflows.len() * self.methods.len() * self.seeds.len() * self.policies.len()
    }

    /// True when the product is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of one sweep cell: one workflow replayed with one method under one
/// policy and seed.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Workflow name.
    pub workflow: String,
    /// Sizing method.
    pub method: Method,
    /// Workload seed.
    pub seed: u64,
    /// Scheduling policy.
    pub policy: SchedulePolicy,
    /// Total memory wastage in GBh.
    pub wastage_gbh: f64,
    /// Number of failed attempts.
    pub failures: usize,
    /// Instances that never finished.
    pub unfinished: usize,
    /// Simulated makespan in hours.
    pub makespan_hours: f64,
    /// Mean queue delay per attempt in seconds.
    pub mean_queue_delay_seconds: f64,
    /// Total task runtime in hours.
    pub runtime_hours: f64,
}

/// Runs the sweep, fanning the cells out across `threads` workers (use
/// [`default_parallelism`] when unsure). Results come back in cartesian
/// order: workflows-major, then methods, seeds, policies.
pub fn run_sweep_with_threads(spec: &SweepSpec, threads: usize) -> Vec<SweepCell> {
    let mut cells: Vec<(String, Method, u64, SchedulePolicy)> = Vec::with_capacity(spec.len());
    for wf in &spec.workflows {
        for &method in &spec.methods {
            for &seed in &spec.seeds {
                for &policy in &spec.policies {
                    cells.push((wf.clone(), method, seed, policy));
                }
            }
        }
    }

    parallel_map(&cells, threads, |(wf, method, seed, policy)| {
        let wf_spec = workflow_by_name(wf).expect("sweep names a known workflow");
        let instances = generate_workflow(
            &wf_spec,
            &GeneratorConfig {
                scale: spec.scale,
                seed: *seed,
                ..GeneratorConfig::default()
            },
        );
        let sim = spec.sim.clone().with_policy(*policy);
        let mut predictor = method.build();
        let report = replay_workflow(wf, &instances, predictor.as_mut(), &sim);
        SweepCell {
            workflow: wf.clone(),
            method: *method,
            seed: *seed,
            policy: *policy,
            wastage_gbh: report.total_wastage_gbh(),
            failures: report.total_failures(),
            unfinished: report.unfinished_instances,
            makespan_hours: report.makespan_seconds / 3600.0,
            mean_queue_delay_seconds: report.mean_queue_delay_seconds(),
            runtime_hours: report.total_runtime_hours(),
        }
    })
}

/// Runs the sweep on the default thread pool.
pub fn run_sweep(spec: &SweepSpec) -> Vec<SweepCell> {
    run_sweep_with_threads(spec, default_parallelism())
}

/// The sweep's **shared-predictor mode**: instead of replaying every
/// (workflow, method) cell in isolation with a fresh predictor, each
/// (seed, policy) cell replays *all* of the spec's workflows concurrently as
/// tenants of one shared cluster ([`schedule_workflows`]), every tenant
/// sized by clones of **one** concurrent sharded Sizey service — the
/// deployment model of a cluster-wide prediction service, where tenant A's
/// completions train the models tenant B predicts from.
///
/// `spec.methods` is ignored (the shared service is always Sizey); one
/// [`SweepCell`] per workflow is emitted per (seed, policy), in seed-major
/// then policy then workflow order. The (seed, policy) cells fan out across
/// `threads` workers; within a cell the event-driven replay is sequential,
/// so results are deterministic regardless of the thread count.
pub fn run_sweep_shared_sizey_with_threads(
    spec: &SweepSpec,
    shards: usize,
    threads: usize,
) -> Vec<SweepCell> {
    let mut cells: Vec<(u64, SchedulePolicy)> = Vec::new();
    for &seed in &spec.seeds {
        for &policy in &spec.policies {
            cells.push((seed, policy));
        }
    }
    let grouped = parallel_map(&cells, threads, |(seed, policy)| {
        let service = SharedSizey::sizey(SizeyConfig::default(), shards);
        let tenants: Vec<WorkflowTenant> = spec
            .workflows
            .iter()
            .map(|wf| {
                let wf_spec = workflow_by_name(wf).expect("sweep names a known workflow");
                let instances = generate_workflow(
                    &wf_spec,
                    &GeneratorConfig {
                        scale: spec.scale,
                        seed: *seed,
                        ..GeneratorConfig::default()
                    },
                );
                WorkflowTenant::new(wf.clone(), instances, Box::new(service.clone()))
            })
            .collect();
        let sim = spec.sim.clone().with_policy(*policy);
        let result = schedule_workflows(tenants, &sim);
        result
            .reports
            .iter()
            .map(|report| SweepCell {
                workflow: report.workflow.clone(),
                method: Method::Sizey,
                seed: *seed,
                policy: *policy,
                wastage_gbh: report.total_wastage_gbh(),
                failures: report.total_failures(),
                unfinished: report.unfinished_instances,
                makespan_hours: report.makespan_seconds / 3600.0,
                mean_queue_delay_seconds: report.mean_queue_delay_seconds(),
                runtime_hours: report.total_runtime_hours(),
            })
            .collect::<Vec<_>>()
    });
    grouped.into_iter().flatten().collect()
}

/// [`run_sweep_shared_sizey_with_threads`] on the default thread pool.
pub fn run_sweep_shared_sizey(spec: &SweepSpec, shards: usize) -> Vec<SweepCell> {
    run_sweep_shared_sizey_with_threads(spec, shards, default_parallelism())
}

/// One aggregated row of a sweep: a (method, policy) pair summed over
/// workflows and averaged over seeds.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Sizing method.
    pub method: Method,
    /// Scheduling policy.
    pub policy: SchedulePolicy,
    /// Mean (over seeds) of the total wastage across workflows, GBh.
    pub wastage_gbh: f64,
    /// Mean total failures.
    pub failures: f64,
    /// Mean of the summed per-workflow makespans, hours.
    pub makespan_hours: f64,
    /// Mean queue delay per attempt, seconds (averaged over cells).
    pub mean_queue_delay_seconds: f64,
}

/// Aggregates sweep cells into one row per (method, policy), in the order
/// the methods and policies appear in the cells.
pub fn aggregate_sweep(cells: &[SweepCell]) -> Vec<SweepRow> {
    let mut order: Vec<(Method, SchedulePolicy)> = Vec::new();
    for cell in cells {
        if !order.contains(&(cell.method, cell.policy)) {
            order.push((cell.method, cell.policy));
        }
    }
    order
        .into_iter()
        .map(|(method, policy)| {
            let group: Vec<&SweepCell> = cells
                .iter()
                .filter(|c| c.method == method && c.policy == policy)
                .collect();
            let seeds: Vec<u64> = {
                let mut s: Vec<u64> = group.iter().map(|c| c.seed).collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            let n_seeds = seeds.len().max(1) as f64;
            let n_cells = group.len().max(1) as f64;
            SweepRow {
                method,
                policy,
                wastage_gbh: group.iter().map(|c| c.wastage_gbh).sum::<f64>() / n_seeds,
                failures: group.iter().map(|c| c.failures as f64).sum::<f64>() / n_seeds,
                makespan_hours: group.iter().map(|c| c.makespan_hours).sum::<f64>() / n_seeds,
                mean_queue_delay_seconds: group
                    .iter()
                    .map(|c| c.mean_queue_delay_seconds)
                    .sum::<f64>()
                    / n_cells,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            workflows: vec!["iwd".to_string()],
            methods: vec![Method::WorkflowPresets],
            seeds: vec![3, 4],
            policies: vec![SchedulePolicy::FirstFit, SchedulePolicy::BestFit],
            scale: 0.02,
            sim: SimulationConfig::default(),
        }
    }

    #[test]
    fn sweep_produces_one_cell_per_product_entry() {
        let spec = tiny_spec();
        let cells = run_sweep(&spec);
        assert_eq!(cells.len(), spec.len());
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.wastage_gbh >= 0.0));
        assert!(cells.iter().all(|c| c.unfinished == 0));
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let spec = tiny_spec();
        let serial = run_sweep_with_threads(&spec, 1);
        let parallel = run_sweep_with_threads(&spec, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.workflow, b.workflow);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.wastage_gbh, b.wastage_gbh);
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.makespan_hours, b.makespan_hours);
        }
    }

    #[test]
    fn shared_sizey_sweep_emits_one_cell_per_workflow_seed_policy() {
        let spec = SweepSpec {
            workflows: vec!["iwd".to_string(), "rnaseq".to_string()],
            methods: vec![],
            seeds: vec![3],
            policies: vec![SchedulePolicy::FirstFit, SchedulePolicy::Backfill],
            scale: 0.02,
            sim: SimulationConfig::default(),
        };
        let cells = run_sweep_shared_sizey(&spec, 4);
        assert_eq!(cells.len(), 4, "2 workflows x 1 seed x 2 policies");
        assert!(cells.iter().all(|c| c.method == Method::Sizey));
        assert!(cells.iter().all(|c| c.wastage_gbh.is_finite()));
        // Deterministic regardless of worker count: each (seed, policy)
        // cell's event-driven replay is sequential.
        let serial = run_sweep_shared_sizey_with_threads(&spec, 4, 1);
        for (a, b) in cells.iter().zip(&serial) {
            assert_eq!(a.workflow, b.workflow);
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.wastage_gbh, b.wastage_gbh);
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.makespan_hours, b.makespan_hours);
        }
    }

    #[test]
    fn aggregate_groups_by_method_and_policy() {
        let spec = tiny_spec();
        let cells = run_sweep(&spec);
        let rows = aggregate_sweep(&cells);
        assert_eq!(rows.len(), 2, "one row per (method, policy)");
        for row in &rows {
            assert_eq!(row.method, Method::WorkflowPresets);
            assert!(row.wastage_gbh > 0.0);
        }
    }
}
