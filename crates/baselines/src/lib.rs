//! # sizey-baselines
//!
//! Re-implementations of the four state-of-the-art baselines Sizey is
//! compared against, plus the Workflow-Presets sanity baseline (re-exported
//! from the simulator crate):
//!
//! * [`witt_wastage::WittWastage`] — low-wastage linear allocation (Witt et
//!   al., HPCS 2019, IceCube),
//! * [`witt_lr::WittLr`] — linear regression with residual offset (Witt et
//!   al., HPCS 2019, feedback-based allocation),
//! * [`witt_percentile::WittPercentile`] — 95th-percentile predictor (same
//!   paper),
//! * [`tovar_ppm::TovarPpm`] — peak-probability job sizing with conservative
//!   retry (Tovar et al., TPDS 2018),
//! * [`sizey_sim::PresetPredictor`] — the workflow developers' memory
//!   requests.
//!
//! All methods implement [`sizey_sim::MemoryPredictor`] and are replayed
//! through the same online simulator as Sizey itself.
//!
//! ## Example
//!
//! ```
//! use sizey_baselines::{WittPercentile, all_baselines};
//! use sizey_sim::{replay_workflow, SimulationConfig};
//! use sizey_workflows::{generate_workflow, GeneratorConfig, profiles};
//!
//! let instances = generate_workflow(&profiles::iwd(), &GeneratorConfig::scaled(0.02, 1));
//! let mut method = WittPercentile::new();
//! let report = replay_workflow("iwd", &instances, &mut method, &SimulationConfig::default());
//! assert_eq!(report.method, "Witt-Percentile");
//! assert_eq!(all_baselines().len(), 5);
//! ```

#![warn(missing_docs)]

pub mod history;
pub mod tovar_ppm;
pub mod witt_lr;
pub mod witt_percentile;
pub mod witt_wastage;

pub use history::{History, Observation};
pub use sizey_sim::PresetPredictor;
pub use tovar_ppm::{TovarPpm, TovarPpmConfig};
pub use witt_lr::{WittLr, WittLrConfig};
pub use witt_percentile::{WittPercentile, WittPercentileConfig};
pub use witt_wastage::{WittWastage, WittWastageConfig};

use sizey_sim::MemoryPredictor;

/// Builds one fresh instance of every baseline method (in the order used by
/// the paper's figures, Workflow-Presets last).
pub fn all_baselines() -> Vec<Box<dyn MemoryPredictor>> {
    vec![
        Box::new(WittWastage::new()),
        Box::new(WittLr::new()),
        Box::new(TovarPpm::new()),
        Box::new(WittPercentile::new()),
        Box::new(PresetPredictor),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_sim::{replay_workflow, SimulationConfig};
    use sizey_workflows::{generate_workflow, profiles, GeneratorConfig};

    #[test]
    fn all_baselines_have_distinct_names() {
        let names: Vec<String> = all_baselines().iter().map(|b| b.name()).collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert!(names.contains(&"Witt-Wastage".to_string()));
        assert!(names.contains(&"Workflow-Presets".to_string()));
    }

    #[test]
    fn witt_baselines_beat_presets_on_wastage() {
        // End-to-end sanity check of the paper's premise on the iwd
        // workflow: the Witt methods waste less than the raw presets.
        // (Tovar-PPM is intentionally excluded — Table II of the paper shows
        // it losing to the presets on iwd because its conservative
        // node-maximum retry is very expensive for such small tasks.)
        let spec = profiles::iwd();
        let instances = generate_workflow(&spec, &GeneratorConfig::scaled(0.08, 13));
        let config = SimulationConfig::default();

        let mut presets = PresetPredictor;
        let preset_report = replay_workflow("iwd", &instances, &mut presets, &config);

        for mut method in [
            Box::new(WittPercentile::new()) as Box<dyn MemoryPredictor>,
            Box::new(WittLr::new()),
            Box::new(WittWastage::new()),
        ] {
            let report = replay_workflow("iwd", &instances, method.as_mut(), &config);
            assert!(
                report.total_wastage_gbh() < preset_report.total_wastage_gbh(),
                "{} wasted {} GBh vs presets {} GBh",
                report.method,
                report.total_wastage_gbh(),
                preset_report.total_wastage_gbh()
            );
        }
    }

    #[test]
    fn tovar_ppm_replays_and_accounts_failures() {
        let spec = profiles::iwd();
        let instances = generate_workflow(&spec, &GeneratorConfig::scaled(0.05, 13));
        let config = SimulationConfig::default();
        let mut tovar = TovarPpm::new();
        let report = replay_workflow("iwd", &instances, &mut tovar, &config);
        assert!(report.total_wastage_gbh().is_finite());
        assert_eq!(report.unfinished_instances, 0);
        // The conservative node-maximum retry means no task needs a third
        // attempt.
        assert!(report.events.iter().all(|e| e.attempt <= 1));
    }
}
