//! The in-memory provenance store.
//!
//! The store plays the role of the provenance database attached to the
//! scientific workflow management system in the paper's Fig. 3: when a task
//! is submitted, Sizey retrieves all historical executions of the same
//! (task type, machine) combination; when a task finishes, its monitoring
//! data is appended. The store is thread-safe so the simulator can complete
//! tasks from several worker threads while predictors query concurrently.

use crate::record::{TaskMachineKey, TaskOutcome, TaskRecord, TaskTypeId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Thread-safe, indexed provenance store.
#[derive(Debug, Default)]
pub struct ProvenanceStore {
    inner: RwLock<StoreInner>,
}

#[derive(Debug, Default)]
struct StoreInner {
    /// All records in insertion order.
    records: Vec<Arc<TaskRecord>>,
    /// Index: (task type, machine) -> record positions.
    by_key: HashMap<TaskMachineKey, Vec<usize>>,
    /// Index: task type -> record positions (across machines).
    by_task_type: HashMap<TaskTypeId, Vec<usize>>,
    /// Number of currently running tasks, maintained by the execution
    /// environment and exposed to predictors as context.
    running_tasks: u32,
}

impl ProvenanceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ProvenanceStore::default()
    }

    /// Appends a finished task record.
    pub fn insert(&self, record: TaskRecord) {
        let mut inner = self.inner.write();
        let idx = inner.records.len();
        let key = record.key();
        let task_type = record.task_type.clone();
        inner.records.push(Arc::new(record));
        inner.by_key.entry(key).or_default().push(idx);
        inner.by_task_type.entry(task_type).or_default().push(idx);
    }

    /// Total number of stored records.
    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All records for one (task type, machine) combination, in insertion
    /// order. This is the query Sizey issues on every task submission.
    pub fn history(&self, key: &TaskMachineKey) -> Vec<Arc<TaskRecord>> {
        let inner = self.inner.read();
        inner
            .by_key
            .get(key)
            .map(|idxs| {
                idxs.iter()
                    .map(|&i| Arc::clone(&inner.records[i]))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All records of a task type regardless of machine, in insertion order.
    pub fn history_for_task_type(&self, task_type: &TaskTypeId) -> Vec<Arc<TaskRecord>> {
        let inner = self.inner.read();
        inner
            .by_task_type
            .get(task_type)
            .map(|idxs| {
                idxs.iter()
                    .map(|&i| Arc::clone(&inner.records[i]))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Only the successful records for a (task type, machine) combination.
    /// Models are trained on successful executions — failed attempts never
    /// observed the true peak.
    pub fn successful_history(&self, key: &TaskMachineKey) -> Vec<Arc<TaskRecord>> {
        self.history(key)
            .into_iter()
            .filter(|r| r.outcome == TaskOutcome::Succeeded)
            .collect()
    }

    /// Number of executions recorded for a (task type, machine) combination.
    pub fn count(&self, key: &TaskMachineKey) -> usize {
        self.inner.read().by_key.get(key).map_or(0, Vec::len)
    }

    /// True when the task type has been observed before on any machine.
    pub fn knows_task_type(&self, task_type: &TaskTypeId) -> bool {
        self.inner.read().by_task_type.contains_key(task_type)
    }

    /// Largest peak memory ever observed for a (task type, machine)
    /// combination, if any. Used by the failure-handling strategy.
    pub fn max_observed_peak(&self, key: &TaskMachineKey) -> Option<f64> {
        self.history(key)
            .iter()
            .map(|r| r.peak_memory_bytes)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// All distinct task types seen so far.
    pub fn task_types(&self) -> Vec<TaskTypeId> {
        let inner = self.inner.read();
        let mut types: Vec<TaskTypeId> = inner.by_task_type.keys().cloned().collect();
        types.sort();
        types
    }

    /// A snapshot of every stored record in insertion order.
    pub fn all_records(&self) -> Vec<Arc<TaskRecord>> {
        self.inner.read().records.iter().map(Arc::clone).collect()
    }

    /// Sets the number of currently running tasks (maintained by the
    /// execution environment).
    pub fn set_running_tasks(&self, n: u32) {
        self.inner.write().running_tasks = n;
    }

    /// The number of currently running tasks.
    pub fn running_tasks(&self) -> u32 {
        self.inner.read().running_tasks
    }

    /// Removes all records (used between simulated workflow executions).
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.records.clear();
        inner.by_key.clear();
        inner.by_task_type.clear();
        inner.running_tasks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MachineId;

    fn record(task: &str, machine: &str, seq: u64, peak: f64, outcome: TaskOutcome) -> TaskRecord {
        TaskRecord {
            workflow: "wf".to_string(),
            task_type: TaskTypeId::new(task),
            machine: MachineId::new(machine),
            sequence: seq,
            input_bytes: 1e9 + seq as f64,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 2.0,
            runtime_seconds: 60.0,
            concurrent_tasks: 1,
            queue_delay_seconds: 0.0,
            outcome,
        }
    }

    #[test]
    fn insert_and_query_by_key() {
        let store = ProvenanceStore::new();
        store.insert(record("a", "m1", 0, 1e9, TaskOutcome::Succeeded));
        store.insert(record("a", "m2", 1, 2e9, TaskOutcome::Succeeded));
        store.insert(record("b", "m1", 2, 3e9, TaskOutcome::Succeeded));
        assert_eq!(store.len(), 3);

        let key = TaskMachineKey::new("a", "m1");
        let hist = store.history(&key);
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].peak_memory_bytes, 1e9);
        assert_eq!(store.count(&key), 1);
        assert_eq!(store.count(&TaskMachineKey::new("a", "m2")), 1);
        assert_eq!(store.count(&TaskMachineKey::new("z", "m1")), 0);
    }

    #[test]
    fn history_preserves_insertion_order() {
        let store = ProvenanceStore::new();
        for seq in 0..10 {
            store.insert(record("a", "m1", seq, seq as f64, TaskOutcome::Succeeded));
        }
        let hist = store.history(&TaskMachineKey::new("a", "m1"));
        let seqs: Vec<u64> = hist.iter().map(|r| r.sequence).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn successful_history_filters_failures() {
        let store = ProvenanceStore::new();
        store.insert(record("a", "m1", 0, 1e9, TaskOutcome::Succeeded));
        store.insert(record("a", "m1", 1, 2e9, TaskOutcome::FailedOutOfMemory));
        let key = TaskMachineKey::new("a", "m1");
        assert_eq!(store.history(&key).len(), 2);
        assert_eq!(store.successful_history(&key).len(), 1);
    }

    #[test]
    fn history_for_task_type_spans_machines() {
        let store = ProvenanceStore::new();
        store.insert(record("a", "m1", 0, 1e9, TaskOutcome::Succeeded));
        store.insert(record("a", "m2", 1, 2e9, TaskOutcome::Succeeded));
        assert_eq!(store.history_for_task_type(&TaskTypeId::new("a")).len(), 2);
        assert!(store.knows_task_type(&TaskTypeId::new("a")));
        assert!(!store.knows_task_type(&TaskTypeId::new("b")));
    }

    #[test]
    fn max_observed_peak_tracks_maximum() {
        let store = ProvenanceStore::new();
        let key = TaskMachineKey::new("a", "m1");
        assert_eq!(store.max_observed_peak(&key), None);
        store.insert(record("a", "m1", 0, 1e9, TaskOutcome::Succeeded));
        store.insert(record("a", "m1", 1, 5e9, TaskOutcome::FailedOutOfMemory));
        store.insert(record("a", "m1", 2, 3e9, TaskOutcome::Succeeded));
        assert_eq!(store.max_observed_peak(&key), Some(5e9));
    }

    #[test]
    fn task_types_are_sorted_and_unique() {
        let store = ProvenanceStore::new();
        store.insert(record("b", "m1", 0, 1.0, TaskOutcome::Succeeded));
        store.insert(record("a", "m1", 1, 1.0, TaskOutcome::Succeeded));
        store.insert(record("a", "m2", 2, 1.0, TaskOutcome::Succeeded));
        let types = store.task_types();
        assert_eq!(types, vec![TaskTypeId::new("a"), TaskTypeId::new("b")]);
    }

    #[test]
    fn running_tasks_counter() {
        let store = ProvenanceStore::new();
        assert_eq!(store.running_tasks(), 0);
        store.set_running_tasks(7);
        assert_eq!(store.running_tasks(), 7);
    }

    #[test]
    fn clear_resets_everything() {
        let store = ProvenanceStore::new();
        store.insert(record("a", "m1", 0, 1.0, TaskOutcome::Succeeded));
        store.set_running_tasks(3);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.running_tasks(), 0);
        assert!(store.task_types().is_empty());
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let store = Arc::new(ProvenanceStore::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..50 {
                        store.insert(record("a", "m1", t * 100 + i, 1e9, TaskOutcome::Succeeded));
                        let _ = store.history(&TaskMachineKey::new("a", "m1"));
                    }
                });
            }
        });
        assert_eq!(store.len(), 200);
    }
}
