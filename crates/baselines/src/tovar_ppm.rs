//! The Tovar-PPM baseline.
//!
//! Tovar et al. (TPDS 2018, "A job sizing strategy for high-throughput
//! scientific workflows") size tasks from the empirical probability
//! distribution of historical peak memory values: the first allocation is the
//! candidate value (among the observed peaks) that minimises the expected
//! cost, where the cost of a sufficient allocation is its surplus and the
//! cost of an insufficient allocation is the wasted attempt plus a
//! conservative re-run at the machine maximum. If the first allocation fails,
//! the node's maximum memory is allocated (the authors' conservative failure
//! handling).

use crate::history::History;
use sizey_provenance::{TaskMachineKey, TaskRecord};
use sizey_sim::{AttemptContext, MemoryPredictor, Prediction, TaskSubmission};

/// Default node memory used for the conservative retry (the evaluation
/// cluster's 128 GB nodes); override via [`TovarPpmConfig`] when simulating a
/// different cluster.
pub const NODE_MEMORY_BYTES: f64 = 128e9;

/// Configuration of [`TovarPpm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TovarPpmConfig {
    /// Memory allocated after a failed first attempt (the node maximum).
    pub node_memory_bytes: f64,
    /// Minimum number of historical observations before the probabilistic
    /// sizing is used; below this the preset is used.
    pub min_history: usize,
    /// Relative head-room added on top of the selected candidate peak so that
    /// a recurrence of exactly the largest observed value still fits.
    pub headroom: f64,
}

impl Default for TovarPpmConfig {
    fn default() -> Self {
        TovarPpmConfig {
            node_memory_bytes: NODE_MEMORY_BYTES,
            min_history: 2,
            headroom: 0.02,
        }
    }
}

/// Peak-probability based first-allocation strategy with conservative retry.
#[derive(Debug, Default, Clone)]
pub struct TovarPpm {
    config: TovarPpmConfig,
    history: History,
}

impl TovarPpm {
    /// Creates the predictor with default configuration.
    pub fn new() -> Self {
        TovarPpm::default()
    }

    /// Creates the predictor with a custom configuration.
    pub fn with_config(config: TovarPpmConfig) -> Self {
        TovarPpm {
            config,
            history: History::new(),
        }
    }

    fn key(task: &TaskSubmission) -> TaskMachineKey {
        TaskMachineKey {
            task_type: task.task_type.clone(),
            machine: task.machine.clone(),
        }
    }

    /// Expected cost of allocating `alloc` given the empirical peak sample.
    fn expected_cost(&self, alloc: f64, peaks: &[f64]) -> f64 {
        let n = peaks.len() as f64;
        peaks
            .iter()
            .map(|&peak| {
                if alloc >= peak {
                    alloc - peak
                } else {
                    // Failed attempt wastes the allocation, and the retry at
                    // the machine maximum wastes the surplus there.
                    alloc + (self.config.node_memory_bytes - peak)
                }
            })
            .sum::<f64>()
            / n
    }

    /// Picks the observed peak value (plus head-room) with the least expected
    /// cost, or `None` without enough history.
    fn estimate(&self, task: &TaskSubmission) -> Option<f64> {
        let key = Self::key(task);
        let peaks = self.history.peaks(&key);
        if peaks.len() < self.config.min_history {
            return None;
        }
        let mut best = None;
        let mut best_cost = f64::INFINITY;
        for &candidate in &peaks {
            let alloc = candidate * (1.0 + self.config.headroom);
            let cost = self.expected_cost(alloc, &peaks);
            if cost < best_cost {
                best_cost = cost;
                best = Some(alloc);
            }
        }
        best
    }
}

impl MemoryPredictor for TovarPpm {
    fn name(&self) -> String {
        "Tovar-PPM".to_string()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        if ctx.attempt > 0 {
            // Conservative failure handling: jump straight to the node
            // maximum.
            return Prediction {
                allocation_bytes: self.config.node_memory_bytes,
                raw_estimate_bytes: None,
                selected_model: None,
            };
        }
        let raw = self.estimate(task);
        Prediction {
            allocation_bytes: raw.unwrap_or(task.preset_memory_bytes),
            raw_estimate_bytes: raw,
            selected_model: None,
        }
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.history.observe(record);
    }
}

crate::history::impl_history_checkpoint!(TovarPpm);

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::{MachineId, TaskOutcome, TaskTypeId};

    fn submission() -> TaskSubmission {
        TaskSubmission {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: 1e9,
            preset_memory_bytes: 12e9,
        }
    }

    fn success(peak: f64) -> TaskRecord {
        TaskRecord {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: 1e9,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 2.0,
            runtime_seconds: 60.0,
            concurrent_tasks: 0,
            queue_delay_seconds: 0.0,
            outcome: TaskOutcome::Succeeded,
        }
    }

    #[test]
    fn preset_before_history_and_node_max_on_retry() {
        let p = TovarPpm::new();
        assert_eq!(
            p.predict(&submission(), AttemptContext::first())
                .allocation_bytes,
            12e9
        );
        assert_eq!(
            p.predict(&submission(), AttemptContext::retry(1, 12e9))
                .allocation_bytes,
            NODE_MEMORY_BYTES
        );
    }

    #[test]
    fn tight_distribution_selects_near_the_maximum_peak() {
        let mut p = TovarPpm::new();
        for peak in [4.0e9, 4.1e9, 4.2e9, 4.05e9, 4.15e9] {
            p.observe(&success(peak));
        }
        let alloc = p
            .predict(&submission(), AttemptContext::first())
            .allocation_bytes;
        // With a tight distribution the expected-cost minimiser covers all
        // observed peaks (failures are expensive).
        assert!(alloc >= 4.2e9, "alloc = {alloc}");
        assert!(alloc < 5.0e9, "alloc = {alloc}");
    }

    #[test]
    fn rare_huge_outlier_may_be_left_uncovered() {
        let cfg = TovarPpmConfig {
            node_memory_bytes: 16e9,
            ..TovarPpmConfig::default()
        };
        let mut p = TovarPpm::with_config(cfg);
        // 99 small peaks at ~1 GB and one at 15 GB: covering the outlier
        // would waste ~14 GB on every task, which costs more than one retry.
        for _ in 0..99 {
            p.observe(&success(1e9));
        }
        p.observe(&success(15e9));
        let alloc = p
            .predict(&submission(), AttemptContext::first())
            .allocation_bytes;
        assert!(alloc < 5e9, "alloc = {alloc}");
    }

    #[test]
    fn expected_cost_matches_manual_computation() {
        let p = TovarPpm::new();
        let peaks = [1.0, 3.0];
        // alloc = 2: covers first (cost 1), misses second
        // (cost 2 + node - 3).
        let node = NODE_MEMORY_BYTES;
        let expected = (1.0 + (2.0 + node - 3.0)) / 2.0;
        assert!((p.expected_cost(2.0, &peaks) - expected).abs() < 1e-6);
    }

    #[test]
    fn failed_records_are_ignored_for_the_distribution() {
        let mut p = TovarPpm::new();
        let mut failed = success(100e9);
        failed.outcome = TaskOutcome::FailedOutOfMemory;
        p.observe(&failed);
        p.observe(&success(2e9));
        // Only one successful observation < min_history → preset.
        assert_eq!(
            p.predict(&submission(), AttemptContext::first())
                .allocation_bytes,
            12e9
        );
    }
}
