//! Plain-text trace format for task execution records.
//!
//! The format is a simple tab-separated file with a header line, one record
//! per line. It is intentionally trivial — the paper's provenance data is a
//! table of task metrics — and avoids pulling a serialisation format crate
//! into the workspace. Round-tripping is covered by unit and property tests.

use crate::record::{MachineId, TaskOutcome, TaskRecord, TaskTypeId};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Column header written to and expected from trace files.
const HEADER: &str = "workflow\ttask_type\tmachine\tsequence\tinput_bytes\tpeak_memory_bytes\tallocated_memory_bytes\truntime_seconds\tconcurrent_tasks\tqueue_delay_seconds\toutcome";

/// Header of the pre-scheduler trace format (no queue-delay column). Traces
/// written before the event-driven scheduler existed are still readable;
/// their records get a queue delay of zero.
const LEGACY_HEADER: &str = "workflow\ttask_type\tmachine\tsequence\tinput_bytes\tpeak_memory_bytes\tallocated_memory_bytes\truntime_seconds\tconcurrent_tasks\toutcome";

/// Errors produced while reading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (wrong column count, unparsable number, unknown
    /// outcome, missing header).
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Formats one record as a trace line (no trailing newline). The single
/// source of truth for the line format, shared by the batch serialiser and
/// the streaming [`TraceWriter`].
fn format_record_line(out: &mut String, r: &TaskRecord) {
    let outcome = match r.outcome {
        TaskOutcome::Succeeded => "ok",
        TaskOutcome::FailedOutOfMemory => "oom",
    };
    // Writing to a String cannot fail.
    let _ = write!(
        out,
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        r.workflow,
        r.task_type.as_str(),
        r.machine.as_str(),
        r.sequence,
        r.input_bytes,
        r.peak_memory_bytes,
        r.allocated_memory_bytes,
        r.runtime_seconds,
        r.concurrent_tasks,
        r.queue_delay_seconds,
        outcome
    );
}

/// Parses one trace line into a record. Returns `Ok(None)` for blank lines.
/// Shared by the batch parser and the streaming [`TraceReader`].
fn parse_record_line(
    line: &str,
    line_no: usize,
    legacy: bool,
) -> Result<Option<TaskRecord>, TraceError> {
    if line.trim().is_empty() {
        return Ok(None);
    }
    let columns = if legacy { 10 } else { 11 };
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != columns {
        return Err(TraceError::Parse {
            line: line_no,
            message: format!("expected {columns} columns, found {}", fields.len()),
        });
    }
    let parse_f64 = |s: &str, name: &str| -> Result<f64, TraceError> {
        s.parse::<f64>().map_err(|e| TraceError::Parse {
            line: line_no,
            message: format!("invalid {name} {s:?}: {e}"),
        })
    };
    let outcome = match fields[columns - 1] {
        "ok" => TaskOutcome::Succeeded,
        "oom" => TaskOutcome::FailedOutOfMemory,
        other => {
            return Err(TraceError::Parse {
                line: line_no,
                message: format!("unknown outcome {other:?}"),
            })
        }
    };
    Ok(Some(TaskRecord {
        workflow: fields[0].to_string(),
        task_type: TaskTypeId::new(fields[1]),
        machine: MachineId::new(fields[2]),
        sequence: fields[3].parse().map_err(|e| TraceError::Parse {
            line: line_no,
            message: format!("invalid sequence {:?}: {e}", fields[3]),
        })?,
        input_bytes: parse_f64(fields[4], "input_bytes")?,
        peak_memory_bytes: parse_f64(fields[5], "peak_memory_bytes")?,
        allocated_memory_bytes: parse_f64(fields[6], "allocated_memory_bytes")?,
        runtime_seconds: parse_f64(fields[7], "runtime_seconds")?,
        concurrent_tasks: fields[8].parse().map_err(|e| TraceError::Parse {
            line: line_no,
            message: format!("invalid concurrent_tasks {:?}: {e}", fields[8]),
        })?,
        queue_delay_seconds: if legacy {
            0.0
        } else {
            parse_f64(fields[9], "queue_delay_seconds")?
        },
        outcome,
    }))
}

/// Serialises records into the tab-separated trace format. Generic over
/// owned and `Arc`-shared records, so event-sourced snapshots can serialise
/// their journals without deep-cloning them first.
pub fn to_trace_string<R: std::borrow::Borrow<TaskRecord>>(records: &[R]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str(HEADER);
    out.push('\n');
    for r in records {
        format_record_line(&mut out, r.borrow());
        out.push('\n');
    }
    out
}

/// An incremental trace writer: emits the header on construction, then one
/// line per [`TraceWriter::write_record`] call. Byte-identical output to
/// [`to_trace_string`] over the same records, without ever holding more than
/// one line in memory — the `--trace` sink of the streaming replay writes
/// through this.
#[derive(Debug)]
pub struct TraceWriter<W: io::Write> {
    out: W,
    line: String,
    records_written: u64,
}

impl<W: io::Write> TraceWriter<W> {
    /// Wraps a sink and writes the trace header to it.
    pub fn new(mut out: W) -> Result<Self, TraceError> {
        out.write_all(HEADER.as_bytes())?;
        out.write_all(b"\n")?;
        Ok(TraceWriter {
            out,
            line: String::with_capacity(128),
            records_written: 0,
        })
    }

    /// Appends one record as a trace line.
    pub fn write_record(&mut self, record: &TaskRecord) -> Result<(), TraceError> {
        self.line.clear();
        format_record_line(&mut self.line, record);
        self.line.push('\n');
        self.out.write_all(self.line.as_bytes())?;
        self.records_written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Creates a buffered [`TraceWriter`] over a freshly created file.
pub fn trace_writer_to_file(
    path: impl AsRef<Path>,
) -> Result<TraceWriter<io::BufWriter<fs::File>>, TraceError> {
    let file = fs::File::create(path)?;
    TraceWriter::new(io::BufWriter::new(file))
}

/// A streaming trace reader: parses the header (current or legacy) on
/// construction, then yields one record per line without materialising the
/// whole trace. Iterating stops at the first error (the error itself is
/// yielded).
#[derive(Debug)]
pub struct TraceReader<R: io::BufRead> {
    input: R,
    /// Whether the header announced the pre-scheduler 10-column format.
    legacy: bool,
    /// 1-based number of the next line to read.
    next_line_no: usize,
    buf: String,
    done: bool,
}

impl<R: io::BufRead> TraceReader<R> {
    /// Wraps a source and consumes its header line. Empty input yields a
    /// reader with no records, matching [`from_trace_string`].
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut first = String::new();
        let n = input.read_line(&mut first)?;
        let (legacy, done) = if n == 0 {
            (false, true)
        } else {
            match first.trim_end_matches(['\n', '\r']).trim() {
                h if h == HEADER => (false, false),
                h if h == LEGACY_HEADER => (true, false),
                other => {
                    return Err(TraceError::Parse {
                        line: 1,
                        message: format!("unexpected header: {other:?}"),
                    })
                }
            }
        };
        Ok(TraceReader {
            input,
            legacy,
            next_line_no: 2,
            buf: String::with_capacity(128),
            done,
        })
    }

    /// True when the header announced the legacy 10-column format (records
    /// parse with a queue delay of zero).
    pub fn is_legacy(&self) -> bool {
        self.legacy
    }
}

impl<R: io::BufRead> Iterator for TraceReader<R> {
    type Item = Result<TaskRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            self.buf.clear();
            match self.input.read_line(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(TraceError::Io(e)));
                }
            }
            let line_no = self.next_line_no;
            self.next_line_no += 1;
            let line = self.buf.trim_end_matches(['\n', '\r']);
            match parse_record_line(line, line_no, self.legacy) {
                Ok(Some(record)) => return Some(Ok(record)),
                Ok(None) => continue, // blank line
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

/// Creates a buffered [`TraceReader`] over a trace file.
pub fn trace_reader_from_file(
    path: impl AsRef<Path>,
) -> Result<TraceReader<io::BufReader<fs::File>>, TraceError> {
    let file = fs::File::open(path)?;
    TraceReader::new(io::BufReader::new(file))
}

/// Parses records from the tab-separated trace format.
pub fn from_trace_string(content: &str) -> Result<Vec<TaskRecord>, TraceError> {
    let mut lines = content.lines().enumerate();
    let legacy = match lines.next() {
        Some((_, first)) if first.trim() == HEADER => false,
        Some((_, first)) if first.trim() == LEGACY_HEADER => true,
        Some((_, first)) => {
            return Err(TraceError::Parse {
                line: 1,
                message: format!("unexpected header: {first:?}"),
            })
        }
        None => return Ok(Vec::new()),
    };

    let mut records = Vec::new();
    for (idx, line) in lines {
        if let Some(record) = parse_record_line(line, idx + 1, legacy)? {
            records.push(record);
        }
    }
    Ok(records)
}

/// Writes records to a trace file.
pub fn write_trace<R: std::borrow::Borrow<TaskRecord>>(
    path: &Path,
    records: &[R],
) -> Result<(), TraceError> {
    fs::write(path, to_trace_string(records))?;
    Ok(())
}

/// Reads records from a trace file.
pub fn read_trace(path: &Path) -> Result<Vec<TaskRecord>, TraceError> {
    let content = fs::read_to_string(path)?;
    from_trace_string(&content)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TaskRecord> {
        (0..5)
            .map(|i| TaskRecord {
                workflow: "mag".to_string(),
                task_type: TaskTypeId::new(format!("task-{}", i % 2)),
                machine: MachineId::new("node-1"),
                sequence: i,
                input_bytes: 1e9 * (i + 1) as f64,
                peak_memory_bytes: 2e9 + i as f64,
                allocated_memory_bytes: 4e9,
                runtime_seconds: 120.5 + i as f64,
                concurrent_tasks: i as u32,
                queue_delay_seconds: i as f64 * 1.5,
                outcome: if i % 3 == 0 {
                    TaskOutcome::FailedOutOfMemory
                } else {
                    TaskOutcome::Succeeded
                },
            })
            .collect()
    }

    #[test]
    fn round_trip_through_string() {
        let records = sample_records();
        let text = to_trace_string(&records);
        let parsed = from_trace_string(&text).unwrap();
        assert_eq!(records, parsed);
    }

    #[test]
    fn round_trip_through_file() {
        let records = sample_records();
        let dir = std::env::temp_dir().join("sizey-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.tsv");
        write_trace(&path, &records).unwrap();
        let parsed = read_trace(&path).unwrap();
        assert_eq!(records, parsed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_input_parses_to_empty() {
        assert!(from_trace_string("").unwrap().is_empty());
        let header_only = format!("{HEADER}\n");
        assert!(from_trace_string(&header_only).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_header() {
        let err = from_trace_string("nope\n1\t2\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_wrong_column_count() {
        let text = format!("{HEADER}\na\tb\tc\n");
        let err = from_trace_string(&text).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_unknown_outcome() {
        let mut records = sample_records();
        records.truncate(1);
        let text = to_trace_string(&records).replace("oom", "exploded");
        let err = from_trace_string(&text).unwrap_err();
        assert!(err.to_string().contains("unknown outcome"));
    }

    #[test]
    fn rejects_unparsable_number() {
        let mut records = sample_records();
        records.truncate(1);
        let text = to_trace_string(&records).replace("4000000000", "not-a-number");
        assert!(from_trace_string(&text).is_err());
    }

    #[test]
    fn legacy_traces_without_queue_delay_still_parse() {
        let text =
            format!("{LEGACY_HEADER}\nmag\tassembly\tnode-1\t7\t1e9\t2e9\t4e9\t120.5\t3\tok\n");
        let records = from_trace_string(&text).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].sequence, 7);
        assert_eq!(records[0].queue_delay_seconds, 0.0);
        assert_eq!(records[0].outcome, TaskOutcome::Succeeded);
    }

    #[test]
    fn streaming_writer_matches_batch_serialiser_byte_for_byte() {
        let records = sample_records();
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        assert_eq!(writer.records_written(), records.len() as u64);
        let bytes = writer.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), to_trace_string(&records));
    }

    #[test]
    fn streaming_reader_round_trips_incremental_writes() {
        let records = sample_records();
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        let bytes = writer.finish().unwrap();
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(!reader.is_legacy());
        let parsed: Vec<TaskRecord> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(parsed, records);
    }

    #[test]
    fn streaming_reader_matches_batch_parser_on_legacy_header() {
        let text =
            format!("{LEGACY_HEADER}\nmag\tassembly\tnode-1\t7\t1e9\t2e9\t4e9\t120.5\t3\tok\n");
        let reader = TraceReader::new(text.as_bytes()).unwrap();
        assert!(reader.is_legacy());
        let streamed: Vec<TaskRecord> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(streamed, from_trace_string(&text).unwrap());
        assert_eq!(streamed[0].queue_delay_seconds, 0.0);
    }

    #[test]
    fn streaming_reader_handles_empty_input_and_bad_header() {
        let empty = TraceReader::new(&b""[..]).unwrap();
        assert_eq!(empty.count(), 0);
        assert!(matches!(
            TraceReader::new(&b"nope\n"[..]),
            Err(TraceError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn streaming_reader_reports_parse_errors_with_line_numbers() {
        let text = format!("{HEADER}\nbad\tline\n");
        let mut reader = TraceReader::new(text.as_bytes()).unwrap();
        match reader.next() {
            Some(Err(TraceError::Parse { line, .. })) => assert_eq!(line, 2),
            other => panic!("expected a parse error, got {other:?}"),
        }
        // The reader fuses after an error.
        assert!(reader.next().is_none());
    }

    #[test]
    fn streaming_file_round_trip() {
        let records = sample_records();
        let dir = std::env::temp_dir().join("sizey-trace-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.tsv");
        let mut writer = trace_writer_to_file(&path).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        // The incrementally written file equals the legacy whole-Vec path...
        assert_eq!(read_trace(&path).unwrap(), records);
        // ...and streams back identically.
        let parsed: Vec<TaskRecord> = trace_reader_from_file(&path)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(parsed, records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn skips_blank_lines() {
        let records = sample_records();
        let mut text = to_trace_string(&records);
        text.push_str("\n\n");
        assert_eq!(from_trace_string(&text).unwrap().len(), records.len());
    }
}
