//! Discrete-event primitives: the virtual-time event heap and the pending
//! (waiting) task queue.
//!
//! Both structures are deliberately deterministic: the event heap breaks
//! simultaneous-event ties by insertion order, and the pending queue is a
//! plain FIFO that policies inspect (head-only for first/best fit, a bounded
//! window for backfill). Determinism matters — the property suite replays
//! identical workloads and expects identical schedules.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// An entry in the virtual-time event heap: a payload that becomes due at
/// `time`. Ties are broken by `seq`, the monotonically increasing insertion
/// index assigned by [`EventHeap::push`].
#[derive(Debug, Clone)]
struct HeapEntry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the BinaryHeap pops the earliest (time, seq) first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of timed events over virtual simulation time.
#[derive(Debug, Clone)]
pub struct EventHeap<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        EventHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at virtual time `time`.
    pub fn push(&mut self, time: f64, payload: T) {
        debug_assert!(time.is_finite(), "event times must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, payload });
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Virtual time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A task waiting for cluster resources.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingTask<T> {
    /// Virtual time at which the task was submitted (entered the queue).
    pub submit_time: f64,
    /// Memory the task requests, in bytes (already clamped to the largest
    /// node by the caller).
    pub allocation_bytes: f64,
    /// Opaque scheduler payload (tenant, instance, attempt, prediction …).
    pub payload: T,
}

/// FIFO queue of tasks waiting for resources.
///
/// The queue itself has no policy; the scheduler decides whether only the
/// head may dispatch (strict FIFO — first fit / best fit) or whether a
/// bounded window behind a blocked head may be scanned (backfill).
#[derive(Debug, Clone, Default)]
pub struct PendingQueue<T> {
    tasks: VecDeque<PendingTask<T>>,
    /// High-water mark of the queue depth.
    peak_len: usize,
}

impl<T> PendingQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        PendingQueue {
            tasks: VecDeque::new(),
            peak_len: 0,
        }
    }

    /// Appends a task at the tail.
    pub fn push_back(&mut self, task: PendingTask<T>) {
        self.tasks.push_back(task);
        self.peak_len = self.peak_len.max(self.tasks.len());
    }

    /// Inserts a task at the head — used for retries, which re-enter the
    /// queue with their original priority instead of waiting behind
    /// everything submitted while they ran.
    pub fn push_front(&mut self, task: PendingTask<T>) {
        self.tasks.push_front(task);
        self.peak_len = self.peak_len.max(self.tasks.len());
    }

    /// The task at the head of the queue, if any.
    pub fn front(&self) -> Option<&PendingTask<T>> {
        self.tasks.front()
    }

    /// Removes and returns the task at `index` (0 = head).
    pub fn remove(&mut self, index: usize) -> Option<PendingTask<T>> {
        self.tasks.remove(index)
    }

    /// Iterates the queued tasks from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &PendingTask<T>> {
        self.tasks.iter()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// High-water mark of the queue depth over the simulation.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut h = EventHeap::new();
        h.push(3.0, "c");
        h.push(1.0, "a");
        h.push(2.0, "b");
        assert_eq!(h.peek_time(), Some(1.0));
        assert_eq!(h.pop(), Some((1.0, "a")));
        assert_eq!(h.pop(), Some((2.0, "b")));
        assert_eq!(h.pop(), Some((3.0, "c")));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut h = EventHeap::new();
        for i in 0..20 {
            h.push(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| h.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn heap_len_and_empty() {
        let mut h: EventHeap<u8> = EventHeap::new();
        assert!(h.is_empty());
        h.push(0.0, 1);
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
    }

    #[test]
    fn pending_queue_is_fifo_with_peak_tracking() {
        let mut q = PendingQueue::new();
        for i in 0..3 {
            q.push_back(PendingTask {
                submit_time: i as f64,
                allocation_bytes: 1e9,
                payload: i,
            });
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.front().unwrap().payload, 0);
        // Remove from the middle (backfill) keeps order of the rest.
        let mid = q.remove(1).unwrap();
        assert_eq!(mid.payload, 1);
        assert_eq!(q.remove(0).unwrap().payload, 0);
        assert_eq!(q.remove(0).unwrap().payload, 2);
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 3);
    }
}
