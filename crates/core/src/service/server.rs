//! The async request-queue serving front-end: per-shard submission queues,
//! micro-batched observes, lock-free snapshot predicts.
//!
//! [`AsyncService`] composes the pieces of this subsystem into the pipeline
//! sketched in the [module docs](super):
//!
//! ```text
//! observe(record) ──route──▶ [shard queue] ──▶ micro-batcher (worker thread)
//!                                                │  observe_shard(batch)
//!                                                │  run_deferred(≤ cap)
//!                                                ▼
//! predict(task)  ◀──wait-free load── [SnapshotCell] ◀── publish clone
//! ```
//!
//! * **Predicts never take a lock.** Every shard's learned state is
//!   published as an immutable snapshot in a
//!   [`SnapshotCell`]; `predict` routes by the stable shard hash, takes the
//!   snapshot wait-free and runs the ordinary read path on it. A concurrent
//!   observe batch, retrain or snapshot publication cannot block it.
//! * **Observes are asynchronous.** `observe` enqueues onto the owning
//!   shard's bounded queue and returns; the shard's worker drains the queue
//!   in micro-batches (size cap + time window), applies them under the shard
//!   write lock, optionally runs capped deferred retrains, and publishes a
//!   fresh snapshot.
//! * **Backpressure is explicit.** Queues are bounded; the admission policy
//!   either blocks the submitter ([`AdmissionPolicy::Block`]) or sheds the
//!   record and counts it ([`AdmissionPolicy::Shed`]). The queue bound is an
//!   invariant, not a target.
//! * **Shutdown drains.** Dropping (or [`AsyncService::shutdown`]) closes
//!   the queues — rejecting new work — and joins the workers, which first
//!   process everything already accepted: accepted observes are never lost.
//!
//! **Bit-identity.** Records of one (task type, machine) key always land on
//! one shard's queue in submission order, so each shard's predictor consumes
//! the exact per-key record sequence the locked [`SharedSizey`] path would
//! have applied — and the snapshot is a deep [`Clone`] of that predictor.
//! After a [`flush`](AsyncService::flush), predictions through the snapshot
//! path are therefore bit-identical to the locked path and to a serial
//! predictor fed the same per-key sequences (pinned by the
//! `service_equivalence` proptests).
//!
//! [`SharedSizey`]: crate::serve::SharedSizey

// The predict path of the serving layer lives here; the marker opts the
// module into the no-panic-hot-path lint rule.
#![doc = "lint:hot-path"]

use crate::config::SizeyConfig;
use crate::serve::ConcurrentPredictor;
use crate::service::queue::BoundedQueue;
use crate::service::snapshot::SnapshotCell;
use crate::service::ServePredictor;
use crate::sizey::SizeyPredictor;
use parking_lot::{Condvar, Mutex};
use sizey_provenance::TaskRecord;
use sizey_sim::{AttemptContext, MemoryPredictor, Prediction, TaskSubmission};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What happens to an observe submission when its shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until the queue has room: backpressure
    /// propagates to the client, no record is ever dropped. The default.
    #[default]
    Block,
    /// Reject the record immediately and count it in
    /// [`ServiceStats::shed`]: the submitter stays fast under overload and
    /// the model simply learns from a sample of the traffic.
    Shed,
}

/// Tuning knobs of the [`AsyncService`] (see the [module docs](self) for
/// how each stage uses them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Bound of each per-shard submission queue.
    pub queue_capacity: usize,
    /// Most records one micro-batch applies under a single shard
    /// write-lock hold.
    pub batch_max: usize,
    /// How long the micro-batcher waits for stragglers after the first
    /// record of a batch arrives.
    pub batch_window: Duration,
    /// Full-queue behaviour: block the submitter or shed the record.
    pub admission: AdmissionPolicy,
    /// Stage periodic full retrains instead of running them inside observe,
    /// and drain them between micro-batches (capped per batch). Off by
    /// default: inline retrains keep the service bit-identical to the
    /// serial predictor for any batching.
    pub deferred_retrains: bool,
    /// With deferred retrains, at most this many staged retrains execute
    /// after one micro-batch; the backlog is visible in
    /// [`ServiceStats::retrain_backlog`].
    pub retrain_cap_per_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            batch_max: 64,
            batch_window: Duration::from_micros(200),
            admission: AdmissionPolicy::Block,
            deferred_retrains: false,
            retrain_cap_per_batch: 1,
        }
    }
}

/// A point-in-time reading of the service's monotonic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Predictions served (all through the lock-free snapshot path).
    pub predicts: u64,
    /// Observe submissions attempted.
    pub submitted: u64,
    /// Observe submissions accepted onto a shard queue.
    pub accepted: u64,
    /// Observe submissions rejected by admission control (full queue under
    /// [`AdmissionPolicy::Shed`], or any submission after shutdown began).
    pub shed: u64,
    /// Records applied to shard predictors by the workers.
    pub observed: u64,
    /// Micro-batches applied.
    pub batches: u64,
    /// Snapshots published (one per micro-batch that contained records).
    pub snapshots_published: u64,
    /// Deferred retrains executed and installed by the workers.
    pub retrains_installed: u64,
    /// Staged retrains not yet executed (the stall backlog a capped drain
    /// leaves behind; a gauge, not a monotonic counter).
    pub retrain_backlog: u64,
}

#[derive(Default)]
struct Counters {
    predicts: AtomicU64,
    submitted: AtomicU64,
    accepted: AtomicU64,
    shed: AtomicU64,
    observed: AtomicU64,
    batches: AtomicU64,
    snapshots_published: AtomicU64,
    retrains_installed: AtomicU64,
}

/// A countdown barrier: `flush` enqueues one marker per shard and waits
/// until every worker has arrived (i.e. processed everything queued before
/// the marker on its shard).
struct FlushGate {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl FlushGate {
    fn new(count: usize) -> Self {
        FlushGate {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn arrive(&self) {
        let mut remaining = self.remaining.lock();
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            remaining = self.done.wait(remaining);
        }
    }
}

/// A per-shard pause switch for chaos testing: the worker checks its gate
/// between micro-batches and parks while paused. Pausing never drops work —
/// the queue keeps accepting (or shedding, per admission policy) and the
/// worker drains everything once resumed.
struct PauseGate {
    paused: Mutex<bool>,
    resumed: Condvar,
}

impl PauseGate {
    fn new() -> Self {
        PauseGate {
            paused: Mutex::new(false),
            resumed: Condvar::new(),
        }
    }

    fn set(&self, paused: bool) {
        let mut flag = self.paused.lock();
        *flag = paused;
        if !paused {
            self.resumed.notify_all();
        }
    }

    fn wait_while_paused(&self) {
        let mut flag = self.paused.lock();
        while *flag {
            flag = self.resumed.wait(flag);
        }
    }
}

/// One message on a shard's submission queue.
enum ShardMsg {
    /// A monitoring record to learn from.
    Observe(TaskRecord),
    /// A flush barrier marker: the worker arrives at the gate once every
    /// message queued before it has been applied and published.
    Flush(Arc<FlushGate>),
}

struct ServiceInner<P> {
    service: ConcurrentPredictor<P>,
    queues: Vec<BoundedQueue<ShardMsg>>,
    snapshots: Vec<SnapshotCell<P>>,
    pauses: Vec<PauseGate>,
    config: ServiceConfig,
    counters: Counters,
}

/// The async serving front-end. See the [module docs](self) for the
/// pipeline and guarantees; [`AsyncSizey`] is the Sizey instantiation and
/// [`AsyncHandle`] the cloneable [`MemoryPredictor`] view for tenants.
pub struct AsyncService<P: ServePredictor> {
    inner: Arc<ServiceInner<P>>,
    workers: Vec<JoinHandle<()>>,
}

/// The async Sizey service.
pub type AsyncSizey = AsyncService<SizeyPredictor>;

impl<P: ServePredictor> AsyncService<P> {
    /// Wraps an existing sharded service: publishes each shard's initial
    /// snapshot and spawns one micro-batching worker thread per shard.
    pub fn new(service: ConcurrentPredictor<P>, config: ServiceConfig) -> Self {
        let shards = service.shard_count();
        if config.deferred_retrains {
            for shard in 0..shards {
                service.with_shard_mut(shard, |p| p.set_deferred(true));
            }
        }
        let snapshots = (0..shards)
            .map(|shard| SnapshotCell::new(Arc::new(service.clone_shard(shard))))
            .collect();
        let queues = (0..shards)
            .map(|_| BoundedQueue::new(config.queue_capacity))
            .collect();
        let pauses = (0..shards).map(|_| PauseGate::new()).collect();
        let inner = Arc::new(ServiceInner {
            service,
            queues,
            snapshots,
            pauses,
            config,
            counters: Counters::default(),
        });
        let workers = (0..shards)
            .map(|shard| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, shard))
            })
            .collect();
        AsyncService { inner, workers }
    }

    /// Number of shards (= submission queues = worker threads).
    pub fn shard_count(&self) -> usize {
        self.inner.service.shard_count()
    }

    /// Sizes one attempt through the **lock-free path**: routes to the
    /// owning shard, takes its current snapshot wait-free and predicts on
    /// it. Never blocks on observes, retrains or snapshot publications. The
    /// snapshot lags the live predictor by at most one micro-batch; use
    /// [`flush`](AsyncService::flush) first when a caller needs every
    /// accepted observe reflected.
    pub fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        self.inner.counters.predicts.fetch_add(1, Ordering::Relaxed);
        let shard = self.inner.service.shard_of_task(task);
        match self.inner.snapshots.get(shard) {
            Some(cell) => cell.load().predict(task, ctx),
            // Unreachable (routing is modulo the shard count), but the
            // locked path is a sound fallback and keeps this panic-free.
            None => self.inner.service.predict(task, ctx),
        }
    }

    /// Sizes one attempt through the **locked path** (shard read lock on
    /// the live predictor), bypassing the snapshot. Reference for the
    /// equivalence tests and for callers that need read-your-own-write
    /// without a flush.
    pub fn predict_locked(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        self.inner.service.predict(task, ctx)
    }

    /// Submits one finished attempt to the owning shard's queue and returns
    /// without waiting for it to be applied. Returns `true` when the record
    /// was accepted; `false` when admission control shed it (full queue
    /// under [`AdmissionPolicy::Shed`], or the service is shutting down).
    /// Under [`AdmissionPolicy::Block`] a full queue blocks instead — the
    /// submitter feels the backpressure.
    pub fn observe(&self, record: &TaskRecord) -> bool {
        self.inner
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        let shard = self.inner.service.shard_of_record(record);
        let Some(queue) = self.inner.queues.get(shard) else {
            self.inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let message = ShardMsg::Observe(record.clone());
        let outcome = match self.inner.config.admission {
            AdmissionPolicy::Block => queue.send(message),
            AdmissionPolicy::Shed => queue.try_send(message),
        };
        match outcome {
            Ok(()) => {
                self.inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.inner.counters.shed.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Waits until every observe accepted before this call has been applied
    /// to its shard predictor and published in a snapshot. After `flush`
    /// returns, [`predict`](AsyncService::predict) reflects all of them —
    /// the quiescent point the bit-identity guarantees are stated at.
    pub fn flush(&self) {
        let gate = Arc::new(FlushGate::new(self.inner.queues.len()));
        for queue in &self.inner.queues {
            // A closed queue means that worker already drained everything it
            // will ever see; arrive on its behalf.
            if queue.send(ShardMsg::Flush(Arc::clone(&gate))).is_err() {
                gate.arrive();
            }
        }
        gate.wait();
    }

    /// Current queue depth per shard (never above the configured capacity).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.inner.queues.iter().map(BoundedQueue::len).collect()
    }

    /// Chaos/fault-injection hook: parks `shard`'s worker before its next
    /// micro-batch. The shard's queue keeps admitting (or shedding, per the
    /// admission policy) while paused — nothing accepted is lost, the
    /// backlog just waits. A [`flush`](AsyncService::flush) issued while a
    /// worker is paused blocks until that worker is resumed; call
    /// [`resume_shard`](AsyncService::resume_shard) first. Shutdown resumes
    /// every shard itself, so a paused service still drains on drop.
    /// Out-of-range shards are ignored.
    pub fn pause_shard(&self, shard: usize) {
        if let Some(gate) = self.inner.pauses.get(shard) {
            gate.set(true);
        }
    }

    /// Releases a [`pause_shard`](AsyncService::pause_shard): the worker
    /// wakes and drains whatever queued up behind the pause.
    pub fn resume_shard(&self, shard: usize) {
        if let Some(gate) = self.inner.pauses.get(shard) {
            gate.set(false);
        }
    }

    /// A point-in-time reading of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            predicts: c.predicts.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            observed: c.observed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            snapshots_published: c.snapshots_published.load(Ordering::Relaxed),
            retrains_installed: c.retrains_installed.load(Ordering::Relaxed),
            retrain_backlog: self
                .inner
                .service
                .map_shards(|p| p.deferred_backlog() as u64)
                .iter()
                .sum(),
        }
    }

    /// The wrapped sharded service (telemetry, checkpoints). Mutating it
    /// directly bypasses the queues; the snapshots will catch up at the next
    /// micro-batch on the affected shard.
    pub fn service(&self) -> &ConcurrentPredictor<P> {
        &self.inner.service
    }

    /// Wraps the service in a cheap cloneable [`AsyncHandle`] implementing
    /// [`MemoryPredictor`] — the view multi-tenant replays hand to each
    /// tenant. The service shuts down (drain + join) when the last handle
    /// drops.
    pub fn into_handle(self) -> AsyncHandle<P> {
        AsyncHandle(Arc::new(self))
    }

    /// Graceful shutdown: closes every queue (new submissions are shed),
    /// waits for the workers to drain and apply everything already accepted,
    /// joins them, and returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        // Wake any paused workers first: the drain guarantee holds even if a
        // chaos hook left a shard parked.
        for gate in &self.inner.pauses {
            gate.set(false);
        }
        for queue in &self.inner.queues {
            queue.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl AsyncSizey {
    /// An async Sizey service: `shards` independent [`SizeyPredictor`]s with
    /// identical configuration behind the queue/snapshot front-end.
    pub fn sizey(config: SizeyConfig, shards: usize, service_config: ServiceConfig) -> Self {
        AsyncService::new(
            ConcurrentPredictor::new(shards, |_| SizeyPredictor::new(config.clone())),
            service_config,
        )
    }
}

impl<P: ServePredictor> Drop for AsyncService<P> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop<P: ServePredictor>(inner: &ServiceInner<P>, shard: usize) {
    let config = &inner.config;
    let (Some(queue), Some(cell), Some(pause)) = (
        inner.queues.get(shard),
        inner.snapshots.get(shard),
        inner.pauses.get(shard),
    ) else {
        return;
    };
    let mut messages: Vec<ShardMsg> = Vec::with_capacity(config.batch_max);
    let mut records: Vec<TaskRecord> = Vec::with_capacity(config.batch_max);
    let mut gates: Vec<Arc<FlushGate>> = Vec::new();
    loop {
        // Chaos hook: park between micro-batches while the shard is paused.
        pause.wait_while_paused();
        messages.clear();
        // Blocks for the first message, then drains the micro-batch window.
        // 0 means closed-and-drained: every accepted message was processed.
        if queue.recv_batch(&mut messages, config.batch_max, config.batch_window) == 0 {
            break;
        }
        records.clear();
        for message in messages.drain(..) {
            match message {
                ShardMsg::Observe(record) => records.push(record),
                ShardMsg::Flush(gate) => gates.push(gate),
            }
        }
        if !records.is_empty() {
            // One write-lock hold per batch, records in submission order —
            // per-key order is exactly the serial predictor's.
            inner.service.observe_shard(shard, &records);
            let mut installed = 0u64;
            if config.deferred_retrains {
                installed = inner
                    .service
                    .with_shard_mut(shard, |p| p.run_deferred(config.retrain_cap_per_batch))
                    as u64;
            }
            // Publish the new state; predicts switch over wait-free.
            cell.store(Arc::new(inner.service.clone_shard(shard)));
            let c = &inner.counters;
            c.observed
                .fetch_add(records.len() as u64, Ordering::Relaxed);
            c.batches.fetch_add(1, Ordering::Relaxed);
            c.snapshots_published.fetch_add(1, Ordering::Relaxed);
            c.retrains_installed.fetch_add(installed, Ordering::Relaxed);
        }
        // Arrive *after* the batch is applied and published: everything
        // queued before the marker is now visible to snapshot predicts.
        for gate in gates.drain(..) {
            gate.arrive();
        }
    }
}

/// A cloneable handle to an [`AsyncService`] implementing
/// [`MemoryPredictor`]: hand clones to several tenants and they share one
/// learned state — predicts are lock-free snapshot reads, observes enqueue
/// onto the async pipeline. The service drains and joins when the last
/// handle drops.
pub struct AsyncHandle<P: ServePredictor>(Arc<AsyncService<P>>);

/// The shared async Sizey handle.
pub type AsyncSizeyHandle = AsyncHandle<SizeyPredictor>;

impl<P: ServePredictor> Clone for AsyncHandle<P> {
    fn clone(&self) -> Self {
        AsyncHandle(Arc::clone(&self.0))
    }
}

impl<P: ServePredictor> AsyncHandle<P> {
    /// The underlying service (flush, stats, batch APIs).
    pub fn service(&self) -> &AsyncService<P> {
        &self.0
    }
}

impl<P: ServePredictor> MemoryPredictor for AsyncHandle<P> {
    fn name(&self) -> String {
        match self.0.inner.snapshots.first() {
            Some(cell) => cell.load().name(),
            None => String::new(),
        }
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        self.0.predict(task, ctx)
    }

    fn observe(&mut self, record: &TaskRecord) {
        // Under Block admission nothing is lost; under Shed the drop is
        // deliberate and counted.
        let _ = self.0.observe(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::{MachineId, TaskOutcome, TaskTypeId};

    fn submission(task_type: &str, seq: u64, input: f64) -> TaskSubmission {
        TaskSubmission {
            workflow: "wf".into(),
            task_type: TaskTypeId::new(task_type),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: input,
            preset_memory_bytes: 20e9,
        }
    }

    fn record(task_type: &str, seq: u64, input: f64, peak: f64) -> TaskRecord {
        TaskRecord {
            workflow: "wf".into(),
            task_type: TaskTypeId::new(task_type),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: input,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 1.5,
            runtime_seconds: 60.0,
            concurrent_tasks: 1,
            queue_delay_seconds: 0.0,
            outcome: TaskOutcome::Succeeded,
        }
    }

    #[test]
    fn observes_flow_through_and_flush_makes_them_visible() {
        let service = AsyncSizey::sizey(SizeyConfig::default(), 4, ServiceConfig::default());
        for i in 1..=20u64 {
            let input = i as f64 * 1e9;
            assert!(service.observe(&record("align", i, input, 2.0 * input + 1e9)));
        }
        service.flush();
        let pred = service.predict(&submission("align", 100, 5e9), AttemptContext::first());
        assert!(pred.raw_estimate_bytes.is_some(), "snapshot must be warm");
        assert!(pred.allocation_bytes < 20e9);
        let stats = service.stats();
        assert_eq!(stats.accepted, 20);
        assert_eq!(stats.observed, 20);
        assert_eq!(stats.shed, 0);
        assert!(stats.snapshots_published >= 1);
    }

    #[test]
    fn snapshot_and_locked_paths_agree_after_flush() {
        let service = AsyncSizey::sizey(SizeyConfig::default(), 4, ServiceConfig::default());
        for task_type in ["a", "b", "c"] {
            for i in 1..=15u64 {
                let input = i as f64 * 1e9;
                service.observe(&record(task_type, i, input, 1.7 * input + 5e8));
            }
        }
        service.flush();
        for task_type in ["a", "b", "c", "unseen"] {
            let task = submission(task_type, 500, 6.5e9);
            assert_eq!(
                service.predict(&task, AttemptContext::first()),
                service.predict_locked(&task, AttemptContext::first()),
                "snapshot diverged from the locked path on {task_type}"
            );
        }
    }

    #[test]
    fn shed_admission_bounds_queues_and_counts_drops() {
        let config = ServiceConfig {
            queue_capacity: 4,
            // A huge window and batch so the worker sits on its first batch
            // while we overflow the queue.
            batch_max: 1024,
            batch_window: Duration::from_millis(300),
            admission: AdmissionPolicy::Shed,
            ..ServiceConfig::default()
        };
        let service = AsyncSizey::sizey(SizeyConfig::default(), 1, config);
        let mut accepted = 0u64;
        for i in 1..=200u64 {
            if service.observe(&record("t", i, 1e9, 2e9)) {
                accepted += 1;
            }
            assert!(
                service.queue_depths().iter().all(|&d| d <= 4),
                "queue exceeded its capacity bound"
            );
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 200);
        assert_eq!(stats.accepted, accepted);
        assert_eq!(stats.accepted + stats.shed, stats.submitted);
        let final_stats = service.shutdown();
        // Every accepted record was applied before the workers exited.
        assert_eq!(final_stats.observed, accepted);
    }

    #[test]
    fn shutdown_drains_accepted_observes() {
        let service = AsyncSizey::sizey(SizeyConfig::default(), 2, ServiceConfig::default());
        for i in 1..=50u64 {
            let input = (i % 10 + 1) as f64 * 1e9;
            service.observe(&record("drain", i, input, 2.0 * input));
        }
        // No flush: shutdown itself must drain the queues.
        let stats = service.shutdown();
        assert_eq!(stats.accepted, 50);
        assert_eq!(stats.observed, 50, "accepted observes were lost");
    }

    #[test]
    fn deferred_retrains_install_and_backlog_is_visible() {
        let config = ServiceConfig {
            deferred_retrains: true,
            retrain_cap_per_batch: 1,
            ..ServiceConfig::default()
        };
        let service = AsyncSizey::sizey(SizeyConfig::default(), 2, config);
        for task_type in ["a", "b"] {
            for i in 1..=30u64 {
                let input = i as f64 * 1e9;
                service.observe(&record(task_type, i, input, 2.0 * input + 1e9));
            }
        }
        service.flush();
        let stats = service.stats();
        assert!(
            stats.retrains_installed >= 1,
            "the default interval (25) must trigger a deferred retrain"
        );
        let pred = service.predict(&submission("a", 900, 6e9), AttemptContext::first());
        assert!(pred.raw_estimate_bytes.is_some());
    }

    #[test]
    fn handle_clones_share_state_and_shutdown_on_last_drop() {
        let service = AsyncSizey::sizey(SizeyConfig::default(), 2, ServiceConfig::default());
        let mut writer = service.into_handle();
        let reader = writer.clone();
        for i in 1..=15u64 {
            let input = i as f64 * 1e9;
            MemoryPredictor::observe(&mut writer, &record("shared", i, input, 2.0 * input));
        }
        reader.service().flush();
        let through_reader =
            reader.predict(&submission("shared", 500, 5e9), AttemptContext::first());
        assert!(through_reader.raw_estimate_bytes.is_some());
        assert_eq!(reader.name(), "Sizey");
        drop(writer);
        drop(reader); // last handle: drains and joins without deadlock
    }

    #[test]
    fn paused_shard_backs_up_then_drains_with_exact_accounting() {
        let config = ServiceConfig {
            queue_capacity: 8,
            admission: AdmissionPolicy::Shed,
            ..ServiceConfig::default()
        };
        // Single shard: the pause stalls the whole service.
        let service = AsyncSizey::sizey(SizeyConfig::default(), 1, config);
        service.pause_shard(0);
        // Give the worker a moment to park so the queue genuinely backs up.
        std::thread::sleep(Duration::from_millis(20));
        let mut accepted = 0u64;
        for i in 1..=100u64 {
            if service.observe(&record("chaos", i, 1e9, 2e9)) {
                accepted += 1;
            }
        }
        let stalled = service.stats();
        assert_eq!(stalled.submitted, 100);
        assert_eq!(stalled.accepted, accepted);
        assert_eq!(stalled.accepted + stalled.shed, stalled.submitted);
        assert!(stalled.shed > 0, "a paused worker must back the queue up");
        // Resume: flush must drain the backlog, nothing accepted is lost.
        service.resume_shard(0);
        service.flush();
        let drained = service.stats();
        assert_eq!(drained.observed, drained.accepted);
        assert!(service.queue_depths().iter().all(|&d| d == 0));
        let final_stats = service.shutdown();
        assert_eq!(final_stats.observed, accepted);
    }

    #[test]
    fn shutdown_resumes_paused_workers_and_still_drains() {
        let service = AsyncSizey::sizey(SizeyConfig::default(), 2, ServiceConfig::default());
        for i in 1..=30u64 {
            service.observe(&record("park", i, 1e9, 2e9));
        }
        service.pause_shard(0);
        service.pause_shard(1);
        // No resume: shutdown itself must wake the workers and drain.
        let stats = service.shutdown();
        assert_eq!(stats.observed, stats.accepted);
        assert_eq!(stats.accepted + stats.shed, stats.submitted);
    }

    #[test]
    fn flush_on_idle_service_returns_immediately() {
        let service = AsyncSizey::sizey(SizeyConfig::default(), 4, ServiceConfig::default());
        service.flush();
        service.flush();
        assert_eq!(service.stats().observed, 0);
    }
}
