//! Fig. 8b — total memory wastage over time (GBh) aggregated over all six
//! workflows, for every method, with a time-to-failure of 0.5 (tasks fail
//! halfway through their execution).
//!
//! Run with `cargo run -p sizey-bench --release --bin fig08b_wastage_ttf05`.

use sizey_bench::{
    banner, evaluate_all_methods, fmt, generate_workloads, render_table, HarnessSettings,
    MethodSpec,
};
use sizey_sim::{aggregate_method, SimulationConfig};

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Fig. 8b: total memory wastage (GBh), all workflows, time-to-failure 0.5",
        &settings,
    );

    let workloads = generate_workloads(&settings);
    let sim = SimulationConfig::default().with_time_to_failure(0.5);
    let results = evaluate_all_methods(&workloads, &sim);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(method, reports)| {
            let agg = aggregate_method(reports);
            vec![
                method.name().to_string(),
                fmt(agg.total_wastage_gbh, 2),
                agg.total_failures.to_string(),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(&["Method", "Total Wastage GBh", "Failures"], &rows)
    );

    let sizey = aggregate_method(&results[0].1).total_wastage_gbh;
    let best_baseline = results
        .iter()
        .skip(1)
        .filter(|(m, _)| !matches!(m, MethodSpec::Preset))
        .map(|(_, r)| aggregate_method(r).total_wastage_gbh)
        .fold(f64::INFINITY, f64::min);
    println!(
        "Sizey vs best baseline: {}% lower wastage (paper: 60.60% lower than Witt-Wastage).",
        fmt((1.0 - sizey / best_baseline) * 100.0, 2)
    );
    println!("Paper reference (Fig. 8b): Sizey 1429.28, Witt-Wastage 4963.40, Witt-LR 3628.02,");
    println!("Tovar-PPM 4106.45, Witt-Percentile 4576.27, Workflow-Presets 28370.77 GBh.");
    println!("Expected shape: every learned method benefits from the lower time-to-failure;");
    println!("the presets do not change because they never fail.");
}
