//! The Witt-Percentile baseline.
//!
//! Witt et al. (HPCS 2019, "Feedback-based resource allocation for batch
//! scheduling of scientific workflows") propose a percentile predictor: the
//! allocation for a task is the p-th percentile of all historical peak memory
//! values of the same task type. The paper's evaluation uses the conservative
//! 95th percentile. Before any history exists the user preset is used, and a
//! failed attempt doubles the previous allocation.

use crate::history::History;
use sizey_ml::metrics::percentile;
use sizey_provenance::{TaskMachineKey, TaskRecord};
use sizey_sim::{AttemptContext, MemoryPredictor, Prediction, TaskSubmission};

/// Configuration of [`WittPercentile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WittPercentileConfig {
    /// Which percentile of the historical peaks to allocate (0-100).
    pub percentile: f64,
    /// Minimum number of historical observations before the percentile is
    /// trusted; below this the preset is used.
    pub min_history: usize,
}

impl Default for WittPercentileConfig {
    fn default() -> Self {
        WittPercentileConfig {
            percentile: 95.0,
            min_history: 2,
        }
    }
}

/// Percentile-based peak memory predictor.
#[derive(Debug, Default, Clone)]
pub struct WittPercentile {
    config: WittPercentileConfig,
    history: History,
}

impl WittPercentile {
    /// Creates the predictor with the paper's default (95th percentile).
    pub fn new() -> Self {
        WittPercentile {
            config: WittPercentileConfig::default(),
            history: History::new(),
        }
    }

    /// Creates the predictor with a custom configuration.
    pub fn with_config(config: WittPercentileConfig) -> Self {
        WittPercentile {
            config,
            history: History::new(),
        }
    }

    fn key(task: &TaskSubmission) -> TaskMachineKey {
        TaskMachineKey {
            task_type: task.task_type.clone(),
            machine: task.machine.clone(),
        }
    }

    fn base_estimate(&self, task: &TaskSubmission) -> f64 {
        let key = Self::key(task);
        if self.history.count(&key) < self.config.min_history {
            return task.preset_memory_bytes;
        }
        percentile(&self.history.peaks(&key), self.config.percentile)
    }
}

impl MemoryPredictor for WittPercentile {
    fn name(&self) -> String {
        "Witt-Percentile".to_string()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        let base = self.base_estimate(task);
        let allocation = base * 2.0_f64.powi(ctx.attempt as i32);
        Prediction {
            allocation_bytes: allocation,
            raw_estimate_bytes: Some(base),
            selected_model: None,
        }
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.history.observe(record);
    }
}

crate::history::impl_history_checkpoint!(WittPercentile);

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::{MachineId, TaskOutcome, TaskTypeId};

    fn submission() -> TaskSubmission {
        TaskSubmission {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: 1e9,
            preset_memory_bytes: 10e9,
        }
    }

    fn success(peak: f64) -> TaskRecord {
        TaskRecord {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: 1e9,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 2.0,
            runtime_seconds: 60.0,
            concurrent_tasks: 0,
            queue_delay_seconds: 0.0,
            outcome: TaskOutcome::Succeeded,
        }
    }

    #[test]
    fn uses_preset_without_history() {
        let p = WittPercentile::new();
        assert_eq!(
            p.predict(&submission(), AttemptContext::first())
                .allocation_bytes,
            10e9
        );
    }

    #[test]
    fn uses_95th_percentile_of_history() {
        let mut p = WittPercentile::new();
        for i in 1..=100 {
            p.observe(&success(i as f64 * 1e8));
        }
        let alloc = p
            .predict(&submission(), AttemptContext::first())
            .allocation_bytes;
        // 95th percentile of 0.1..10 GB is ~9.5 GB.
        assert!((alloc - 9.505e9).abs() < 0.1e9, "alloc = {alloc}");
    }

    #[test]
    fn doubles_on_retry() {
        let mut p = WittPercentile::new();
        p.observe(&success(2e9));
        p.observe(&success(4e9));
        let first = p
            .predict(&submission(), AttemptContext::first())
            .allocation_bytes;
        let second = p
            .predict(&submission(), AttemptContext::retry(1, first))
            .allocation_bytes;
        assert!((second - first * 2.0).abs() < 1e-6);
    }

    #[test]
    fn ignores_failed_records() {
        let mut p = WittPercentile::new();
        let mut failed = success(50e9);
        failed.outcome = TaskOutcome::FailedOutOfMemory;
        p.observe(&failed);
        assert_eq!(
            p.predict(&submission(), AttemptContext::first())
                .allocation_bytes,
            10e9
        );
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        use sizey_sim::lifecycle::{CheckpointPredictor, StateError};
        let mut original = WittPercentile::new();
        for i in 1..=20 {
            original.observe(&success(i as f64 * 1e8));
        }
        let state = original.snapshot();
        assert_eq!(state.journal.len(), 20);
        let mut restored = WittPercentile::new();
        restored.restore(&state).unwrap();
        let task = submission();
        assert_eq!(
            original.predict(&task, AttemptContext::first()),
            restored.predict(&task, AttemptContext::first())
        );
        assert_eq!(restored.snapshot(), state);
        // Restoring onto a non-fresh instance is refused.
        assert!(matches!(
            restored.restore(&state),
            Err(StateError::NotFresh { observed: 20 })
        ));
    }

    #[test]
    fn custom_percentile_is_respected() {
        let mut p = WittPercentile::with_config(WittPercentileConfig {
            percentile: 50.0,
            min_history: 2,
        });
        for peak in [1e9, 2e9, 3e9] {
            p.observe(&success(peak));
        }
        let alloc = p
            .predict(&submission(), AttemptContext::first())
            .allocation_bytes;
        assert!((alloc - 2e9).abs() < 1e-6);
    }
}
