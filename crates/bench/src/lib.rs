//! # sizey-bench
//!
//! Benchmark harness regenerating every table and figure of the Sizey
//! evaluation. Each experiment is a small binary under `src/bin/` (see
//! `DESIGN.md` §4 for the experiment ↔ binary index); this library holds the
//! shared machinery: method construction, full-evaluation sweeps across the
//! six workflows, and plain-text table rendering.
//!
//! All harness binaries honour two environment variables so the same code
//! serves quick smoke runs and full-fidelity reproductions:
//!
//! * `SIZEY_BENCH_SCALE` — fraction of the paper's task-instance volume to
//!   generate (default `0.1`),
//! * `SIZEY_BENCH_SEED` — workload generation seed (default `42`).

#![warn(missing_docs)]

pub mod experiment;
pub mod perf_json;
pub mod recovery;
pub mod registry;
pub mod sweep;
pub mod toml_lite;

use sizey_ml::parallel::{default_parallelism, parallel_map};
use sizey_sim::{replay_workflow, ReplayReport, SimulationConfig};
use sizey_workflows::{
    all_workflows, generate_workflow, GeneratorConfig, TaskInstance, WorkflowSpec,
};

pub use experiment::{Experiment, ExperimentBuilder, ExperimentSpec};
pub use recovery::{RecoveryTracker, RECOVERY_BAND, RECOVERY_WINDOW};
pub use registry::{MethodSpec, SpecError};
pub use sweep::{
    aggregate_sweep, run_sweep, run_sweep_async_sizey, run_sweep_async_sizey_with_threads,
    run_sweep_shared_sizey, run_sweep_shared_sizey_with_threads, run_sweep_with_states,
    run_sweep_with_states_and_threads, run_sweep_with_threads, SweepCell, SweepRow, SweepSpec,
};

/// Harness-wide settings read from the environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessSettings {
    /// Fraction of the paper's task volume to generate.
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for HarnessSettings {
    fn default() -> Self {
        HarnessSettings {
            scale: 0.1,
            seed: 42,
        }
    }
}

impl HarnessSettings {
    /// Reads `SIZEY_BENCH_SCALE` and `SIZEY_BENCH_SEED` from the environment,
    /// falling back to the defaults (scale 0.1, seed 42).
    pub fn from_env() -> Self {
        let mut settings = HarnessSettings::default();
        if let Ok(scale) = std::env::var("SIZEY_BENCH_SCALE") {
            if let Ok(v) = scale.parse::<f64>() {
                if v > 0.0 && v <= 2.0 {
                    settings.scale = v;
                }
            }
        }
        if let Ok(seed) = std::env::var("SIZEY_BENCH_SEED") {
            if let Ok(v) = seed.parse::<u64>() {
                settings.seed = v;
            }
        }
        settings
    }

    /// The generator configuration corresponding to these settings.
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig::scaled(self.scale, self.seed)
    }
}

/// One workflow's generated workload.
pub struct Workload {
    /// The workflow specification.
    pub spec: WorkflowSpec,
    /// The generated task instances in submission order.
    pub instances: Vec<TaskInstance>,
}

/// Generates the workloads of all six evaluation workflows.
pub fn generate_workloads(settings: &HarnessSettings) -> Vec<Workload> {
    all_workflows()
        .into_iter()
        .map(|spec| {
            let instances = generate_workflow(&spec, &settings.generator());
            Workload { spec, instances }
        })
        .collect()
}

/// Replays one method over all workloads **in parallel** (every replay is
/// independent: each workload gets a fresh predictor built from the spec),
/// returning one report per workflow in workload order.
pub fn evaluate_method(
    method: &MethodSpec,
    workloads: &[Workload],
    sim: &SimulationConfig,
) -> Vec<ReplayReport> {
    parallel_map(workloads, default_parallelism(), |w| {
        let mut predictor = method.build();
        replay_workflow(&w.spec.name, &w.instances, predictor.as_mut(), sim)
    })
}

/// Replays the paper's six-method suite ([`MethodSpec::default_suite`]) over
/// all workloads — the full Fig. 8 / Table II sweep. The whole
/// method × workload product is fanned out across the [`sizey_ml::parallel`]
/// thread pool (the serial loop this replaces walked 36 replays one at a
/// time). Returns `(method spec, per-workflow reports)` in figure order.
pub fn evaluate_all_methods(
    workloads: &[Workload],
    sim: &SimulationConfig,
) -> Vec<(MethodSpec, Vec<ReplayReport>)> {
    evaluate_methods(&MethodSpec::default_suite(), workloads, sim)
}

/// Replays an arbitrary list of method specs over all workloads in parallel,
/// returning `(method spec, per-workflow reports)` in the given method
/// order.
pub fn evaluate_methods(
    methods: &[MethodSpec],
    workloads: &[Workload],
    sim: &SimulationConfig,
) -> Vec<(MethodSpec, Vec<ReplayReport>)> {
    let cells: Vec<(&MethodSpec, &Workload)> = methods
        .iter()
        .flat_map(|m| workloads.iter().map(move |w| (m, w)))
        .collect();
    let mut reports = parallel_map(&cells, default_parallelism(), |(m, w)| {
        let mut predictor = m.build();
        replay_workflow(&w.spec.name, &w.instances, predictor.as_mut(), sim)
    })
    .into_iter();
    // `cells` is method-major and `parallel_map` preserves input order, so
    // the reports regroup into per-method chunks directly.
    methods
        .iter()
        .map(|m| (m.clone(), reports.by_ref().take(workloads.len()).collect()))
        .collect()
}

/// Renders a plain-text table with right-aligned numeric columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with the given number of decimal places.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Prints the standard harness banner (experiment id, scale, seed) so every
/// binary's output is self-describing.
pub fn banner(experiment: &str, settings: &HarnessSettings) {
    println!("=== {experiment} ===");
    println!(
        "workload scale: {} of the paper's task volume, seed: {}",
        settings.scale, settings.seed
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_have_unique_names_and_builders() {
        let suite = MethodSpec::default_suite();
        let names: std::collections::HashSet<_> = suite.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 6);
        for m in &suite {
            assert_eq!(m.build().name(), m.name());
        }
    }

    #[test]
    fn settings_from_env_fall_back_to_defaults() {
        std::env::remove_var("SIZEY_BENCH_SCALE");
        std::env::remove_var("SIZEY_BENCH_SEED");
        let s = HarnessSettings::from_env();
        assert_eq!(s.scale, 0.1);
        assert_eq!(s.seed, 42);
    }

    #[test]
    fn generate_workloads_covers_all_six_workflows() {
        let settings = HarnessSettings {
            scale: 0.02,
            seed: 3,
        };
        let workloads = generate_workloads(&settings);
        assert_eq!(workloads.len(), 6);
        assert!(workloads.iter().all(|w| !w.instances.is_empty()));
    }

    #[test]
    fn evaluate_method_produces_one_report_per_workflow() {
        let settings = HarnessSettings {
            scale: 0.02,
            seed: 3,
        };
        let workloads = generate_workloads(&settings);
        let reports = evaluate_method(
            &MethodSpec::Preset,
            &workloads,
            &SimulationConfig::default(),
        );
        assert_eq!(reports.len(), 6);
        assert!(reports.iter().all(|r| r.method == "Workflow-Presets"));
    }

    #[test]
    fn render_table_aligns_columns() {
        let table = render_table(
            &["Method", "GBh"],
            &[
                vec!["Sizey".to_string(), "12.3".to_string()],
                vec!["Workflow-Presets".to_string(), "456.7".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Method"));
        assert!(lines[2].ends_with("12.3"));
        assert!(lines[3].ends_with("456.7"));
    }

    #[test]
    fn fmt_rounds_to_requested_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
