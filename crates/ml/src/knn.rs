//! k-nearest-neighbour regression.
//!
//! The paper motivates k-NN as the model class that lets historical task
//! executions similar to the one being sized influence the estimate directly.
//! Features are min-max scaled internally so that neighbourhoods are
//! meaningful when feature columns live on very different scales (input bytes
//! vs. running-task counts). `partial_fit` simply appends the new
//! observations, which makes the incremental update O(new points).
//!
//! The prediction hot path works on a **flattened, pre-scaled** feature
//! buffer: observations are scaled once when the scaler refreshes (on
//! `fit`/`partial_fit`), not once per stored row on every `predict`, and the
//! distance ranking uses `select_nth_unstable` partial selection instead of
//! sorting all n distances to extract k of them. Ties are broken by
//! insertion index, which reproduces the ranking of the former stable full
//! sort exactly — predictions are bit-identical to the straightforward
//! implementation (the workspace equivalence proptests assert this).

use crate::dataset::Dataset;
use crate::matrix::squared_distance;
use crate::model::{
    validate_query, validate_training_data, ModelClass, ModelError, PredictScratch, Regressor,
};
use crate::scaler::{Scaler, ScalerKind};

/// How neighbour targets are combined into a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnWeighting {
    /// Plain average of the k nearest targets.
    Uniform,
    /// Weight each neighbour by the inverse of its distance (exact matches
    /// dominate).
    InverseDistance,
}

/// Hyper-parameters for [`KnnRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnConfig {
    /// Number of neighbours considered (clamped to the number of stored
    /// observations at prediction time).
    pub k: usize,
    /// Neighbour weighting scheme.
    pub weighting: KnnWeighting,
    /// Relative scaler-parameter drift above which a `partial_fit` rescales
    /// the whole stored buffer against the live min-max parameters (see
    /// [`Scaler::param_drift`]). `0.0` rescales on any parameter change,
    /// reproducing the eager pre-amortisation behaviour bit for bit.
    pub rescale_drift_threshold: f64,
    /// Upper bound on observations between two full rescales regardless of
    /// drift (`0` disables the periodic bound).
    pub rescale_interval: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig {
            k: 5,
            weighting: KnnWeighting::InverseDistance,
            rescale_drift_threshold: 0.02,
            rescale_interval: 64,
        }
    }
}

/// k-nearest-neighbour regressor over the full observation history.
#[derive(Debug, Clone)]
pub struct KnnRegression {
    config: KnnConfig,
    /// Flattened row-major raw feature buffer (`targets.len()` rows of
    /// `n_features` columns).
    features: Vec<f64>,
    /// The same rows in scaled space, refreshed together with the scaler so
    /// `predict` never re-scales stored observations. Scaled with the
    /// **epoch** scaler's parameters (frozen at the last full rescale), not
    /// necessarily the live ones — queries scale with the same epoch
    /// parameters, so rankings stay internally consistent.
    scaled: Vec<f64>,
    targets: Vec<f64>,
    /// The epoch scaler: the parameters the `scaled` buffer was produced
    /// with.
    scaler: Scaler,
    /// The live scaler, updated exactly per observation
    /// ([`Scaler::observe_row`]). When its parameters drift too far from the
    /// epoch's — or after `rescale_interval` appends — it becomes the new
    /// epoch and the buffer is rescaled once, amortising the former
    /// O(history) per-observe rescale.
    live_scaler: Scaler,
    /// Observations appended since the last full rescale.
    rows_since_rescale: usize,
    n_features: usize,
    fitted: bool,
}

impl KnnRegression {
    /// Creates an unfitted model with the given configuration.
    pub fn new(config: KnnConfig) -> Self {
        KnnRegression {
            config,
            features: Vec::new(),
            scaled: Vec::new(),
            targets: Vec::new(),
            scaler: Scaler::new(ScalerKind::MinMax),
            live_scaler: Scaler::new(ScalerKind::MinMax),
            rows_since_rescale: 0,
            n_features: 0,
            fitted: false,
        }
    }

    /// Creates an unfitted model with default configuration (k = 5, inverse
    /// distance weighting).
    pub fn with_defaults() -> Self {
        KnnRegression::new(KnnConfig::default())
    }

    /// The configuration used by this model.
    pub fn config(&self) -> KnnConfig {
        self.config
    }

    /// Number of stored observations.
    pub fn n_observations(&self) -> usize {
        self.targets.len()
    }

    /// Batch-refits the scaler on the full raw buffer and rescales every
    /// stored row — the O(n·d) epoch reset, run on `fit` and whenever the
    /// amortisation policy triggers, never per observation.
    fn refresh_scaler(&mut self) {
        self.scaler = Scaler::new(ScalerKind::MinMax);
        self.scaler.fit_flat(&self.features, self.n_features);
        self.live_scaler = self.scaler.clone();
        self.scaler
            .transform_flat_into(&self.features, self.n_features, &mut self.scaled);
        self.rows_since_rescale = 0;
    }

    /// Live-vs-epoch scaler parameter drift (diagnostic; see
    /// [`Scaler::param_drift`]).
    pub fn scaler_drift(&self) -> f64 {
        self.live_scaler.param_drift(&self.scaler)
    }

    /// Observations appended since the stored buffer was last rescaled
    /// against fresh scaler parameters (diagnostic).
    pub fn rows_since_rescale(&self) -> usize {
        self.rows_since_rescale
    }

    /// Returns the indices and distances of the `k` nearest stored
    /// observations to `query` (in scaled space), closest first.
    ///
    /// Partial selection: only the k nearest are moved to the front and
    /// ordered, instead of sorting all n distances. The comparator is total
    /// (`total_cmp`), so a NaN distance — e.g. from a corrupted feature
    /// upstream — ranks last instead of panicking the predict hot path, and
    /// ties break by insertion index, matching the stable full sort this
    /// replaces bit for bit.
    fn nearest(&self, query: &[f64]) -> Vec<(usize, f64)> {
        let mut scratch = PredictScratch::default();
        self.nearest_with(query, &mut scratch);
        std::mem::take(&mut scratch.dists)
    }

    /// [`Self::nearest`] into caller-owned buffers: the scaled query and the
    /// distance table live in `scratch`, so the steady-state path performs
    /// no allocations. On return `scratch.dists` holds the k neighbours.
    fn nearest_with(&self, query: &[f64], scratch: &mut PredictScratch) {
        let width = self.n_features.max(1);
        self.scaler.transform_into(query, &mut scratch.scaled_query);
        let scaled_query = &scratch.scaled_query;
        let dists = &mut scratch.dists;
        dists.clear();
        dists.extend(
            self.scaled
                .chunks_exact(width)
                .enumerate()
                .map(|(i, row)| (i, squared_distance(row, scaled_query))),
        );
        let k = self.config.k.max(1).min(dists.len());
        let by_distance_then_index =
            |a: &(usize, f64), b: &(usize, f64)| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0));
        if k < dists.len() {
            dists.select_nth_unstable_by(k - 1, by_distance_then_index);
            dists.truncate(k);
        }
        dists.sort_unstable_by(by_distance_then_index);
    }

    /// Combines the selected neighbours into one estimate. Allocation-free:
    /// the inverse-distance exact-match handling streams over the slice in
    /// the same order the old index-collecting version did, so results stay
    /// bit-identical.
    fn aggregate(&self, neighbours: &[(usize, f64)]) -> f64 {
        match self.config.weighting {
            KnnWeighting::Uniform => {
                let sum: f64 = neighbours.iter().map(|&(i, _)| self.targets[i]).sum();
                sum / neighbours.len() as f64
            }
            KnnWeighting::InverseDistance => {
                // If any neighbour is an exact match, average the exact
                // matches (mirrors scikit-learn's behaviour and avoids
                // dividing by zero).
                let mut exact_sum = 0.0;
                let mut exact_n = 0usize;
                for &(i, d2) in neighbours {
                    if d2 == 0.0 {
                        exact_sum += self.targets[i];
                        exact_n += 1;
                    }
                }
                if exact_n > 0 {
                    return exact_sum / exact_n as f64;
                }
                let mut weight_sum = 0.0;
                let mut value_sum = 0.0;
                for &(i, d2) in neighbours {
                    let w = 1.0 / d2.sqrt();
                    weight_sum += w;
                    value_sum += w * self.targets[i];
                }
                value_sum / weight_sum
            }
        }
    }
}

impl Regressor for KnnRegression {
    fn fit(&mut self, data: &Dataset) -> Result<(), ModelError> {
        validate_training_data(data)?;
        self.n_features = data.n_features();
        self.features.clear();
        self.features.reserve(data.len() * self.n_features);
        for (f, _) in data.iter() {
            self.features.extend_from_slice(f);
        }
        self.targets.clear();
        self.targets.extend_from_slice(data.targets());
        self.refresh_scaler();
        self.fitted = true;
        Ok(())
    }

    fn partial_fit(&mut self, data: &Dataset) -> Result<(), ModelError> {
        validate_training_data(data)?;
        if !self.fitted {
            return self.fit(data);
        }
        if data.n_features() != self.n_features {
            return Err(ModelError::FeatureMismatch {
                expected: self.n_features,
                got: data.n_features(),
            });
        }
        for (f, t) in data.iter() {
            self.features.extend_from_slice(f);
            self.targets.push(t);
            // O(d): fold the row into the live scaler's running min/max
            // (bit-identical to a batch refit for min-max parameters).
            self.live_scaler.observe_row(f);
        }
        self.rows_since_rescale += data.len();
        let interval = self.config.rescale_interval;
        let drift = self.live_scaler.param_drift(&self.scaler);
        if drift > self.config.rescale_drift_threshold
            || (interval > 0 && self.rows_since_rescale >= interval)
        {
            // Epoch reset: adopt the live parameters and rescale the whole
            // buffer once. Amortised O(d) per observe. When the drift is
            // exactly zero the epoch parameters already equal the live ones,
            // so skipping this is bit-identical to running it.
            self.live_scaler
                .transform_flat_into(&self.features, self.n_features, &mut self.scaled);
            self.scaler = self.live_scaler.clone();
            self.rows_since_rescale = 0;
        } else {
            // Append the new rows scaled with the frozen epoch parameters;
            // queries scale with the same parameters, so the ranking stays
            // consistent (bounded-divergent from an eager rescale until the
            // next epoch reset). Allocation-free: rows scale straight into
            // the retained buffer.
            let width = self.n_features.max(1);
            let start = self.features.len() - data.len() * width;
            let (shift, scale) = (self.scaler.shift(), self.scaler.scale());
            self.scaled.reserve(data.len() * width);
            for i in start..self.features.len() {
                let c = (i - start) % width;
                let v = self.features[i];
                self.scaled.push((v - shift[c]) / scale[c]);
            }
        }
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> Result<f64, ModelError> {
        if !self.fitted || self.targets.is_empty() {
            return Err(ModelError::NotFitted);
        }
        validate_query(features, self.n_features)?;
        let neighbours = self.nearest(features);
        Ok(self.aggregate(&neighbours))
    }

    fn predict_with(
        &self,
        features: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<f64, ModelError> {
        if !self.fitted || self.targets.is_empty() {
            return Err(ModelError::NotFitted);
        }
        validate_query(features, self.n_features)?;
        self.nearest_with(features, scratch);
        Ok(self.aggregate(&scratch.dists))
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn class(&self) -> ModelClass {
        ModelClass::Knn
    }

    fn clone_box(&self) -> Box<dyn Regressor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_returns_stored_target() {
        let data = Dataset::from_univariate(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
        let mut m = KnnRegression::with_defaults();
        m.fit(&data).unwrap();
        assert_eq!(m.predict(&[2.0]).unwrap(), 20.0);
    }

    #[test]
    fn uniform_weighting_averages_neighbours() {
        let data = Dataset::from_univariate(&[0.0, 1.0, 10.0], &[0.0, 10.0, 100.0]);
        let mut m = KnnRegression::new(KnnConfig {
            k: 2,
            weighting: KnnWeighting::Uniform,
            ..KnnConfig::default()
        });
        m.fit(&data).unwrap();
        // Nearest two to 0.4 are x=0 and x=1.
        assert!((m.predict(&[0.4]).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_distance_weights_closer_points_more() {
        let data = Dataset::from_univariate(&[0.0, 10.0], &[0.0, 100.0]);
        let mut m = KnnRegression::new(KnnConfig {
            k: 2,
            weighting: KnnWeighting::InverseDistance,
            ..KnnConfig::default()
        });
        m.fit(&data).unwrap();
        let near_zero = m.predict(&[1.0]).unwrap();
        let near_ten = m.predict(&[9.0]).unwrap();
        assert!(near_zero < 50.0);
        assert!(near_ten > 50.0);
    }

    #[test]
    fn prediction_stays_within_target_range() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x + 100.0).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut m = KnnRegression::with_defaults();
        m.fit(&data).unwrap();
        // k-NN cannot extrapolate: even for a far query, the prediction is
        // bounded by the observed targets.
        let p = m.predict(&[1000.0]).unwrap();
        assert!(p <= 5.0 * 49.0 + 100.0 + 1e-9);
        assert!(p >= 100.0 - 1e-9);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let data = Dataset::from_univariate(&[1.0, 2.0], &[10.0, 20.0]);
        let mut m = KnnRegression::new(KnnConfig {
            k: 50,
            weighting: KnnWeighting::Uniform,
            ..KnnConfig::default()
        });
        m.fit(&data).unwrap();
        assert!((m.predict(&[1.5]).unwrap() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn partial_fit_appends_observations() {
        let data = Dataset::from_univariate(&[1.0, 2.0], &[10.0, 20.0]);
        let mut m = KnnRegression::with_defaults();
        m.fit(&data).unwrap();
        let more = Dataset::from_univariate(&[3.0], &[30.0]);
        m.partial_fit(&more).unwrap();
        assert_eq!(m.n_observations(), 3);
        assert_eq!(m.predict(&[3.0]).unwrap(), 30.0);
    }

    #[test]
    fn partial_fit_on_unfitted_model_behaves_like_fit() {
        let mut m = KnnRegression::with_defaults();
        let data = Dataset::from_univariate(&[1.0], &[11.0]);
        m.partial_fit(&data).unwrap();
        assert!(m.is_fitted());
        assert_eq!(m.predict(&[1.0]).unwrap(), 11.0);
    }

    #[test]
    fn scaling_makes_large_magnitude_columns_comparable() {
        // Feature 0 in bytes (huge), feature 1 small but decisive.
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..10 {
            features.push(vec![1e9 + i as f64, 0.0]);
            targets.push(100.0);
            features.push(vec![1e9 + i as f64, 1.0]);
            targets.push(200.0);
        }
        let data = Dataset::from_parts(features, targets);
        let mut m = KnnRegression::new(KnnConfig {
            k: 3,
            weighting: KnnWeighting::Uniform,
            ..KnnConfig::default()
        });
        m.fit(&data).unwrap();
        // Without scaling the second feature would be irrelevant; with
        // min-max scaling the neighbourhood follows it.
        let p = m.predict(&[1e9 + 5.0, 1.0]).unwrap();
        assert!((p - 200.0).abs() < 1e-9, "p = {p}");
    }

    /// Satellite regression: the distance ranking used
    /// `partial_cmp(..).expect("finite distances")`, which panicked on NaN
    /// distances. NaN slips past the finite-input validation whenever the
    /// min-max scaler's range overflows: features spanning more than the
    /// f64 range (`hi - lo == inf`) scale the extreme row to `inf / inf =
    /// NaN`, and every distance involving that row is NaN. With `total_cmp`
    /// such rows rank last and the clean observations still form the
    /// neighbourhood.
    #[test]
    fn nan_distances_are_ranked_not_panicking() {
        let mut m = KnnRegression::new(KnnConfig {
            k: 2,
            weighting: KnnWeighting::Uniform,
            ..KnnConfig::default()
        });
        // All inputs finite (validation passes); the 1e308 row's scaled
        // value is NaN because the column range overflows to infinity.
        m.fit(&Dataset::from_univariate(
            &[-1e308, 1e308, 0.0, 1.0],
            &[0.0, 1e12, 10.0, 20.0],
        ))
        .unwrap();
        let p = m.predict(&[0.5]).unwrap();
        assert!(
            p.is_finite(),
            "NaN-distance row must not poison the estimate"
        );
        // An explicitly NaN query is rejected upstream, never panicking.
        assert!(matches!(
            m.predict(&[f64::NAN]),
            Err(ModelError::Numerical(_))
        ));
    }

    #[test]
    fn amortised_rescale_triggers_on_drift_or_interval() {
        let mut m = KnnRegression::new(KnnConfig::default());
        m.fit(&Dataset::from_univariate(&[0.0, 10.0], &[1.0, 2.0]))
            .unwrap();
        assert_eq!(m.rows_since_rescale(), 0);
        // A row barely outside the range drifts the live parameters by 0.5%
        // — below the 2% threshold, so the buffer is not rescaled.
        m.partial_fit(&Dataset::from_univariate(&[10.05], &[3.0]))
            .unwrap();
        assert_eq!(m.rows_since_rescale(), 1);
        assert!(m.scaler_drift() > 0.0 && m.scaler_drift() < 0.01);
        // A far-out row exceeds the drift threshold and forces an epoch
        // reset: buffer rescaled, live == epoch again.
        m.partial_fit(&Dataset::from_univariate(&[30.0], &[4.0]))
            .unwrap();
        assert_eq!(m.rows_since_rescale(), 0);
        assert_eq!(m.scaler_drift(), 0.0);

        // The periodic bound rescales even when the drift never trips.
        let mut p = KnnRegression::new(KnnConfig {
            rescale_drift_threshold: f64::INFINITY,
            rescale_interval: 2,
            ..KnnConfig::default()
        });
        p.fit(&Dataset::from_univariate(&[0.0, 1.0], &[1.0, 2.0]))
            .unwrap();
        p.partial_fit(&Dataset::from_univariate(&[50.0], &[3.0]))
            .unwrap();
        assert_eq!(p.rows_since_rescale(), 1);
        p.partial_fit(&Dataset::from_univariate(&[60.0], &[4.0]))
            .unwrap();
        assert_eq!(p.rows_since_rescale(), 0);
        // Predictions stay exact for stored points after the reset.
        assert_eq!(p.predict(&[60.0]).unwrap(), 4.0);
    }

    #[test]
    fn errors_before_fit_and_on_bad_query() {
        let m = KnnRegression::with_defaults();
        assert!(matches!(m.predict(&[1.0]), Err(ModelError::NotFitted)));
        let mut fitted = KnnRegression::with_defaults();
        fitted
            .fit(&Dataset::from_univariate(&[1.0], &[1.0]))
            .unwrap();
        assert!(matches!(
            fitted.predict(&[1.0, 2.0]),
            Err(ModelError::FeatureMismatch { .. })
        ));
    }
}
