//! Ablation — online-learning mode: incremental updates (with periodic full
//! retrains) vs. full retraining after every completion (DESIGN.md §5). The
//! paper reports that using incremental training increases the median
//! wastage by about 6.1% while cutting the training time by 98.39%.
//!
//! Run with `cargo run -p sizey-bench --release --bin ablation_online_mode`.

use sizey_bench::{banner, fmt, generate_workloads, render_table, HarnessSettings, MethodSpec};
use sizey_core::{OnlineMode, SizeyConfig};
use sizey_sim::{replay_workflow, SimulationConfig};

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Ablation: online-learning mode (incremental vs full retraining)",
        &settings,
    );

    // Full retraining after every completion is expensive; keep the volume
    // small so the comparison finishes quickly.
    let workloads = generate_workloads(&HarnessSettings {
        scale: settings.scale.min(0.04),
        ..settings
    });
    let sim = SimulationConfig::default();

    let variants: Vec<(String, SizeyConfig)> = vec![
        (
            "Incremental (paper default)".to_string(),
            SizeyConfig::incremental(),
        ),
        (
            "Incremental, never retrain".to_string(),
            SizeyConfig {
                online: OnlineMode::incremental(0),
                ..SizeyConfig::default()
            },
        ),
        (
            "Full retraining + HPO".to_string(),
            SizeyConfig::full_retraining(),
        ),
    ];

    let mut rows = Vec::new();
    for (label, config) in variants {
        let mut wastage = 0.0;
        let mut failures = 0usize;
        let mut train_ms = Vec::new();
        for workload in &workloads {
            let mut sizey = MethodSpec::Sizey(config.clone())
                .build_sizey()
                .expect("a Sizey spec builds a Sizey predictor");
            let report =
                replay_workflow(&workload.spec.name, &workload.instances, &mut sizey, &sim);
            wastage += report.total_wastage_gbh();
            failures += report.total_failures();
            train_ms.extend(sizey.training_times().iter().map(|d| d.as_secs_f64() * 1e3));
        }
        train_ms.sort_by(|a, b| a.total_cmp(b));
        let median_ms = train_ms.get(train_ms.len() / 2).copied().unwrap_or(0.0);
        rows.push(vec![
            label,
            fmt(wastage, 2),
            failures.to_string(),
            fmt(median_ms, 2),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "Online mode",
                "Total Wastage GBh",
                "Failures",
                "Median training ms"
            ],
            &rows
        )
    );
    println!("Paper reference: incremental updates cost ~6.1% extra wastage but reduce the");
    println!("median training time by 98.39% (1.09 s -> 17.5 ms).");
}
