//! Integration tests spanning the whole pipeline: workload generation →
//! online replay → Sizey and the baselines → accounting.

use sizey_suite::prelude::*;

fn workload(name: &str, scale: f64, seed: u64) -> (WorkflowSpec, Vec<TaskInstance>) {
    let spec = sizey_workflows::workflow_by_name(name).expect("known workflow");
    let instances = generate_workflow(&spec, &GeneratorConfig::scaled(scale, seed));
    (spec, instances)
}

#[test]
fn sizey_beats_presets_on_every_workflow() {
    for name in ["iwd", "rnaseq"] {
        let (spec, instances) = workload(name, 0.06, 17);
        let sim = SimulationConfig::default();

        let mut presets = PresetPredictor;
        let preset = replay_workflow(&spec.name, &instances, &mut presets, &sim);
        let mut sizey = SizeyPredictor::with_defaults();
        let learned = replay_workflow(&spec.name, &instances, &mut sizey, &sim);

        assert!(
            learned.total_wastage_gbh() < preset.total_wastage_gbh(),
            "{name}: Sizey {} GBh vs presets {} GBh",
            learned.total_wastage_gbh(),
            preset.total_wastage_gbh()
        );
        assert_eq!(
            learned.unfinished_instances, 0,
            "{name}: tasks left unfinished"
        );
        assert_eq!(learned.instances, instances.len());
    }
}

#[test]
fn every_method_completes_the_replay_without_unfinished_tasks() {
    let (spec, instances) = workload("chipseq", 0.04, 3);
    let sim = SimulationConfig::default();
    let mut methods: Vec<Box<dyn MemoryPredictor>> = vec![
        Box::new(SizeyPredictor::with_defaults()),
        Box::new(WittWastage::new()),
        Box::new(WittLr::new()),
        Box::new(TovarPpm::new()),
        Box::new(WittPercentile::new()),
        Box::new(PresetPredictor),
    ];
    for method in methods.iter_mut() {
        let report = replay_workflow(&spec.name, &instances, method.as_mut(), &sim);
        assert_eq!(
            report.unfinished_instances, 0,
            "{} left tasks unfinished",
            report.method
        );
        assert!(report.total_wastage_gbh() >= 0.0);
        assert!(report.total_runtime_hours() > 0.0);
        // Every successful first attempt plus retries must at least cover all
        // instances.
        assert!(report.events.len() >= instances.len());
    }
}

#[test]
fn lower_time_to_failure_never_increases_wastage() {
    let (spec, instances) = workload("mag", 0.03, 9);
    let mut sizey_full = SizeyPredictor::with_defaults();
    let full = replay_workflow(
        &spec.name,
        &instances,
        &mut sizey_full,
        &SimulationConfig::default().with_time_to_failure(1.0),
    );
    let mut sizey_half = SizeyPredictor::with_defaults();
    let half = replay_workflow(
        &spec.name,
        &instances,
        &mut sizey_half,
        &SimulationConfig::default().with_time_to_failure(0.5),
    );
    // Failed attempts are charged for a shorter time, so total wastage with
    // ttf = 0.5 must not exceed the ttf = 1.0 wastage (Fig. 8a vs 8b).
    assert!(
        half.total_wastage_gbh() <= full.total_wastage_gbh() + 1e-9,
        "ttf 0.5 wastage {} should not exceed ttf 1.0 wastage {}",
        half.total_wastage_gbh(),
        full.total_wastage_gbh()
    );
}

#[test]
fn allocations_never_exceed_node_memory() {
    let (spec, instances) = workload("methylseq", 0.04, 5);
    let sim = SimulationConfig::default();
    let mut sizey = SizeyPredictor::with_defaults();
    let report = replay_workflow(&spec.name, &instances, &mut sizey, &sim);
    for event in &report.events {
        assert!(event.allocated_bytes <= sim.node_memory_bytes + 1e-6);
        assert!(event.allocated_bytes > 0.0);
    }
}

#[test]
fn model_telemetry_is_populated_once_history_exists() {
    let (spec, instances) = workload("mag", 0.05, 23);
    let mut sizey = SizeyPredictor::with_defaults();
    let report = replay_workflow(
        &spec.name,
        &instances,
        &mut sizey,
        &SimulationConfig::default(),
    );
    let with_model = report
        .events
        .iter()
        .filter(|e| e.attempt == 0 && e.selected_model.is_some())
        .count();
    assert!(
        with_model * 2 > report.instances,
        "most first attempts should be model-based ({with_model}/{})",
        report.instances
    );
    // The model-selection share sums to ~1.
    let share_sum: f64 = report.model_selection_share().iter().map(|(_, s)| s).sum();
    assert!((share_sum - 1.0).abs() < 1e-9);
}

#[test]
fn provenance_trace_round_trips_through_the_store_and_file_format() {
    let (spec, instances) = workload("iwd", 0.03, 31);
    let mut sizey = SizeyPredictor::with_defaults();
    let _ = replay_workflow(
        &spec.name,
        &instances,
        &mut sizey,
        &SimulationConfig::default(),
    );

    let records: Vec<TaskRecord> = sizey
        .provenance()
        .all_records()
        .iter()
        .map(|r| (**r).clone())
        .collect();
    assert!(records.len() >= instances.len());

    let text = sizey_provenance::to_trace_string(&records);
    let parsed = sizey_provenance::from_trace_string(&text).expect("parse trace");
    assert_eq!(records, parsed);

    // Rebuild a store from the parsed trace and check the indices agree.
    let store = ProvenanceStore::new();
    for r in parsed {
        store.insert(r);
    }
    assert_eq!(store.len(), records.len());
    for task_type in store.task_types() {
        assert!(store.knows_task_type(&task_type));
    }
}

#[test]
fn sizey_prediction_error_decreases_with_experience() {
    // Replay the mag workflow (the Fig. 12 setting) without offsets and check
    // that the mean relative error over the last third of Prokka executions
    // is no worse than over the first third. A single seed makes this a coin
    // flip on workload noise, so the errors are pooled over several seeds.
    let mut early_sum = 0.0;
    let mut late_sum = 0.0;
    let mut pooled = 0usize;
    for seed in [2, 3, 5, 7, 11] {
        let (spec, instances) = workload("mag", 0.12, seed);
        let config = SizeyConfig {
            offset: OffsetMode::None,
            ..SizeyConfig::default()
        };
        let mut sizey = SizeyPredictor::new(config);
        let report = replay_workflow(
            &spec.name,
            &instances,
            &mut sizey,
            &SimulationConfig::default(),
        );
        let errors = report.prediction_error_over_time("Prokka");
        assert!(
            errors.len() > 30,
            "need enough Prokka executions, got {}",
            errors.len()
        );
        let third = errors.len() / 3;
        early_sum += errors[..third].iter().map(|(_, e)| e).sum::<f64>() / third as f64;
        late_sum += errors[errors.len() - third..]
            .iter()
            .map(|(_, e)| e)
            .sum::<f64>()
            / third as f64;
        pooled += 1;
    }
    let early = early_sum / pooled as f64;
    let late = late_sum / pooled as f64;
    assert!(
        late < early * 1.05,
        "error should not grow with experience: early {early:.3}, late {late:.3}"
    );
}
