//! Calibrated profiles of the six evaluation workflows.
//!
//! The paper measures six real nf-core-style workflows (eager, methylseq,
//! chipseq, rnaseq, mag, iwd) on an 8-node cluster. We do not have the
//! measured traces, so each workflow is described by a synthetic profile
//! calibrated to the statistics the paper publishes:
//!
//! * Table I — number of task types and average instances per task type,
//! * Fig. 1 — peak-memory distributions of lcextrap, Preprocessing, mpileup
//!   and genomecov,
//! * Fig. 2 — the linear MarkDuplicates and non-linear BaseRecalibrator
//!   input-size/memory relations,
//! * Fig. 7 — the qualitative CPU / memory / I/O spreads per workflow,
//! * Fig. 12 — the Prokka task of the mag workflow with ~1171 instances.
//!
//! Unnamed task types are filled in with a deterministic mixture of linear,
//! non-linear, constant, threshold and saturating memory responses so that
//! every workflow exercises the model-selection machinery the way the
//! heterogeneous real workloads do.

use crate::memfn::{InputModel, MemoryModel, RuntimeModel};
use crate::model::{ResourceFootprint, TaskTypeSpec, WorkflowSpec};

/// The single machine configuration of the evaluation cluster
/// (8× AMD EPYC 7282, 128 GB DDR4 per node).
pub const MACHINE_NAME: &str = "epyc7282-128g";

/// Memory capacity of one cluster node in bytes (128 GB).
pub const NODE_MEMORY_BYTES: f64 = 128e9;

/// Number of nodes in the evaluation cluster.
pub const NODE_COUNT: usize = 8;

const GB: f64 = 1e9;
const MB: f64 = 1e6;

/// Names of the six evaluation workflows in the order used by the paper.
pub const WORKFLOW_NAMES: [&str; 6] = ["eager", "methylseq", "chipseq", "rnaseq", "mag", "iwd"];

fn footprint(cpu: f64, read: f64, write: f64) -> ResourceFootprint {
    ResourceFootprint {
        cpu_utilization_pct: cpu,
        cpu_cv: 0.4,
        io_read_factor: read,
        io_write_factor: write,
    }
}

fn runtime(base: f64, per_gb: f64) -> RuntimeModel {
    RuntimeModel {
        base_seconds: base,
        seconds_per_gb: per_gb,
        noise_cv: 0.15,
    }
}

/// Builds an explicitly named task type.
#[allow(clippy::too_many_arguments)]
fn named_task(
    name: &str,
    instances: usize,
    input_model: InputModel,
    memory_model: MemoryModel,
    runtime_model: RuntimeModel,
    fp: ResourceFootprint,
    preset_gb: f64,
) -> TaskTypeSpec {
    TaskTypeSpec {
        name: name.to_string(),
        instances,
        input_model,
        memory_model,
        runtime_model,
        footprint: fp,
        preset_memory_bytes: preset_gb * GB,
    }
}

/// Builds a filler task type whose behaviour is chosen deterministically from
/// its index; `size_class` scales the magnitude of inputs and memory so that
/// different workflows occupy different regions of Fig. 7.
fn filler_task(workflow: &str, idx: usize, instances: usize, size_class: f64) -> TaskTypeSpec {
    let name = format!("{workflow}_task_{idx:02}");
    let input_lo = (0.2 + 0.15 * (idx % 5) as f64) * size_class * GB;
    let input_hi = input_lo * (2.0 + (idx % 3) as f64);
    let input_model = if idx.is_multiple_of(4) {
        InputModel::LogUniform {
            lo: input_lo.max(10.0 * MB),
            hi: input_hi,
        }
    } else {
        InputModel::Uniform {
            lo: input_lo,
            hi: input_hi,
        }
    };
    let memory_model = match idx % 5 {
        // Linear, the dominant pattern.
        0 | 3 => MemoryModel::Linear {
            slope: 1.0 + 0.5 * (idx % 4) as f64,
            intercept: (0.3 + 0.2 * (idx % 3) as f64) * size_class * GB,
            noise_cv: 0.035,
        },
        // Near-constant reference-loading tools.
        1 => MemoryModel::Constant {
            mean: (0.8 + 0.6 * (idx % 4) as f64) * size_class * GB,
            noise_cv: 0.04,
        },
        // Super-linear growth.
        2 => MemoryModel::Power {
            coefficient: 0.8 * size_class * GB,
            scale: input_hi.max(GB),
            exponent: 1.6,
            intercept: 0.2 * size_class * GB,
            noise_cv: 0.04,
        },
        // Bimodal / threshold behaviour.
        _ => MemoryModel::Threshold {
            threshold: 0.5 * (input_lo + input_hi),
            below_mean: 0.6 * size_class * GB,
            above_mean: 1.8 * size_class * GB,
            noise_cv: 0.04,
        },
    };
    let preset = match memory_model {
        MemoryModel::Linear {
            slope, intercept, ..
        } => slope * input_hi + intercept,
        MemoryModel::Constant { mean, .. } => mean,
        MemoryModel::Power {
            coefficient,
            intercept,
            ..
        } => coefficient + intercept,
        MemoryModel::Threshold { above_mean, .. } => above_mean,
        MemoryModel::Saturating { ceiling, .. } => ceiling,
    };
    // Users request generously rounded-up allocations (this is exactly the
    // overprovisioning the paper sets out to eliminate).
    let preset_gb = ((preset * 3.0 / GB).ceil() + 2.0).min(NODE_MEMORY_BYTES / GB);
    TaskTypeSpec {
        name,
        instances,
        input_model,
        memory_model,
        runtime_model: runtime(
            45.0 + 20.0 * (idx % 4) as f64,
            25.0 + 10.0 * (idx % 3) as f64,
        ),
        footprint: footprint(
            60.0 + 90.0 * (idx % 4) as f64,
            0.8 + 0.4 * (idx % 3) as f64,
            0.2 + 0.3 * (idx % 4) as f64,
        ),
        preset_memory_bytes: preset_gb * GB,
    }
}

/// Distributes `total` instances over `n` filler tasks with mild variation
/// while preserving the exact total.
fn spread_instances(total: usize, n: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let base = total / n;
    let mut counts: Vec<usize> = (0..n)
        .map(|i| {
            let jitter = match i % 4 {
                0 => base / 5,
                1 => 0,
                2 => base / 10,
                _ => 0,
            };
            base.saturating_sub(base / 8) + jitter
        })
        .collect();
    let current: usize = counts.iter().sum();
    // Fix up the first entry so the exact total is preserved.
    if current < total {
        counts[0] += total - current;
    } else {
        let mut excess = current - total;
        for c in counts.iter_mut() {
            let take = excess.min(c.saturating_sub(1));
            *c -= take;
            excess -= take;
            if excess == 0 {
                break;
            }
        }
    }
    counts
}

/// nf-core/eager — ancient genome reconstruction. 13 task types, 121 average
/// instances per task type (Table I). Contains the linear MarkDuplicates
/// relation of Fig. 2 and the mpileup distribution of Fig. 1.
pub fn eager() -> WorkflowSpec {
    let total = 13 * 121;
    let mut task_types = vec![
        named_task(
            "MarkDuplicates",
            140,
            InputModel::Uniform {
                lo: 2.0 * GB,
                hi: 5.0 * GB,
            },
            // Fig. 2 (left): 2-5 GB of input map linearly onto 18-22 GB peaks.
            MemoryModel::Linear {
                slope: 1.33,
                intercept: 15.3 * GB,
                noise_cv: 0.02,
            },
            runtime(300.0, 120.0),
            footprint(95.0, 1.2, 1.0),
            32.0,
        ),
        named_task(
            "mpileup",
            150,
            InputModel::LogUniform {
                lo: 50.0 * MB,
                hi: 2.0 * GB,
            },
            // Fig. 1: peaks between ~0 and 400 MB.
            MemoryModel::Linear {
                slope: 0.12,
                intercept: 60.0 * MB,
                noise_cv: 0.20,
            },
            runtime(120.0, 60.0),
            footprint(80.0, 1.0, 0.3),
            4.0,
        ),
        named_task(
            "adapter_removal",
            130,
            InputModel::Uniform {
                lo: 1.0 * GB,
                hi: 6.0 * GB,
            },
            MemoryModel::Saturating {
                ceiling: 6.0 * GB,
                floor: 0.8 * GB,
                scale: 3.0 * GB,
                noise_cv: 0.04,
            },
            runtime(200.0, 90.0),
            footprint(250.0, 1.1, 0.9),
            12.0,
        ),
        named_task(
            "bwa_align",
            160,
            InputModel::Uniform {
                lo: 1.0 * GB,
                hi: 8.0 * GB,
            },
            MemoryModel::Linear {
                slope: 0.9,
                intercept: 5.5 * GB,
                noise_cv: 0.04,
            },
            runtime(500.0, 250.0),
            footprint(900.0, 1.3, 0.8),
            24.0,
        ),
    ];
    let named: usize = task_types.iter().map(|t| t.instances).sum();
    let filler = spread_instances(total - named, 9);
    for (i, count) in filler.into_iter().enumerate() {
        task_types.push(filler_task("eager", i, count, 2.5));
    }
    WorkflowSpec {
        name: "eager".to_string(),
        task_types,
    }
}

/// nf-core/methylseq — bisulfite sequencing. 9 task types, 100 average
/// instances per task type. I/O and CPU intensive (Fig. 7) with several
/// large-memory aligners, which is why the presets waste the most memory
/// here (Table II).
pub fn methylseq() -> WorkflowSpec {
    let total = 9 * 100;
    let mut task_types = vec![
        named_task(
            "bismark_align",
            120,
            InputModel::Uniform {
                lo: 3.0 * GB,
                hi: 12.0 * GB,
            },
            MemoryModel::Linear {
                slope: 1.6,
                intercept: 9.0 * GB,
                noise_cv: 0.04,
            },
            runtime(900.0, 300.0),
            footprint(1100.0, 1.4, 1.2),
            64.0,
        ),
        named_task(
            "bismark_deduplicate",
            110,
            InputModel::Uniform {
                lo: 2.0 * GB,
                hi: 8.0 * GB,
            },
            MemoryModel::Power {
                coefficient: 6.0 * GB,
                scale: 8.0 * GB,
                exponent: 1.8,
                intercept: 2.0 * GB,
                noise_cv: 0.05,
            },
            runtime(400.0, 150.0),
            footprint(130.0, 1.2, 1.5),
            40.0,
        ),
        named_task(
            "methylation_extractor",
            115,
            InputModel::Uniform {
                lo: 1.0 * GB,
                hi: 6.0 * GB,
            },
            MemoryModel::Linear {
                slope: 0.8,
                intercept: 1.5 * GB,
                noise_cv: 0.04,
            },
            runtime(350.0, 200.0),
            footprint(300.0, 1.5, 2.0),
            24.0,
        ),
    ];
    let named: usize = task_types.iter().map(|t| t.instances).sum();
    let filler = spread_instances(total - named, 6);
    for (i, count) in filler.into_iter().enumerate() {
        task_types.push(filler_task("methylseq", i, count, 3.5));
    }
    WorkflowSpec {
        name: "methylseq".to_string(),
        task_types,
    }
}

/// nf-core/chipseq — ChIP sequencing. 30 task types, 82 average instances per
/// task type. Contains the lcextrap and genomecov distributions of Fig. 1.
pub fn chipseq() -> WorkflowSpec {
    let total = 30 * 82;
    let mut task_types = vec![
        named_task(
            "lcextrap",
            90,
            InputModel::LogUniform {
                lo: 100.0 * MB,
                hi: 3.0 * GB,
            },
            // Fig. 1: 200 MB - 1 GB with a median around 550 MB.
            MemoryModel::Linear {
                slope: 0.28,
                intercept: 250.0 * MB,
                noise_cv: 0.18,
            },
            runtime(150.0, 40.0),
            footprint(95.0, 1.0, 0.2),
            4.0,
        ),
        named_task(
            "genomecov",
            85,
            InputModel::Uniform {
                lo: 2.0 * GB,
                hi: 9.0 * GB,
            },
            // Fig. 1: 4 - 7 GB peaks.
            MemoryModel::Linear {
                slope: 0.42,
                intercept: 3.4 * GB,
                noise_cv: 0.04,
            },
            runtime(200.0, 80.0),
            footprint(100.0, 1.1, 0.9),
            16.0,
        ),
        named_task(
            "bowtie2_align",
            100,
            InputModel::Uniform {
                lo: 1.0 * GB,
                hi: 10.0 * GB,
            },
            MemoryModel::Linear {
                slope: 0.7,
                intercept: 3.5 * GB,
                noise_cv: 0.04,
            },
            runtime(600.0, 220.0),
            footprint(800.0, 1.2, 0.7),
            24.0,
        ),
        named_task(
            "macs2_callpeak",
            80,
            InputModel::Uniform {
                lo: 0.5 * GB,
                hi: 4.0 * GB,
            },
            MemoryModel::Power {
                coefficient: 2.5 * GB,
                scale: 4.0 * GB,
                exponent: 1.7,
                intercept: 0.5 * GB,
                noise_cv: 0.05,
            },
            runtime(250.0, 100.0),
            footprint(100.0, 1.0, 0.5),
            12.0,
        ),
    ];
    let named: usize = task_types.iter().map(|t| t.instances).sum();
    let filler = spread_instances(total - named, 26);
    for (i, count) in filler.into_iter().enumerate() {
        task_types.push(filler_task("chipseq", i, count, 1.8));
    }
    WorkflowSpec {
        name: "chipseq".to_string(),
        task_types,
    }
}

/// nf-core/rnaseq — RNA sequencing. 30 task types, 39 average instances per
/// task type (the fewest executions per type, which stresses the early
/// training phase). Contains FastQC and MarkDuplicates (Picard) from the
/// alpha study (Fig. 10) and the non-linear BaseRecalibrator of Fig. 2.
pub fn rnaseq() -> WorkflowSpec {
    let total = 30 * 39;
    let mut task_types = vec![
        named_task(
            "FastQC",
            60,
            InputModel::Uniform {
                lo: 0.3 * GB,
                hi: 2.5 * GB,
            },
            MemoryModel::Constant {
                mean: 550.0 * MB,
                noise_cv: 0.10,
            },
            runtime(90.0, 30.0),
            footprint(100.0, 1.0, 0.1),
            4.0,
        ),
        named_task(
            "MarkDuplicates (Picard)",
            55,
            InputModel::Uniform {
                lo: 2.0 * GB,
                hi: 6.0 * GB,
            },
            MemoryModel::Linear {
                slope: 1.2,
                intercept: 14.0 * GB,
                noise_cv: 0.03,
            },
            runtime(300.0, 150.0),
            footprint(110.0, 1.2, 1.0),
            32.0,
        ),
        named_task(
            "BaseRecalibrator",
            50,
            InputModel::Uniform {
                lo: 0.2 * GB,
                hi: 1.0 * GB,
            },
            // Fig. 2 (right): 0.2 - 1.0 GB of input produce 0.5 - 3.5 GB
            // peaks along a clearly super-linear curve.
            MemoryModel::Power {
                coefficient: 3.2 * GB,
                scale: 1.0 * GB,
                exponent: 2.0,
                intercept: 0.4 * GB,
                noise_cv: 0.05,
            },
            runtime(200.0, 120.0),
            footprint(95.0, 1.1, 0.4),
            8.0,
        ),
        named_task(
            "star_align",
            45,
            InputModel::Uniform {
                lo: 1.0 * GB,
                hi: 8.0 * GB,
            },
            MemoryModel::Constant {
                mean: 31.0 * GB,
                noise_cv: 0.015,
            },
            runtime(700.0, 260.0),
            footprint(1300.0, 1.3, 0.8),
            38.0,
        ),
        named_task(
            "salmon_quant",
            50,
            InputModel::Uniform {
                lo: 0.5 * GB,
                hi: 5.0 * GB,
            },
            MemoryModel::Saturating {
                ceiling: 12.0 * GB,
                floor: 3.0 * GB,
                scale: 3.0 * GB,
                noise_cv: 0.03,
            },
            runtime(350.0, 140.0),
            footprint(600.0, 1.1, 0.5),
            20.0,
        ),
    ];
    let named: usize = task_types.iter().map(|t| t.instances).sum();
    let filler = spread_instances(total - named, 25);
    for (i, count) in filler.into_iter().enumerate() {
        task_types.push(filler_task("rnaseq", i, count, 1.2));
    }
    WorkflowSpec {
        name: "rnaseq".to_string(),
        task_types,
    }
}

/// nf-core/mag — metagenome assembly and binning. 8 task types, 720 average
/// instances per task type — the most data-parallel workflow. Contains the
/// Prokka task used in Fig. 12 (~1171 instances).
pub fn mag() -> WorkflowSpec {
    let total = 8 * 720;
    let mut task_types = vec![
        named_task(
            "Prokka",
            1171,
            InputModel::LogUniform {
                lo: 20.0 * MB,
                hi: 1.5 * GB,
            },
            MemoryModel::Linear {
                slope: 2.2,
                intercept: 450.0 * MB,
                noise_cv: 0.05,
            },
            runtime(180.0, 90.0),
            footprint(110.0, 1.0, 0.8),
            8.0,
        ),
        named_task(
            "megahit_assembly",
            650,
            InputModel::Uniform {
                lo: 2.0 * GB,
                hi: 14.0 * GB,
            },
            MemoryModel::Linear {
                slope: 2.4,
                intercept: 6.0 * GB,
                noise_cv: 0.04,
            },
            runtime(1200.0, 400.0),
            footprint(1500.0, 1.4, 1.2),
            64.0,
        ),
        named_task(
            "bowtie2_binning",
            700,
            InputModel::Uniform {
                lo: 1.0 * GB,
                hi: 9.0 * GB,
            },
            MemoryModel::Linear {
                slope: 0.6,
                intercept: 2.8 * GB,
                noise_cv: 0.04,
            },
            runtime(500.0, 200.0),
            footprint(700.0, 1.2, 0.6),
            16.0,
        ),
    ];
    let named: usize = task_types.iter().map(|t| t.instances).sum();
    let filler = spread_instances(total - named, 5);
    for (i, count) in filler.into_iter().enumerate() {
        task_types.push(filler_task("mag", i, count, 2.0));
    }
    WorkflowSpec {
        name: "mag".to_string(),
        task_types,
    }
}

/// iwd — the remote-sensing / computer-vision workflow analysing ice-wedge
/// polygon imagery. 5 task types, 332 average instances per task type, the
/// smallest memory footprint of the six (Table II: well below 1 GBh wastage
/// for Sizey). Contains the Preprocessing distribution of Fig. 1.
pub fn iwd() -> WorkflowSpec {
    let total = 5 * 332;
    let mut task_types = vec![
        named_task(
            "Preprocessing",
            340,
            InputModel::Uniform {
                lo: 200.0 * MB,
                hi: 1.2 * GB,
            },
            // Fig. 1: roughly 2.0 - 4.5 GB peaks.
            MemoryModel::Linear {
                slope: 2.0,
                intercept: 1.9 * GB,
                noise_cv: 0.04,
            },
            runtime(120.0, 60.0),
            footprint(150.0, 1.0, 0.6),
            8.0,
        ),
        named_task(
            "segmentation",
            330,
            InputModel::Uniform {
                lo: 100.0 * MB,
                hi: 900.0 * MB,
            },
            MemoryModel::Power {
                coefficient: 2.2 * GB,
                scale: 900.0 * MB,
                exponent: 1.5,
                intercept: 300.0 * MB,
                noise_cv: 0.04,
            },
            runtime(240.0, 100.0),
            footprint(350.0, 1.1, 0.4),
            6.0,
        ),
        named_task(
            "graph_analysis",
            320,
            InputModel::LogUniform {
                lo: 10.0 * MB,
                hi: 500.0 * MB,
            },
            MemoryModel::Linear {
                slope: 3.0,
                intercept: 150.0 * MB,
                noise_cv: 0.06,
            },
            runtime(90.0, 40.0),
            footprint(100.0, 0.8, 0.3),
            4.0,
        ),
    ];
    let named: usize = task_types.iter().map(|t| t.instances).sum();
    let filler = spread_instances(total - named, 2);
    for (i, count) in filler.into_iter().enumerate() {
        task_types.push(filler_task("iwd", i, count, 0.5));
    }
    WorkflowSpec {
        name: "iwd".to_string(),
        task_types,
    }
}

/// Builds a workflow profile by name (one of [`WORKFLOW_NAMES`]).
pub fn workflow_by_name(name: &str) -> Option<WorkflowSpec> {
    match name {
        "eager" => Some(eager()),
        "methylseq" => Some(methylseq()),
        "chipseq" => Some(chipseq()),
        "rnaseq" => Some(rnaseq()),
        "mag" => Some(mag()),
        "iwd" => Some(iwd()),
        _ => None,
    }
}

/// All six evaluation workflows in the paper's order.
pub fn all_workflows() -> Vec<WorkflowSpec> {
    WORKFLOW_NAMES
        .iter()
        .map(|n| workflow_by_name(n).expect("known workflow name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Expected Table I inventory: (workflow, task types, avg instances).
    const TABLE_I: [(&str, usize, f64); 6] = [
        ("eager", 13, 121.0),
        ("methylseq", 9, 100.0),
        ("chipseq", 30, 82.0),
        ("rnaseq", 30, 39.0),
        ("mag", 8, 720.0),
        ("iwd", 5, 332.0),
    ];

    #[test]
    fn table_i_inventory_matches_paper() {
        for (name, types, avg) in TABLE_I {
            let wf = workflow_by_name(name).unwrap();
            assert_eq!(wf.n_task_types(), types, "{name} task types");
            assert!(
                (wf.avg_instances_per_type() - avg).abs() < 0.5,
                "{name} avg instances: got {}, want {avg}",
                wf.avg_instances_per_type()
            );
        }
    }

    #[test]
    fn all_workflows_returns_six_in_order() {
        let wfs = all_workflows();
        assert_eq!(wfs.len(), 6);
        let names: Vec<&str> = wfs.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, WORKFLOW_NAMES.to_vec());
    }

    #[test]
    fn unknown_workflow_name_is_none() {
        assert!(workflow_by_name("sarek").is_none());
    }

    #[test]
    fn task_type_names_are_unique_within_each_workflow() {
        for wf in all_workflows() {
            let mut names: Vec<&str> = wf.task_types.iter().map(|t| t.name.as_str()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate task names in {}", wf.name);
        }
    }

    #[test]
    fn presets_exceed_typical_memory_requirement() {
        // The Workflow-Presets baseline must overprovision (that is the
        // premise of the paper), so every preset should exceed the expected
        // peak at a typical input.
        for wf in all_workflows() {
            for t in &wf.task_types {
                let typical_peak = t.memory_model.expected(t.input_model.typical());
                assert!(
                    t.preset_memory_bytes > typical_peak,
                    "{}/{} preset {} <= typical peak {}",
                    wf.name,
                    t.name,
                    t.preset_memory_bytes,
                    typical_peak
                );
            }
        }
    }

    #[test]
    fn presets_fit_on_a_node() {
        for wf in all_workflows() {
            for t in &wf.task_types {
                assert!(
                    t.preset_memory_bytes <= NODE_MEMORY_BYTES,
                    "{}/{} preset exceeds node memory",
                    wf.name,
                    t.name
                );
            }
        }
    }

    #[test]
    fn fig2_relations_have_expected_shape() {
        let eager = eager();
        let md = eager.task_type("MarkDuplicates").unwrap();
        // Linear: 2 GB -> ~18 GB, 5 GB -> ~22 GB.
        let low = md.memory_model.expected(2.0 * GB) / GB;
        let high = md.memory_model.expected(5.0 * GB) / GB;
        assert!((17.0..19.0).contains(&low), "low = {low}");
        assert!((21.0..23.0).contains(&high), "high = {high}");

        let rnaseq = rnaseq();
        let br = rnaseq.task_type("BaseRecalibrator").unwrap();
        let low = br.memory_model.expected(0.2 * GB) / GB;
        let high = br.memory_model.expected(1.0 * GB) / GB;
        assert!(
            low < 1.0,
            "BaseRecalibrator small inputs stay below 1 GB, got {low}"
        );
        assert!((3.0..4.0).contains(&high), "high = {high}");
        // Non-linearity: the mid-point must lie well below the linear
        // interpolation between the two endpoints.
        let mid = br.memory_model.expected(0.6 * GB) / GB;
        let linear_mid = (low + high) / 2.0;
        assert!(mid < linear_mid - 0.3, "mid {mid} vs linear {linear_mid}");
    }

    #[test]
    fn fig1_memory_ranges_are_calibrated() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let cases = [
            ("chipseq", "lcextrap", 150.0 * MB, 1.4 * GB),
            ("iwd", "Preprocessing", 1.6 * GB, 5.2 * GB),
            ("eager", "mpileup", 0.0, 600.0 * MB),
            ("chipseq", "genomecov", 3.5 * GB, 8.0 * GB),
        ];
        for (wf_name, task, lo, hi) in cases {
            let wf = workflow_by_name(wf_name).unwrap();
            let t = wf.task_type(task).unwrap();
            for _ in 0..200 {
                let input = t.input_model.sample(&mut rng);
                let peak = t.memory_model.sample(&mut rng, input);
                assert!(
                    peak >= lo * 0.5 && peak <= hi * 1.5,
                    "{wf_name}/{task} peak {peak} outside plausible range [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn prokka_has_about_1171_instances() {
        let wf = mag();
        assert_eq!(wf.task_type("Prokka").unwrap().instances, 1171);
    }

    #[test]
    fn spread_instances_preserves_total() {
        for (total, n) in [(100, 7), (1573, 9), (5, 2), (0, 3), (50, 1)] {
            let counts = spread_instances(total, n);
            assert_eq!(counts.len(), n);
            assert_eq!(counts.iter().sum::<usize>(), total, "total {total} n {n}");
        }
        assert!(spread_instances(10, 0).is_empty());
    }
}
