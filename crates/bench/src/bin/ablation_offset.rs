//! Ablation — offset strategy: each of the four fixed offset strategies vs.
//! the dynamic selection vs. no offset at all (DESIGN.md §5).
//!
//! Run with `cargo run -p sizey-bench --release --bin ablation_offset`.

use sizey_bench::{banner, fmt, generate_workloads, render_table, HarnessSettings, MethodSpec};
use sizey_core::{OffsetMode, OffsetStrategy, SizeyConfig};
use sizey_sim::{replay_workflow, SimulationConfig};

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Ablation: offset strategies (fixed vs dynamic vs none)",
        &settings,
    );

    let workloads = generate_workloads(&HarnessSettings {
        scale: settings.scale.min(0.1),
        ..settings
    });
    let sim = SimulationConfig::default();

    let mut variants: Vec<(String, OffsetMode)> = vec![
        ("Dynamic (paper default)".to_string(), OffsetMode::Dynamic),
        ("No offset".to_string(), OffsetMode::None),
    ];
    for strategy in OffsetStrategy::ALL {
        variants.push((format!("Fixed: {strategy}"), OffsetMode::Fixed(strategy)));
    }

    let mut rows = Vec::new();
    for (label, offset) in variants {
        let mut wastage = 0.0;
        let mut failures = 0usize;
        for workload in &workloads {
            let config = SizeyConfig {
                offset,
                ..SizeyConfig::default()
            };
            let mut sizey = MethodSpec::Sizey(config).build();
            let report = replay_workflow(
                &workload.spec.name,
                &workload.instances,
                sizey.as_mut(),
                &sim,
            );
            wastage += report.total_wastage_gbh();
            failures += report.total_failures();
        }
        rows.push(vec![label, fmt(wastage, 2), failures.to_string()]);
    }

    println!(
        "{}",
        render_table(&["Offset mode", "Total Wastage GBh", "Failures"], &rows)
    );
    println!("Expected shape: no offset causes clearly more failures (and their retry");
    println!("wastage); the dynamic selection should be competitive with the best fixed");
    println!("strategy on every workload mix.");
}
