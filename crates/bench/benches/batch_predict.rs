//! Criterion benchmark of the concurrent prediction service: batch-predict
//! throughput of the sharded [`ConcurrentSizey`] across thread counts,
//! against the serial single-predictor path sizing the same batch one task
//! at a time. This is the tentpole number of the serving layer — how much
//! a multi-tenant resource manager gains from fanning submissions across
//! the thread pool instead of queueing them on one predictor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sizey_core::{BatchRequest, ConcurrentSizey, SizeyConfig, SizeyPredictor};
use sizey_provenance::{MachineId, TaskOutcome, TaskRecord, TaskTypeId};
use sizey_sim::{AttemptContext, MemoryPredictor, TaskSubmission};

/// Distinct task types so the batch actually spreads across shards.
const TASK_TYPES: usize = 12;
/// Warm history per task type.
const HISTORY: u64 = 64;
/// Requests per measured batch.
const BATCH: usize = 256;

fn record(task_type: usize, seq: u64) -> TaskRecord {
    let input = 1e9 + (seq as f64 % 31.0) * 1.1e8;
    TaskRecord {
        workflow: "bench".into(),
        task_type: TaskTypeId::new(format!("type-{task_type}")),
        machine: MachineId::new("bench-machine"),
        sequence: seq,
        input_bytes: input,
        peak_memory_bytes: 2.0 * input + 1e9,
        allocated_memory_bytes: 8e9,
        runtime_seconds: 60.0,
        concurrent_tasks: 1,
        queue_delay_seconds: 0.0,
        outcome: TaskOutcome::Succeeded,
    }
}

fn submission(task_type: usize, seq: u64) -> TaskSubmission {
    TaskSubmission {
        workflow: "bench".into(),
        task_type: TaskTypeId::new(format!("type-{task_type}")),
        machine: MachineId::new("bench-machine"),
        sequence: seq,
        input_bytes: 2.7e9,
        preset_memory_bytes: 16e9,
    }
}

fn batch() -> Vec<BatchRequest> {
    (0..BATCH)
        .map(|i| BatchRequest::first(submission(i % TASK_TYPES, 10_000 + i as u64)))
        .collect()
}

fn bench_batch_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_predict_256");
    group.sample_size(10);

    // Serial path: one exclusive predictor sizes the batch task by task.
    let mut serial = SizeyPredictor::with_defaults();
    for t in 0..TASK_TYPES {
        for seq in 0..HISTORY {
            serial.observe(&record(t, seq));
        }
    }
    let requests = batch();
    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(requests.len());
            for request in &requests {
                out.push(serial.predict(std::hint::black_box(&request.task), request.ctx));
            }
            out
        });
    });

    // Concurrent service: same warm state per shard key, fanned across the
    // thread pool.
    for &threads in &[1usize, 2, 4, 8] {
        let service = ConcurrentSizey::sizey(SizeyConfig::default(), 16).with_threads(threads);
        for t in 0..TASK_TYPES {
            for seq in 0..HISTORY {
                service.observe(&record(t, seq));
            }
        }
        group.bench_with_input(BenchmarkId::new("concurrent", threads), &threads, |b, _| {
            b.iter(|| service.predict_batch(std::hint::black_box(&requests)));
        });
    }

    // Single-prediction latency through the service, for the read-lock
    // overhead vs the bare predictor.
    let service = ConcurrentSizey::sizey(SizeyConfig::default(), 16);
    for t in 0..TASK_TYPES {
        for seq in 0..HISTORY {
            service.observe(&record(t, seq));
        }
    }
    group.bench_function("single_predict_service", |b| {
        let task = submission(3, 99_999);
        b.iter(|| service.predict(std::hint::black_box(&task), AttemptContext::first()));
    });
    group.bench_function("single_predict_bare", |b| {
        let task = submission(3, 99_999);
        b.iter(|| serial.predict(std::hint::black_box(&task), AttemptContext::first()));
    });

    group.finish();
}

criterion_group!(benches, bench_batch_predict);
criterion_main!(benches);
