//! Vendored minimal stand-in for `proptest`.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the slice of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! attribute, range / tuple / `prop::collection::vec` strategies, the
//! [`Strategy::prop_map`](strategy::Strategy::prop_map) combinator and
//! weighted [`prop_oneof!`] unions,
//! and the [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, chosen deliberately for CI determinism:
//!
//! - **Seeding is pinned.** Each test function derives its RNG seed from a
//!   stable hash of its own name (overridable with the `PROPTEST_SEED`
//!   environment variable), so a given binary always replays the exact same
//!   cases. There is no persistence file and no time-derived entropy.
//! - **No shrinking.** On failure the generated inputs are printed verbatim;
//!   with pinned seeds the failure is already reproducible by rerunning.
//! - **Strategies are total.** A strategy is just a deterministic function
//!   from RNG state to value.

use rand::rngs::StdRng;
pub use rand::Rng as _;

/// Deterministic RNG threaded through strategy generation.
pub type TestRng = StdRng;

/// Strategy and combinator definitions.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A generator of values for property tests.
    ///
    /// Unlike upstream proptest there is no intermediate `ValueTree`
    /// (shrinking is not implemented), so a strategy is simply a function
    /// from RNG state to a `Value`.
    pub trait Strategy {
        /// Type of values produced.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Weighted union over same-valued strategies, built by
    /// [`prop_oneof!`](crate::prop_oneof): each draw picks one branch with
    /// probability proportional to its weight, then delegates to it.
    pub struct Union<T> {
        branches: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` branches; weights must
        /// not all be zero.
        pub fn new(branches: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(
                branches.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0,
                "prop_oneof! needs at least one positive weight"
            );
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.branches.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.gen_range(0..total);
            for (weight, strategy) in &self.branches {
                if pick < *weight as u64 {
                    return strategy.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("pick is below the summed weights by construction")
        }
    }

    /// Boxes a strategy for storage in a [`Union`] (used by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(strategy)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

    /// A fixed value is a strategy producing itself (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and length drawn from a
    /// range. Returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose elements
    /// are drawn independently from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and error types.
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure from a rendered assertion message.
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Derives the deterministic seed for a property: a stable FNV-1a hash
    /// of the test name, overridable via `PROPTEST_SEED` for exploration.
    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Builds the RNG for a property from its pinned seed.
    pub fn rng_for(test_name: &str) -> TestRng {
        TestRng::seed_from_u64(seed_for(test_name))
    }
}

/// Picks one of several strategies per draw, optionally weighted
/// (`prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`). All branches must
/// produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// One-stop imports for property tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of upstream's `prelude::prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)` item
/// becomes a standard `#[test]` that replays `config.cases` deterministic
/// cases, printing the generated inputs when an assertion fails.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{} (seed {}):\n{}\ninputs:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        $crate::test_runner::seed_for(stringify!($name)),
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can attach the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property; both sides are captured and rendered
/// with `Debug` on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, f in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_compose(pair in (0usize..4, 10u64..20)) {
            prop_assert!(pair.0 < 4 && pair.1 >= 10);
        }

        #[test]
        fn prop_map_transforms_draws(doubled in (0u64..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled < 100);
            prop_assert!(doubled % 2 == 0);
        }

        #[test]
        fn oneof_draws_only_from_its_branches(
            x in prop_oneof![4 => 0.0f64..1.0, 1 => Just(f64::INFINITY)],
        ) {
            prop_assert!((0.0..1.0).contains(&x) || x == f64::INFINITY);
        }
    }

    #[test]
    fn oneof_respects_zero_weights() {
        use crate::strategy::Strategy;
        let strategy = prop_oneof![0 => 5u64..6, 1 => 7u64..8];
        let mut rng = crate::test_runner::rng_for("oneof_respects_zero_weights");
        for _ in 0..64 {
            assert_eq!(strategy.generate(&mut rng), 7);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(
            crate::test_runner::seed_for("some_test"),
            crate::test_runner::seed_for("some_test")
        );
    }

    mod case_counting {
        use crate::prelude::*;
        use std::sync::atomic::{AtomicU32, Ordering};

        static CASES_RUN: AtomicU32 = AtomicU32::new(0);

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(17))]

            // Deliberately not #[test]: driven by the assertion below so the
            // observed case count is deterministic.
            fn counting_property(x in 0u64..10) {
                CASES_RUN.fetch_add(1, Ordering::Relaxed);
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn runner_executes_exactly_the_configured_cases() {
            counting_property();
            assert_eq!(CASES_RUN.load(Ordering::Relaxed), 17);
        }
    }

    mod failure_reporting {
        proptest! {
            fn failing_property(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }

        #[test]
        fn failing_cases_panic_with_inputs() {
            let err = std::panic::catch_unwind(failing_property).expect_err("property must fail");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("failing_property"), "message: {msg}");
            assert!(msg.contains("inputs:"), "message: {msg}");
        }
    }
}
