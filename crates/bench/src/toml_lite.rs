//! A minimal TOML-subset reader for experiment spec files.
//!
//! The workspace builds offline against vendored dependency stubs, so a real
//! TOML crate is not available; this module implements the small,
//! line-oriented subset the spec format needs — in the same spirit as the
//! hand-rolled TSV trace codec in `sizey-provenance`:
//!
//! * comments (`#`, also trailing),
//! * `key = value` pairs with bare keys,
//! * values: basic strings (`"..."` with `\\`, `\"`, `\n`, `\t` escapes),
//!   integers, floats (including `inf`/`-inf`), booleans, and single-line
//!   arrays of those,
//! * `[table]` headers and `[[array-of-tables]]` headers (dotted names are
//!   treated as plain, opaque names).
//!
//! Not supported (rejected with a line-numbered error rather than silently
//! misparsed): multi-line strings and arrays, literal/raw strings, inline
//! tables, dates, dotted *keys*, and duplicate keys within a table.
//!
//! Numbers written by the spec serialisers use Rust's shortest-round-trip
//! `f64` formatting, so `parse` → serialise → `parse` is lossless.

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            TomlValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float; integers coerce.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            TomlValue::Float(f) => Some(*f),
            TomlValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short description of the value's type for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Array(_) => "array",
        }
    }
}

/// One table: ordered `key = value` entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlTable {
    /// The entries in file order.
    pub entries: Vec<(String, TomlValue)>,
    /// 1-based line number of the table header (0 for the root table) —
    /// carried for error messages.
    pub line: usize,
}

impl TomlTable {
    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All keys in file order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

/// A parsed document: the root table, named tables, and arrays of tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlDocument {
    /// Key/value pairs before the first table header.
    pub root: TomlTable,
    /// `[name]` tables in file order.
    pub tables: Vec<(String, TomlTable)>,
    /// `[[name]]` tables in file order (one entry per occurrence).
    pub array_tables: Vec<(String, TomlTable)>,
}

impl TomlDocument {
    /// The `[name]` table, if present.
    pub fn table(&self, name: &str) -> Option<&TomlTable> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// All `[[name]]` tables in file order.
    pub fn array_of(&self, name: &str) -> Vec<&TomlTable> {
        self.array_tables
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, t)| t)
            .collect()
    }

    /// Parses a document from text.
    pub fn parse(text: &str) -> Result<Self, TomlError> {
        enum Target {
            Root,
            Table(usize),
            ArrayTable(usize),
        }
        let mut doc = TomlDocument::default();
        let mut target = Target::Root;
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[") {
                let name = name.strip_suffix("]]").ok_or_else(|| TomlError {
                    line: line_no,
                    message: format!("malformed array-of-tables header {line:?}"),
                })?;
                doc.array_tables.push((
                    validate_name(name, line_no)?,
                    TomlTable {
                        entries: Vec::new(),
                        line: line_no,
                    },
                ));
                target = Target::ArrayTable(doc.array_tables.len() - 1);
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name.strip_suffix(']').ok_or_else(|| TomlError {
                    line: line_no,
                    message: format!("malformed table header {line:?}"),
                })?;
                let name = validate_name(name, line_no)?;
                if doc.table(&name).is_some() {
                    return Err(TomlError {
                        line: line_no,
                        message: format!("duplicate table [{name}]"),
                    });
                }
                doc.tables.push((
                    name,
                    TomlTable {
                        entries: Vec::new(),
                        line: line_no,
                    },
                ));
                target = Target::Table(doc.tables.len() - 1);
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| TomlError {
                line: line_no,
                message: format!("expected \"key = value\", found {line:?}"),
            })?;
            let key = key.trim();
            if key.is_empty() || !is_bare_key(key) {
                return Err(TomlError {
                    line: line_no,
                    message: format!("invalid key {key:?} (bare keys only)"),
                });
            }
            let value = parse_value(value.trim(), line_no)?;
            let table = match target {
                Target::Root => &mut doc.root,
                Target::Table(i) => &mut doc.tables[i].1,
                Target::ArrayTable(i) => &mut doc.array_tables[i].1,
            };
            if table.get(key).is_some() {
                return Err(TomlError {
                    line: line_no,
                    message: format!("duplicate key {key:?}"),
                });
            }
            table.entries.push((key.to_string(), value));
        }
        Ok(doc)
    }
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TomlError {}

fn is_bare_key(key: &str) -> bool {
    key.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn validate_name(name: &str, line: usize) -> Result<String, TomlError> {
    let name = name.trim();
    let valid = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.');
    if valid {
        Ok(name.to_string())
    } else {
        Err(TomlError {
            line,
            message: format!("invalid table name {name:?}"),
        })
    }
}

/// Strips a trailing `#` comment, respecting `#` inside basic strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(text: &str, line: usize) -> Result<TomlValue, TomlError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(TomlError {
            line,
            message: "missing value".to_string(),
        });
    }
    if text.starts_with('"') {
        return parse_string(text, line).map(TomlValue::Str);
    }
    if text.starts_with('[') {
        let inner = text
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| TomlError {
                line,
                message: format!("malformed array {text:?} (arrays must be single-line)"),
            })?;
        let mut items = Vec::new();
        for part in split_array_items(inner, line)? {
            items.push(parse_value(&part, line)?);
        }
        return Ok(TomlValue::Array(items));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        "inf" | "+inf" => return Ok(TomlValue::Float(f64::INFINITY)),
        "-inf" => return Ok(TomlValue::Float(f64::NEG_INFINITY)),
        _ => {}
    }
    // TOML only allows `_` *between* digits (`1_000`); `_5`, `5_` and `5__0`
    // are malformed rather than silently normalised.
    if text.contains('_') {
        let bytes = text.as_bytes();
        let well_placed = text.char_indices().all(|(i, c)| {
            c != '_'
                || (i > 0
                    && bytes[i - 1].is_ascii_digit()
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()))
        });
        if !well_placed {
            return Err(TomlError {
                line,
                message: format!(
                    "unparsable value {text:?} (underscores are only allowed between digits)"
                ),
            });
        }
    }
    let plain = text.replace('_', "");
    if let Ok(i) = plain.parse::<i64>() {
        return Ok(TomlValue::Int(i));
    }
    if let Ok(f) = plain.parse::<f64>() {
        if f.is_nan() {
            return Err(TomlError {
                line,
                message: "nan is not a valid spec value".to_string(),
            });
        }
        return Ok(TomlValue::Float(f));
    }
    Err(TomlError {
        line,
        message: format!("unparsable value {text:?}"),
    })
}

fn parse_string(text: &str, line: usize) -> Result<String, TomlError> {
    let inner = text
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .filter(|_| text.len() >= 2)
        .ok_or_else(|| TomlError {
            line,
            message: format!("malformed string {text:?}"),
        })?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return Err(TomlError {
                line,
                message: format!("unescaped quote inside string {text:?}"),
            });
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => {
                return Err(TomlError {
                    line,
                    message: format!("unsupported escape \\{other:?}"),
                })
            }
        }
    }
    Ok(out)
}

/// Splits the inside of a single-line array at top-level commas (commas
/// inside strings or nested arrays do not split).
fn split_array_items(inner: &str, line: usize) -> Result<Vec<String>, TomlError> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                current.push(c);
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => {
                depth = depth.checked_sub(1).ok_or_else(|| TomlError {
                    line,
                    message: "unbalanced ']' inside array".to_string(),
                })?
            }
            ',' if !in_string && depth == 0 => {
                let item = std::mem::take(&mut current);
                let item = item.trim().to_string();
                // `[1,,2]` and `[,]` are malformed; only a *trailing* comma
                // (handled after the loop) may leave an empty item.
                if item.is_empty() {
                    return Err(TomlError {
                        line,
                        message: "empty array item (stray comma)".to_string(),
                    });
                }
                items.push(item);
                escaped = false;
                continue;
            }
            _ => {}
        }
        escaped = false;
        current.push(c);
    }
    if in_string || depth != 0 {
        return Err(TomlError {
            line,
            message: "unterminated string or bracket inside array".to_string(),
        });
    }
    let last = current.trim();
    if !last.is_empty() {
        items.push(last.to_string());
    }
    Ok(items)
}

/// Serialisation helpers used by the spec writers.
pub mod write {
    /// Formats a float so it parses back bit-identically *and* reads as a
    /// float (an explicit `.0` is appended to integral values).
    pub fn float(value: f64) -> String {
        if value.is_infinite() {
            return if value > 0.0 { "inf" } else { "-inf" }.to_string();
        }
        let s = format!("{value}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    }

    /// Formats a basic string with the escapes the parser understands.
    pub fn string(value: &str) -> String {
        let mut out = String::with_capacity(value.len() + 2);
        out.push('"');
        for c in value.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                _ => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_root_tables_and_arrays_of_tables() {
        let doc = TomlDocument::parse(
            r#"
# experiment
name = "smoke" # trailing comment
scale = 0.02
seeds = [3, 4]
flags = [true, false]

[sim]
max_attempts = 12
node_memory_bytes = 128000000000.0

[[method]]
kind = "sizey"
alpha = 0.0

[[method]]
kind = "preset"
"#,
        )
        .unwrap();
        assert_eq!(doc.root.get("name").unwrap().as_str(), Some("smoke"));
        assert_eq!(doc.root.get("scale").unwrap().as_float(), Some(0.02));
        let seeds = doc.root.get("seeds").unwrap().as_array().unwrap();
        assert_eq!(
            seeds.iter().filter_map(|v| v.as_int()).collect::<Vec<_>>(),
            [3, 4]
        );
        assert_eq!(
            doc.table("sim")
                .unwrap()
                .get("max_attempts")
                .unwrap()
                .as_int(),
            Some(12)
        );
        let methods = doc.array_of("method");
        assert_eq!(methods.len(), 2);
        assert_eq!(methods[0].get("kind").unwrap().as_str(), Some("sizey"));
        assert_eq!(methods[1].get("kind").unwrap().as_str(), Some("preset"));
    }

    #[test]
    fn integers_coerce_to_floats_but_not_vice_versa() {
        let doc = TomlDocument::parse("a = 5\nb = 1.5\n").unwrap();
        assert_eq!(doc.root.get("a").unwrap().as_float(), Some(5.0));
        assert_eq!(doc.root.get("a").unwrap().as_int(), Some(5));
        assert_eq!(doc.root.get("b").unwrap().as_int(), None);
    }

    #[test]
    fn strings_support_escapes_and_embedded_hashes() {
        let doc = TomlDocument::parse(r#"s = "a # not a comment \"q\" \n""#).unwrap();
        assert_eq!(
            doc.root.get("s").unwrap().as_str(),
            Some("a # not a comment \"q\" \n")
        );
    }

    #[test]
    fn float_round_trip_is_lossless() {
        for value in [
            0.0,
            0.02,
            1.0 / 3.0,
            128e9,
            1.15,
            f64::INFINITY,
            2.0_f64.powi(60),
        ] {
            let text = format!("v = {}", write::float(value));
            let doc = TomlDocument::parse(&text).unwrap();
            assert_eq!(doc.root.get("v").unwrap().as_float(), Some(value), "{text}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = TomlDocument::parse("ok = 1\nbroken\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = TomlDocument::parse("a = 1\na = 2\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
        let err = TomlDocument::parse("[t\n").unwrap_err();
        assert!(err.message.contains("malformed table header"));
        assert!(TomlDocument::parse("v = nan\n").is_err());
        // Stray commas are malformed, but a single trailing comma is fine.
        assert!(TomlDocument::parse("v = [1,,2]\n").is_err());
        assert!(TomlDocument::parse("v = [,]\n").is_err());
        let trailing = TomlDocument::parse("v = [1, 2,]\n").unwrap();
        assert_eq!(trailing.root.get("v").unwrap().as_array().unwrap().len(), 2);
        // Underscores only between digits (the TOML rule).
        assert_eq!(
            TomlDocument::parse("v = 1_000\n")
                .unwrap()
                .root
                .get("v")
                .unwrap()
                .as_int(),
            Some(1000)
        );
        assert!(TomlDocument::parse("v = _5\n").is_err());
        assert!(TomlDocument::parse("v = 5_\n").is_err());
        assert!(TomlDocument::parse("v = 5__0\n").is_err());
        assert!(
            TomlDocument::parse("v = [1,\n2]\n").is_err(),
            "multi-line arrays are rejected"
        );
    }

    #[test]
    fn nested_arrays_and_inf_parse() {
        let doc = TomlDocument::parse("v = [[1, 2], [3]]\ninf_v = inf\nneg = -inf\n").unwrap();
        let outer = doc.root.get("v").unwrap().as_array().unwrap();
        assert_eq!(outer.len(), 2);
        assert_eq!(outer[0].as_array().unwrap().len(), 2);
        assert_eq!(
            doc.root.get("inf_v").unwrap().as_float(),
            Some(f64::INFINITY)
        );
        assert_eq!(
            doc.root.get("neg").unwrap().as_float(),
            Some(f64::NEG_INFINITY)
        );
    }
}
