//! Bounded MPSC channels with micro-batch draining — the admission-control
//! substrate of the async serving front-end.
//!
//! [`BoundedQueue`] is a multi-producer single-consumer-friendly (any number
//! of consumers is safe, the service uses one per shard) bounded queue built
//! on a `parking_lot` mutex and two condition variables. It provides the
//! three behaviours a serving queue needs and `std::sync::mpsc` does not
//! compose well for:
//!
//! * **admission control** — [`try_send`](BoundedQueue::try_send) (shed on
//!   full: the caller gets the item back and counts it) and
//!   [`send`](BoundedQueue::send) (block on full: backpressure propagates to
//!   the submitter),
//! * **micro-batching** — [`recv_batch`](BoundedQueue::recv_batch) blocks
//!   for the first item, then keeps draining until the batch size cap or a
//!   time window elapses, amortising the consumer's per-batch work (one
//!   shard write-lock hold, one snapshot publication) over many items,
//! * **graceful shutdown** — [`close`](BoundedQueue::close) rejects new
//!   producers but lets consumers drain everything already accepted; a
//!   receiver returns empty only when the queue is closed *and* drained, so
//!   accepted work is never lost.
//!
//! The queue never holds more than `capacity` items: both send paths check
//! under the same mutex that guards the buffer, so the bound is an invariant
//! rather than a race (pinned by the backpressure proptests).

// Observe submissions flow through this module on the serving fast path;
// the marker opts it into the no-panic-hot-path lint rule. (The predict
// path never touches a queue — it reads lock-free snapshots.)
#![doc = "lint:hot-path"]

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Why a send did not enqueue. The rejected item is handed back so shed
/// policies can count or re-route it without cloning up front.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError<T> {
    /// The queue was at capacity (only [`BoundedQueue::try_send`] returns
    /// this; [`BoundedQueue::send`] blocks instead).
    Full(T),
    /// The queue was closed — the service is shutting down.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue with blocking and non-blocking sends, micro-batch
/// receives and drain-on-close shutdown. See the [module docs](self).
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Signalled on enqueue and close; consumers wait on it.
    not_empty: Condvar,
    /// Signalled on dequeue and close; blocked producers wait on it.
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity.clamp(1, 4096)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (a snapshot; concurrent senders and receivers
    /// move it, but never above [`capacity`](BoundedQueue::capacity)).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when no items are queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking send: enqueues, or hands the item straight back when the
    /// queue is full ([`SendError::Full`] — the *shed* admission policy) or
    /// closed ([`SendError::Closed`]).
    pub fn try_send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(SendError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(SendError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking send: waits while the queue is full (the *block* admission
    /// policy — backpressure reaches the submitting client), enqueues once
    /// there is room. Returns the item when the queue closes while waiting.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(SendError::Closed(item));
            }
            if state.items.len() < self.capacity {
                break;
            }
            state = self.not_full.wait(state);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Micro-batch receive: blocks until at least one item is available (or
    /// the queue is closed and drained), then keeps draining until `max`
    /// items are collected or `window` has elapsed since the first item was
    /// seen. Appends to `buf` and returns how many items were appended.
    ///
    /// Returns `0` **only** when the queue is closed and fully drained —
    /// the consumer's termination signal; every item accepted before
    /// [`close`](BoundedQueue::close) is still delivered first.
    pub fn recv_batch(&self, buf: &mut Vec<T>, max: usize, window: Duration) -> usize {
        let max = max.max(1);
        let before = buf.len();
        let mut state = self.state.lock();
        // Phase 1: wait for the first item (or closed-and-drained).
        while state.items.is_empty() {
            if state.closed {
                return 0;
            }
            state = self.not_empty.wait(state);
        }
        // Phase 2: drain up to `max`, waiting until the window deadline for
        // stragglers so bursts coalesce into one batch.
        // lint:allow(no-wallclock-in-sim): the micro-batch window is real
        // serving time by design (this layer runs on OS threads, not the
        // simulator's virtual clock; nothing here feeds back into replays).
        let deadline = Instant::now() + window;
        loop {
            while buf.len() - before < max {
                match state.items.pop_front() {
                    Some(item) => buf.push(item),
                    None => break,
                }
            }
            // Space freed: wake producers blocked on a full queue.
            self.not_full.notify_all();
            if buf.len() - before >= max || state.closed {
                break;
            }
            let (guard, wait_result) = self.not_empty.wait_until(state, deadline);
            state = guard;
            if wait_result.timed_out() {
                // Window elapsed — take anything that slipped in with the
                // final wakeup, then ship the batch.
                while buf.len() - before < max {
                    match state.items.pop_front() {
                        Some(item) => buf.push(item),
                        None => break,
                    }
                }
                self.not_full.notify_all();
                break;
            }
        }
        buf.len() - before
    }

    /// Closes the queue: subsequent sends fail with [`SendError::Closed`],
    /// blocked senders return, and consumers keep receiving until the
    /// already-accepted items are drained (then
    /// [`recv_batch`](BoundedQueue::recv_batch) returns 0).
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once [`close`](BoundedQueue::close) was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_send_sheds_at_capacity_and_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_send(1), Ok(()));
        assert_eq!(q.try_send(2), Ok(()));
        assert_eq!(q.try_send(3), Err(SendError::Full(3)));
        assert_eq!(q.len(), 2);
        let mut buf = Vec::new();
        assert_eq!(q.recv_batch(&mut buf, 10, Duration::ZERO), 2);
        assert_eq!(buf, vec![1, 2]);
    }

    #[test]
    fn recv_batch_respects_the_size_cap_and_preserves_order() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_send(i).unwrap();
        }
        let mut buf = Vec::new();
        assert_eq!(q.recv_batch(&mut buf, 4, Duration::ZERO), 4);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(q.recv_batch(&mut buf, 100, Duration::ZERO), 6);
        assert_eq!(buf, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_send_waits_for_room() {
        let q = Arc::new(BoundedQueue::new(1));
        q.send(1u32).unwrap();
        let sender = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.send(2).is_ok())
        };
        // The sender is blocked on the full queue; draining unblocks it.
        thread::sleep(Duration::from_millis(30));
        assert!(!sender.is_finished());
        let mut buf = Vec::new();
        q.recv_batch(&mut buf, 1, Duration::ZERO);
        assert!(sender.join().unwrap());
        q.recv_batch(&mut buf, 1, Duration::from_millis(200));
        assert_eq!(buf, vec![1, 2]);
    }

    #[test]
    fn close_rejects_senders_but_drains_consumers() {
        let q = BoundedQueue::new(8);
        q.try_send("a").unwrap();
        q.try_send("b").unwrap();
        q.close();
        assert_eq!(q.try_send("c"), Err(SendError::Closed("c")));
        assert_eq!(q.send("d"), Err(SendError::Closed("d")));
        let mut buf = Vec::new();
        // Accepted items survive the close...
        assert_eq!(q.recv_batch(&mut buf, 10, Duration::from_secs(5)), 2);
        assert_eq!(buf, vec!["a", "b"]);
        // ...and only then does the receiver see the termination signal.
        assert_eq!(q.recv_batch(&mut buf, 10, Duration::from_secs(5)), 0);
    }

    #[test]
    fn close_wakes_a_blocked_receiver() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let receiver = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut buf = Vec::new();
                q.recv_batch(&mut buf, 10, Duration::from_secs(60))
            })
        };
        thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(receiver.join().unwrap(), 0);
    }

    #[test]
    fn close_wakes_a_blocked_sender() {
        let q = Arc::new(BoundedQueue::new(1));
        q.send(1u32).unwrap();
        let sender = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.send(2))
        };
        thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(sender.join().unwrap(), Err(SendError::Closed(2)));
    }

    #[test]
    fn recv_batch_window_coalesces_a_trickle() {
        let q = Arc::new(BoundedQueue::new(64));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..5u32 {
                    q.send(i).unwrap();
                    thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let mut buf = Vec::new();
        // A generous window captures the whole trickle in one batch.
        let n = q.recv_batch(&mut buf, 64, Duration::from_secs(2));
        producer.join().unwrap();
        // At least the first item, at most all five; whatever arrived in
        // the window came out in order.
        assert!((1..=5).contains(&n));
        assert_eq!(buf, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_is_never_exceeded_under_concurrent_pressure() {
        let q = Arc::new(BoundedQueue::new(4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut sent = 0u64;
                    let mut shed = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        match q.try_send(1u8) {
                            Ok(()) => sent += 1,
                            Err(SendError::Full(_)) => shed += 1,
                            Err(SendError::Closed(_)) => break,
                        }
                    }
                    (sent, shed)
                })
            })
            .collect();
        let mut received = 0u64;
        let mut buf = Vec::new();
        for _ in 0..200 {
            assert!(q.len() <= q.capacity(), "queue exceeded its bound");
            buf.clear();
            received += q.recv_batch(&mut buf, 8, Duration::ZERO) as u64;
        }
        stop.store(true, Ordering::Relaxed);
        let mut sent_total = 0;
        for p in producers {
            let (sent, _) = p.join().unwrap();
            sent_total += sent;
        }
        // Drain the rest; accepted == received once quiescent.
        loop {
            buf.clear();
            q.close();
            let n = q.recv_batch(&mut buf, 1024, Duration::ZERO);
            if n == 0 {
                break;
            }
            received += n as u64;
        }
        assert_eq!(sent_total, received, "accepted items were lost");
    }
}
