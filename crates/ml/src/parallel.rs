//! Small scoped-thread parallel helpers.
//!
//! The workspace deliberately avoids a heavyweight task scheduler: the
//! parallelism we need (training a handful of models or a few dozen forest
//! trees at once) maps directly onto `std::thread::scope` with static
//! chunking. Results are returned in input order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on worker threads used by the ML substrate. Kept modest
/// because the simulator replays many workflows concurrently at a higher
/// level.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16)
}

/// Applies `f` to every item of `items` in parallel (dynamic work stealing via
/// an atomic index) and returns the results in input order.
///
/// Falls back to a sequential loop for small inputs where thread spawn
/// overhead would dominate.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 || n <= 2 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let results_ptr = SendPtr(results.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                // Bind the wrapper itself so edition-2021 disjoint capture
                // moves the `Send` wrapper into the closure, not its raw
                // pointer field.
                #[allow(clippy::redundant_locals)]
                let results_ptr = results_ptr;
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                // SAFETY: each index i is claimed by exactly one worker via
                // the atomic counter, so no two threads write the same slot,
                // and the vector outlives the scope.
                unsafe {
                    *results_ptr.0.add(i) = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

/// Wrapper making a raw pointer `Send`/`Copy` for the disjoint-write pattern
/// used by [`parallel_map`].
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: SendPtr is only constructed inside `parallel_map`, pointing at a
// results vector that outlives every worker (enforced by `thread::scope`),
// and workers write strictly disjoint slots claimed through an atomic
// counter — so sharing the pointer across threads cannot race.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above — `&SendPtr` only exposes a raw pointer whose disjoint,
// scope-bounded use is guaranteed by `parallel_map`'s index claiming.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let items: Vec<u64> = (0..10).collect();
        let out = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn results_match_sequential_for_nontrivial_work() {
        let items: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let seq: Vec<f64> = items.iter().map(|x| (x * 1.5).sin()).collect();
        let par = parallel_map(&items, default_parallelism(), |x| (x * 1.5).sin());
        assert_eq!(seq, par);
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }
}
