//! Replay a full synthetic nf-core-style workflow through the online
//! simulator and compare Sizey with the workflow presets.
//!
//! Run with `cargo run --release --example workflow_replay [workflow] [scale]`
//! where `workflow` is one of eager, methylseq, chipseq, rnaseq, mag, iwd
//! (default: rnaseq) and `scale` is the fraction of the paper's task volume
//! (default: 0.1).

use sizey_suite::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workflow = args.get(1).map(String::as_str).unwrap_or("rnaseq");
    let scale: f64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1_f64)
        .clamp(0.01, 1.0);

    let Some(spec) = sizey_workflows::workflow_by_name(workflow) else {
        eprintln!("unknown workflow {workflow:?}; choose one of eager, methylseq, chipseq, rnaseq, mag, iwd");
        std::process::exit(1);
    };

    println!(
        "Replaying {workflow} at scale {scale} ({} task types)",
        spec.n_task_types()
    );
    let instances = generate_workflow(&spec, &GeneratorConfig::scaled(scale, 42));
    println!("Generated {} task instances.\n", instances.len());

    let sim = SimulationConfig::default();

    let mut presets = PresetPredictor;
    let preset_report = replay_workflow(workflow, &instances, &mut presets, &sim);

    let mut sizey = SizeyPredictor::with_defaults();
    let sizey_report = replay_workflow(workflow, &instances, &mut sizey, &sim);

    for report in [&preset_report, &sizey_report] {
        println!("method: {}", report.method);
        println!(
            "  wastage over time : {:>10.2} GBh",
            report.total_wastage_gbh()
        );
        println!("  task failures     : {:>10}", report.total_failures());
        println!(
            "  total task runtime: {:>10.2} h",
            report.total_runtime_hours()
        );
        println!(
            "  simulated makespan: {:>10.2} h",
            report.makespan_seconds / 3600.0
        );
        println!();
    }

    let reduction =
        (1.0 - sizey_report.total_wastage_gbh() / preset_report.total_wastage_gbh()) * 100.0;
    println!("Sizey reduces memory wastage by {reduction:.1}% compared to the workflow presets.");

    // Show where the remaining wastage sits.
    let mut by_type: Vec<(String, f64)> = sizey_report
        .wastage_by_task_type()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    by_type.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite wastage"));
    println!("\nTop remaining wastage per task type (Sizey):");
    for (task, wastage) in by_type.into_iter().take(5) {
        println!("  {task:<30} {wastage:>8.2} GBh");
    }
}
