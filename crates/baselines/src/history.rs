//! Shared per-(task type, machine) history bookkeeping used by all baseline
//! methods.

use sizey_provenance::{TaskMachineKey, TaskOutcome, TaskRecord};
use std::collections::HashMap;
use std::sync::Arc;

/// Observation history of successful executions, grouped per
/// (task type, machine) combination.
///
/// Alongside the per-key indices, the history keeps a **journal** of every
/// record passed to [`History::observe`] (including failed attempts, which
/// contribute nothing to the indices) in observation order. The journal is
/// the event source backing the snapshot/restore lifecycle
/// ([`sizey_sim::lifecycle`]): all baseline state is a deterministic function
/// of it, so replaying it through a fresh predictor reconstructs the learned
/// state bit for bit.
///
/// The journal grows with every observation — a deliberate trade-off: the
/// baselines now mirror the provenance-database model the paper attaches to
/// the workflow system (Sizey's `ProvenanceStore` retains exactly the same
/// records), and retaining the full record is what makes any moment's state
/// checkpointable without a second serialisation of derived structures. A
/// deployment that needs bounded memory and no checkpoints can periodically
/// swap the predictor for a fresh one restored from a truncated journal.
#[derive(Debug, Default, Clone)]
pub struct History {
    observations: HashMap<TaskMachineKey, Vec<Observation>>,
    /// Reference-counted so snapshots share the records instead of
    /// deep-cloning the journal a second time.
    journal: Vec<Arc<TaskRecord>>,
}

/// One successful task execution as seen by a baseline method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Input size in bytes.
    pub input_bytes: f64,
    /// Measured peak memory in bytes.
    pub peak_bytes: f64,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records a finished attempt. Only successful executions carry a true
    /// peak measurement and enter the per-key indices; failed attempts are
    /// ignored there (failure handling is the responsibility of each
    /// method), but every record enters the journal so snapshots stay a
    /// faithful event log.
    pub fn observe(&mut self, record: &TaskRecord) {
        self.journal.push(Arc::new(record.clone()));
        if record.outcome != TaskOutcome::Succeeded {
            return;
        }
        self.observations
            .entry(record.key())
            .or_default()
            .push(Observation {
                input_bytes: record.input_bytes,
                peak_bytes: record.peak_memory_bytes,
            });
    }

    /// Every record ever observed, in observation order — the event source
    /// for the snapshot/restore lifecycle.
    pub fn journal(&self) -> &[Arc<TaskRecord>] {
        &self.journal
    }

    /// True when nothing has been observed yet (fresh instance).
    pub fn is_fresh(&self) -> bool {
        self.journal.is_empty()
    }

    /// All successful observations for a key, in arrival order.
    pub fn get(&self, key: &TaskMachineKey) -> &[Observation] {
        self.observations.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of successful observations for a key.
    pub fn count(&self, key: &TaskMachineKey) -> usize {
        self.get(key).len()
    }

    /// The peak memory values for a key.
    pub fn peaks(&self, key: &TaskMachineKey) -> Vec<f64> {
        self.get(key).iter().map(|o| o.peak_bytes).collect()
    }

    /// The maximum observed peak for a key, if any.
    pub fn max_peak(&self, key: &TaskMachineKey) -> Option<f64> {
        self.get(key)
            .iter()
            .map(|o| o.peak_bytes)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Implements [`sizey_sim::lifecycle::CheckpointPredictor`] for a baseline
/// whose entire learned state lives in a `history: History` field: the
/// snapshot is the history's journal, and restore replays it through
/// `observe` on a fresh instance. Baselines keep no predict-path counters,
/// so any counter in the state is rejected as foreign.
macro_rules! impl_history_checkpoint {
    ($ty:ty) => {
        impl sizey_sim::lifecycle::CheckpointPredictor for $ty {
            fn snapshot(&self) -> sizey_sim::lifecycle::PredictorState {
                sizey_sim::lifecycle::PredictorState {
                    journal: self.history.journal().to_vec(),
                    counters: Vec::new(),
                }
            }

            fn restore(
                &mut self,
                state: &sizey_sim::lifecycle::PredictorState,
            ) -> Result<(), sizey_sim::lifecycle::StateError> {
                if !self.history.is_fresh() {
                    return Err(sizey_sim::lifecycle::StateError::NotFresh {
                        observed: self.history.journal().len(),
                    });
                }
                if let Some((name, _)) = state.counters.first() {
                    return Err(sizey_sim::lifecycle::StateError::UnknownCounter {
                        name: name.clone(),
                    });
                }
                for record in &state.journal {
                    sizey_sim::MemoryPredictor::observe(self, record);
                }
                Ok(())
            }
        }
    };
}

pub(crate) use impl_history_checkpoint;

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::{MachineId, TaskTypeId};

    fn record(peak: f64, outcome: TaskOutcome) -> TaskRecord {
        TaskRecord {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: 1e9,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 2.0,
            runtime_seconds: 60.0,
            concurrent_tasks: 0,
            queue_delay_seconds: 0.0,
            outcome,
        }
    }

    #[test]
    fn only_successful_records_are_stored() {
        let mut h = History::new();
        h.observe(&record(1e9, TaskOutcome::Succeeded));
        h.observe(&record(9e9, TaskOutcome::FailedOutOfMemory));
        let key = TaskMachineKey::new("t", "m");
        assert_eq!(h.count(&key), 1);
        assert_eq!(h.peaks(&key), vec![1e9]);
        assert_eq!(h.max_peak(&key), Some(1e9));
    }

    #[test]
    fn unknown_key_is_empty() {
        let h = History::new();
        let key = TaskMachineKey::new("unknown", "m");
        assert!(h.get(&key).is_empty());
        assert_eq!(h.count(&key), 0);
        assert_eq!(h.max_peak(&key), None);
    }

    #[test]
    fn journal_keeps_every_record_in_order() {
        let mut h = History::new();
        assert!(h.is_fresh());
        h.observe(&record(1e9, TaskOutcome::Succeeded));
        h.observe(&record(9e9, TaskOutcome::FailedOutOfMemory));
        h.observe(&record(2e9, TaskOutcome::Succeeded));
        assert!(!h.is_fresh());
        assert_eq!(h.journal().len(), 3, "failures enter the journal too");
        assert_eq!(h.journal()[1].outcome, TaskOutcome::FailedOutOfMemory);
        // Replaying the journal into a fresh history reproduces the indices.
        let mut replayed = History::new();
        for r in h.journal() {
            replayed.observe(r);
        }
        let key = TaskMachineKey::new("t", "m");
        assert_eq!(replayed.peaks(&key), h.peaks(&key));
    }

    #[test]
    fn observations_preserve_order() {
        let mut h = History::new();
        for i in 1..=5 {
            h.observe(&record(i as f64 * 1e9, TaskOutcome::Succeeded));
        }
        let key = TaskMachineKey::new("t", "m");
        let peaks = h.peaks(&key);
        assert_eq!(peaks, vec![1e9, 2e9, 3e9, 4e9, 5e9]);
        assert_eq!(h.max_peak(&key), Some(5e9));
    }
}
