//! The online replay engine.
//!
//! The engine replays the task instances of a workflow in submission order
//! against a [`MemoryPredictor`], exactly like the paper's simulated online
//! environment: the predictor sizes each attempt, the engine checks the
//! allocation against the ground-truth peak under strict limits (assumption
//! A3), failed attempts cost `time_to_failure × runtime` and are retried with
//! the predictor's own failure-handling policy, and every finished attempt is
//! fed back to the predictor as a provenance record for online learning.
//!
//! Timing is delegated to the event-driven [`Scheduler`]: each attempt is
//! submitted to a FIFO queue over a cluster of finite nodes, waits when no
//! node fits, and occupies its node for the attempt duration. Over-allocation
//! therefore costs *makespan* (and queue delay, which the provenance records
//! carry back to the predictors), not just GB·h. The allocation *decisions* —
//! and with them wastage and failure counts, the paper's Fig. 8 aggregates —
//! are unaffected by timing: the predict→observe ordering is the strict
//! per-instance sequence the paper uses, regardless of cluster capacity.
//!
//! The pre-scheduler capacity sketch survives as
//! [`replay_workflow_occupancy`]: a lazy-release first-fit occupancy model
//! with no queueing. The property suite asserts that it and the scheduler
//! produce identical wastage under unbounded capacity.

use crate::accounting::{AttemptEvent, AttemptSink, ReplayAggregates, ReplayReport};
use crate::cluster::Cluster;
use crate::config::SimulationConfig;
use crate::predictor::{AttemptContext, MemoryPredictor, TaskSubmission};
use crate::scheduler::Scheduler;
use sizey_provenance::{TaskOutcome, TaskRecord};
use sizey_workflows::TaskInstance;
use std::borrow::Borrow;
use std::collections::BinaryHeap;

/// Minimum allocation the resource manager accepts (64 MB), so degenerate
/// predictions cannot request zero memory.
pub const MIN_ALLOCATION_BYTES: f64 = 64e6;

/// The sequential replay core shared by the materialised
/// ([`replay_workflow`]) and streaming ([`replay_workflow_streaming`])
/// entry points: consumes instances from any iterator, delivers every
/// attempt event to `sink` and folds it into `agg` in replay order.
/// Returns the simulated makespan.
fn replay_core<I>(
    workflow: &str,
    instances: I,
    predictor: &mut dyn MemoryPredictor,
    config: &SimulationConfig,
    sink: &mut dyn AttemptSink,
    agg: &mut ReplayAggregates,
) -> f64
where
    I: IntoIterator,
    I::Item: Borrow<TaskInstance>,
{
    let mut scheduler = Scheduler::new(config);
    let largest_node = config.largest_node_memory_bytes();
    let mut makespan = 0.0_f64;

    for inst in instances {
        let inst = inst.borrow();
        let submission = TaskSubmission {
            workflow: inst.workflow.clone(),
            task_type: inst.task_type.clone(),
            machine: inst.machine.clone(),
            sequence: inst.sequence,
            input_bytes: inst.input_bytes,
            preset_memory_bytes: inst.preset_memory_bytes,
        };

        let mut attempt = 0u32;
        let mut finished = false;
        // First attempts arrive at time zero; retries arrive when the failed
        // attempt finishes.
        let mut submit_time = 0.0_f64;
        // Engine-owned retry state: the allocation the previous (failed)
        // attempt actually ran with. A stack local suffices here — the
        // sequential loop retires it with the instance, so terminal failures
        // cannot leak per-task entries anywhere.
        let mut last_allocation: Option<f64> = None;
        while attempt < config.max_attempts {
            let ctx = AttemptContext {
                attempt,
                last_allocation_bytes: last_allocation,
            };
            let prediction = predictor.predict(&submission, ctx);
            let allocation = prediction
                .allocation_bytes
                .clamp(MIN_ALLOCATION_BYTES, largest_node);
            last_allocation = Some(allocation);

            let success = allocation + 1e-6 >= inst.true_peak_bytes;
            let duration = if success {
                inst.base_runtime_seconds
            } else {
                inst.base_runtime_seconds * config.time_to_failure
            };
            let wasted_bytes = if success {
                (allocation - inst.true_peak_bytes).max(0.0)
            } else {
                allocation
            };
            let wastage_gbh = wasted_bytes / 1e9 * duration / 3600.0;

            let scheduled = if attempt == 0 {
                scheduler.run_task(submit_time, allocation, duration)
            } else {
                // Retries re-enter with their original queue priority: they
                // wait for capacity, not behind the FIFO floor.
                scheduler.run_retry(submit_time, allocation, duration)
            };
            makespan = makespan.max(scheduled.finish_seconds);

            let event = AttemptEvent {
                task_type: inst.task_type.clone(),
                sequence: inst.sequence,
                attempt,
                allocated_bytes: allocation,
                true_peak_bytes: inst.true_peak_bytes,
                duration_seconds: duration,
                success,
                wastage_gbh,
                raw_estimate_bytes: prediction.raw_estimate_bytes,
                selected_model: prediction.selected_model.map(String::from),
                submit_time_seconds: scheduled.start_seconds,
                queue_delay_seconds: scheduled.queue_delay_seconds,
            };
            agg.observe_event(&event);
            sink.record(&event);

            // Feed the monitoring record back for online learning. On
            // failure the monitored "peak" is the allocation that was
            // exhausted — the true peak was never observed.
            let record = TaskRecord {
                workflow: workflow.to_string(),
                task_type: inst.task_type.clone(),
                machine: inst.machine.clone(),
                sequence: inst.sequence,
                input_bytes: inst.input_bytes,
                peak_memory_bytes: if success {
                    inst.true_peak_bytes
                } else {
                    allocation
                },
                allocated_memory_bytes: allocation,
                runtime_seconds: duration,
                concurrent_tasks: scheduler.running_tasks() as u32,
                queue_delay_seconds: scheduled.queue_delay_seconds,
                outcome: if success {
                    TaskOutcome::Succeeded
                } else {
                    TaskOutcome::FailedOutOfMemory
                },
            };
            predictor.observe(&record);

            if success {
                finished = true;
                break;
            }
            submit_time = scheduled.finish_seconds;
            attempt += 1;
        }
        agg.observe_instance(finished);
    }
    makespan
}

/// Replays one workflow against one sizing method.
///
/// All first attempts are submitted at virtual time zero in instance order
/// (the paper replays a finished trace, not a timed arrival process); a
/// retry is submitted when its failed predecessor finishes. The scheduler
/// dispatches FIFO in that submission order under the configured policy.
pub fn replay_workflow(
    workflow: &str,
    instances: &[TaskInstance],
    predictor: &mut dyn MemoryPredictor,
    config: &SimulationConfig,
) -> ReplayReport {
    let mut events: Vec<AttemptEvent> = Vec::with_capacity(instances.len());
    let mut agg = ReplayAggregates::new();
    let makespan = replay_core(
        workflow,
        instances,
        predictor,
        config,
        &mut events,
        &mut agg,
    );

    ReplayReport {
        method: predictor.name(),
        workflow: workflow.to_string(),
        time_to_failure: config.time_to_failure,
        events,
        instances: agg.instances,
        unfinished_instances: agg.unfinished_instances,
        makespan_seconds: makespan,
    }
}

/// Streaming counterpart of [`replay_workflow`]: consumes instances lazily
/// from any iterator (e.g. a
/// [`WorkflowStream`](sizey_workflows::WorkflowStream)), aggregates online
/// and retains **no** per-attempt events of its own — memory stays
/// `O(#task_types)` however long the trace is. Full trace retention is
/// opt-in through the `sink` (pass
/// [`NullSink`](crate::accounting::NullSink) to discard, a
/// `Vec<AttemptEvent>` to collect, or a closure to forward events to e.g. an
/// incremental trace writer).
///
/// Over the same instances the aggregates are bit-identical to folding the
/// materialised report's events (`ReplayAggregates::from_report`); the
/// differential harness pins this.
pub fn replay_workflow_streaming<I>(
    workflow: &str,
    instances: I,
    predictor: &mut dyn MemoryPredictor,
    config: &SimulationConfig,
    sink: &mut dyn AttemptSink,
) -> ReplayAggregates
where
    I: IntoIterator,
    I::Item: Borrow<TaskInstance>,
{
    let mut agg = ReplayAggregates::new();
    let makespan = replay_core(workflow, instances, predictor, config, sink, &mut agg);
    agg.makespan_seconds = makespan;
    agg
}

/// Replays a workflow with a fresh predictor produced by `make_predictor` —
/// convenience wrapper used by the benchmark harnesses, which compare many
/// methods over many workflows.
pub fn replay_with<F, P>(
    workflow: &str,
    instances: &[TaskInstance],
    config: &SimulationConfig,
    make_predictor: F,
) -> ReplayReport
where
    F: FnOnce() -> P,
    P: MemoryPredictor,
{
    let mut predictor = make_predictor();
    replay_workflow(workflow, instances, &mut predictor, config)
}

/// A running task in the legacy occupancy model, ordered by finish time
/// (min-heap).
#[derive(Debug, Clone, PartialEq)]
struct RunningTask {
    finish_time: f64,
    allocation: f64,
    placement: crate::cluster::Placement,
}

impl Eq for RunningTask {}

impl Ord for RunningTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so the BinaryHeap pops the earliest finish time first.
        other.finish_time.total_cmp(&self.finish_time)
    }
}

impl PartialOrd for RunningTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The pre-scheduler replay: the paper's light first-fit occupancy sketch
/// with lazy release and no pending queue (tasks never wait; capacity is
/// drained on demand). Kept as the reference model the event-driven
/// scheduler is property-tested against: under unbounded capacity both must
/// produce identical wastage, failures and per-attempt decisions.
pub fn replay_workflow_occupancy(
    workflow: &str,
    instances: &[TaskInstance],
    predictor: &mut dyn MemoryPredictor,
    config: &SimulationConfig,
) -> ReplayReport {
    let mut cluster = Cluster::new(config);
    let mut running: BinaryHeap<RunningTask> = BinaryHeap::new();
    let mut clock = 0.0_f64;
    let mut makespan = 0.0_f64;
    let mut events = Vec::with_capacity(instances.len());
    let mut unfinished = 0usize;

    for inst in instances {
        let submission = TaskSubmission {
            workflow: inst.workflow.clone(),
            task_type: inst.task_type.clone(),
            machine: inst.machine.clone(),
            sequence: inst.sequence,
            input_bytes: inst.input_bytes,
            preset_memory_bytes: inst.preset_memory_bytes,
        };

        let mut attempt = 0u32;
        let mut finished = false;
        let mut last_allocation: Option<f64> = None;
        while attempt < config.max_attempts {
            let ctx = AttemptContext {
                attempt,
                last_allocation_bytes: last_allocation,
            };
            let prediction = predictor.predict(&submission, ctx);
            let allocation = prediction
                .allocation_bytes
                .clamp(MIN_ALLOCATION_BYTES, config.node_memory_bytes);
            last_allocation = Some(allocation);

            // Occupancy model: make room, then place.
            while cluster.try_place(allocation).is_none() {
                match running.pop() {
                    Some(done) => {
                        clock = clock.max(done.finish_time);
                        cluster.release(done.placement, done.allocation);
                    }
                    None => break,
                }
            }
            let placement = cluster
                .try_place(allocation)
                .or_else(|| {
                    // Drain everything if a single huge allocation still does
                    // not fit next to leftovers.
                    while let Some(done) = running.pop() {
                        clock = clock.max(done.finish_time);
                        cluster.release(done.placement, done.allocation);
                    }
                    cluster.try_place(allocation)
                })
                .unwrap_or(crate::cluster::Placement { node: 0 });

            let success = allocation + 1e-6 >= inst.true_peak_bytes;
            let duration = if success {
                inst.base_runtime_seconds
            } else {
                inst.base_runtime_seconds * config.time_to_failure
            };
            let wasted_bytes = if success {
                (allocation - inst.true_peak_bytes).max(0.0)
            } else {
                allocation
            };
            let wastage_gbh = wasted_bytes / 1e9 * duration / 3600.0;

            let finish_time = clock + duration;
            makespan = makespan.max(finish_time);
            running.push(RunningTask {
                finish_time,
                allocation,
                placement,
            });

            events.push(AttemptEvent {
                task_type: inst.task_type.clone(),
                sequence: inst.sequence,
                attempt,
                allocated_bytes: allocation,
                true_peak_bytes: inst.true_peak_bytes,
                duration_seconds: duration,
                success,
                wastage_gbh,
                raw_estimate_bytes: prediction.raw_estimate_bytes,
                selected_model: prediction.selected_model.map(String::from),
                submit_time_seconds: clock,
                queue_delay_seconds: 0.0,
            });

            let record = TaskRecord {
                workflow: workflow.to_string(),
                task_type: inst.task_type.clone(),
                machine: inst.machine.clone(),
                sequence: inst.sequence,
                input_bytes: inst.input_bytes,
                peak_memory_bytes: if success {
                    inst.true_peak_bytes
                } else {
                    allocation
                },
                allocated_memory_bytes: allocation,
                runtime_seconds: duration,
                concurrent_tasks: cluster.running_tasks() as u32,
                queue_delay_seconds: 0.0,
                outcome: if success {
                    TaskOutcome::Succeeded
                } else {
                    TaskOutcome::FailedOutOfMemory
                },
            };
            predictor.observe(&record);

            if success {
                finished = true;
                break;
            }
            attempt += 1;
        }
        if !finished {
            unfinished += 1;
        }
    }

    ReplayReport {
        method: predictor.name(),
        workflow: workflow.to_string(),
        time_to_failure: config.time_to_failure,
        events,
        instances: instances.len(),
        unfinished_instances: unfinished,
        makespan_seconds: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{Prediction, PresetPredictor};
    use sizey_provenance::{MachineId, TaskTypeId};

    fn instance(seq: u64, input: f64, peak: f64, runtime: f64, preset: f64) -> TaskInstance {
        TaskInstance {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: input,
            true_peak_bytes: peak,
            base_runtime_seconds: runtime,
            preset_memory_bytes: preset,
            cpu_utilization_pct: 100.0,
            io_read_bytes: input,
            io_write_bytes: input,
        }
    }

    /// A predictor that always allocates a fixed amount (doubling on retry).
    struct Fixed {
        bytes: f64,
    }

    impl MemoryPredictor for Fixed {
        fn name(&self) -> String {
            "fixed".to_string()
        }
        fn predict(&self, _task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
            Prediction {
                allocation_bytes: self.bytes * 2.0_f64.powi(ctx.attempt as i32),
                raw_estimate_bytes: Some(self.bytes),
                selected_model: Some("fixed"),
            }
        }
        fn observe(&mut self, _record: &TaskRecord) {}
    }

    #[test]
    fn perfectly_sized_tasks_waste_nothing() {
        let instances = vec![instance(0, 1e9, 4e9, 3600.0, 8e9)];
        let mut p = Fixed { bytes: 4e9 };
        let report = replay_workflow("wf", &instances, &mut p, &SimulationConfig::default());
        assert_eq!(report.total_failures(), 0);
        assert!(report.total_wastage_gbh() < 1e-9);
        assert!((report.total_runtime_hours() - 1.0).abs() < 1e-9);
        assert_eq!(report.finished_instances(), 1);
    }

    #[test]
    fn overprovisioning_wastes_the_surplus() {
        let instances = vec![instance(0, 1e9, 2e9, 3600.0, 8e9)];
        let mut p = PresetPredictor;
        let report = replay_workflow("wf", &instances, &mut p, &SimulationConfig::default());
        // 8 GB allocated, 2 GB used, 1 hour => 6 GBh wasted.
        assert!((report.total_wastage_gbh() - 6.0).abs() < 1e-9);
        assert_eq!(report.total_failures(), 0);
    }

    #[test]
    fn underprovisioning_fails_then_retries_until_success() {
        let instances = vec![instance(0, 1e9, 7e9, 3600.0, 8e9)];
        let mut p = Fixed { bytes: 2e9 };
        let report = replay_workflow("wf", &instances, &mut p, &SimulationConfig::default());
        // Attempts: 2 GB (fail), 4 GB (fail), 8 GB (success).
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.total_failures(), 2);
        assert_eq!(report.unfinished_instances, 0);
        // Failed attempts waste the whole allocation for the full runtime
        // (ttf = 1.0): 2 + 4 GBh, success wastes 1 GBh.
        assert!((report.total_wastage_gbh() - 7.0).abs() < 1e-6);
        // Runtime: 1h + 1h + 1h.
        assert!((report.total_runtime_hours() - 3.0).abs() < 1e-9);
        // The retry chain serializes on the virtual clock: 3 back-to-back
        // attempts of one hour each.
        assert!((report.makespan_seconds - 3.0 * 3600.0).abs() < 1e-6);
    }

    #[test]
    fn time_to_failure_halves_failed_attempt_cost() {
        let instances = vec![instance(0, 1e9, 7e9, 3600.0, 8e9)];
        let config = SimulationConfig::default().with_time_to_failure(0.5);
        let mut p = Fixed { bytes: 2e9 };
        let report = replay_workflow("wf", &instances, &mut p, &config);
        // Failed attempts now cost half an hour each: 1 + 2 GBh, success 1 GBh.
        assert!((report.total_wastage_gbh() - 4.0).abs() < 1e-6);
        assert!((report.total_runtime_hours() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn allocations_are_clamped_to_node_memory() {
        let instances = vec![instance(0, 1e9, 2e9, 3600.0, 500e9)];
        let mut p = PresetPredictor;
        let config = SimulationConfig::default();
        let report = replay_workflow("wf", &instances, &mut p, &config);
        assert!(report.events[0].allocated_bytes <= config.node_memory_bytes);
    }

    #[test]
    fn allocations_are_clamped_to_the_largest_heterogeneous_node() {
        let instances = vec![instance(0, 1e9, 2e9, 3600.0, 500e9)];
        let mut p = PresetPredictor;
        let config = SimulationConfig::default().with_extra_pool(crate::config::NodePoolSpec {
            count: 1,
            memory_bytes: 256e9,
            slots: 8,
        });
        let report = replay_workflow("wf", &instances, &mut p, &config);
        // The big-memory node raises the clamp from 128 GB to 256 GB.
        assert_eq!(report.events[0].allocated_bytes, 256e9);
    }

    #[test]
    fn impossible_tasks_exhaust_attempts_and_are_reported() {
        // True peak larger than a node: can never succeed.
        let instances = vec![instance(0, 1e9, 200e9, 60.0, 1e9)];
        let mut p = Fixed { bytes: 1e9 };
        let config = SimulationConfig {
            max_attempts: 3,
            ..SimulationConfig::default()
        };
        let report = replay_workflow("wf", &instances, &mut p, &config);
        assert_eq!(report.unfinished_instances, 1);
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.finished_instances(), 0);
    }

    #[test]
    fn observe_receives_failure_then_success_records() {
        struct Recorder {
            records: Vec<TaskRecord>,
        }
        impl MemoryPredictor for Recorder {
            fn name(&self) -> String {
                "recorder".into()
            }
            fn predict(&self, _t: &TaskSubmission, ctx: AttemptContext) -> Prediction {
                Prediction::simple(if ctx.attempt == 0 { 1e9 } else { 10e9 })
            }
            fn observe(&mut self, record: &TaskRecord) {
                self.records.push(record.clone());
            }
        }
        let instances = vec![instance(0, 1e9, 5e9, 600.0, 8e9)];
        let mut p = Recorder { records: vec![] };
        let _ = replay_workflow("wf", &instances, &mut p, &SimulationConfig::default());
        assert_eq!(p.records.len(), 2);
        assert_eq!(p.records[0].outcome, TaskOutcome::FailedOutOfMemory);
        // The failed attempt's observed peak is its allocation, not the truth.
        assert_eq!(p.records[0].peak_memory_bytes, 1e9);
        assert_eq!(p.records[1].outcome, TaskOutcome::Succeeded);
        assert_eq!(p.records[1].peak_memory_bytes, 5e9);
    }

    #[test]
    fn makespan_and_concurrency_are_tracked() {
        let instances: Vec<TaskInstance> = (0..20)
            .map(|i| instance(i, 1e9, 1e9, 3600.0, 2e9))
            .collect();
        let mut p = PresetPredictor;
        let report = replay_workflow("wf", &instances, &mut p, &SimulationConfig::default());
        // Plenty of capacity: all 20 tasks fit concurrently, makespan is one
        // task runtime, while total runtime is 20 task-hours.
        assert!((report.makespan_seconds - 3600.0).abs() < 1e-6);
        assert!((report.total_runtime_hours() - 20.0).abs() < 1e-9);
        assert!(report.total_queue_delay_seconds() < 1e-9);
    }

    #[test]
    fn finite_capacity_queueing_stretches_makespan() {
        // 4 tasks of 8 GB / 1 h on a single 10 GB node: they serialize.
        let instances: Vec<TaskInstance> =
            (0..4).map(|i| instance(i, 1e9, 1e9, 3600.0, 8e9)).collect();
        let config = SimulationConfig::default().with_nodes(1, 10e9, 32);
        let mut p = PresetPredictor;
        let report = replay_workflow("wf", &instances, &mut p, &config);
        assert!((report.makespan_seconds - 4.0 * 3600.0).abs() < 1e-6);
        // Queue delays: 0 + 1 + 2 + 3 hours.
        assert!((report.total_queue_delay_seconds() - 6.0 * 3600.0).abs() < 1e-6);
        assert_eq!(report.total_failures(), 0);
    }

    #[test]
    fn replay_with_builds_a_fresh_predictor() {
        let instances = vec![instance(0, 1e9, 1e9, 60.0, 4e9)];
        let report = replay_with("wf", &instances, &SimulationConfig::default(), || {
            PresetPredictor
        });
        assert_eq!(report.method, "Workflow-Presets");
        assert_eq!(report.instances, 1);
    }

    #[test]
    fn streaming_replay_matches_materialised_report() {
        use crate::accounting::NullSink;
        let instances: Vec<TaskInstance> = (0..15)
            .map(|i| instance(i, 1e9 * (i + 1) as f64, 3e9 + i as f64 * 1e8, 600.0, 4e9))
            .collect();
        let config = SimulationConfig::default().with_nodes(1, 10e9, 4);
        let mut a = Fixed { bytes: 2e9 };
        let report = replay_workflow("wf", &instances, &mut a, &config);

        let mut b = Fixed { bytes: 2e9 };
        let mut sink = NullSink;
        let streamed =
            replay_workflow_streaming("wf", instances.iter(), &mut b, &config, &mut sink);
        assert_eq!(streamed, ReplayAggregates::from_report(&report));
        assert_eq!(streamed.makespan_seconds, report.makespan_seconds);

        // A collecting sink reproduces the full event trace.
        let mut c = Fixed { bytes: 2e9 };
        let mut events: Vec<AttemptEvent> = Vec::new();
        let _ = replay_workflow_streaming("wf", instances.iter(), &mut c, &config, &mut events);
        assert_eq!(events, report.events);
    }

    #[test]
    fn occupancy_and_scheduler_replays_agree_under_unbounded_capacity() {
        let instances: Vec<TaskInstance> = (0..12)
            .map(|i| instance(i, 1e9 * (i + 1) as f64, 3e9, 600.0, 4e9))
            .collect();
        let config = SimulationConfig::unbounded();
        let mut a = PresetPredictor;
        let mut b = PresetPredictor;
        let new = replay_workflow("wf", &instances, &mut a, &config);
        let old = replay_workflow_occupancy("wf", &instances, &mut b, &config);
        assert_eq!(new.events.len(), old.events.len());
        assert_eq!(new.total_failures(), old.total_failures());
        assert_eq!(new.total_wastage_gbh(), old.total_wastage_gbh());
    }
}
