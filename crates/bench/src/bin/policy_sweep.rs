//! Contention sweep: workflows × methods × seeds × scheduling policies on a
//! capacity-constrained cluster, fanned out across the thread pool.
//!
//! The paper's evaluation ignores queueing; this experiment quantifies what
//! that hides. On a small cluster (2 × 128 GB nodes, 8 slots each) an
//! over-allocating method does not just burn GB·h — it makes its own tasks
//! (and everyone else's) wait. The table reports, per (method, policy):
//! wastage, failures, the summed per-workflow makespan and the mean queue
//! delay per attempt.
//!
//! Run with `cargo run -p sizey-bench --release --bin policy_sweep`.

use sizey_bench::{
    aggregate_sweep, banner, fmt, render_table, run_sweep, HarnessSettings, MethodSpec, SweepSpec,
};
use sizey_sim::{SchedulePolicy, SimulationConfig};

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Contention sweep: methods × scheduling policies on a constrained cluster",
        &settings,
    );

    // Two nodes with the paper's 128 GB but only 8 slots each: enough memory
    // for every task, little enough concurrency that sizing quality shows up
    // as queue delay and makespan.
    let sim = SimulationConfig::default().with_nodes(2, 128e9, 8);
    let spec = SweepSpec {
        workflows: sizey_workflows::WORKFLOW_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
        methods: vec![
            MethodSpec::sizey_defaults(),
            MethodSpec::WittPercentile(Default::default()),
            MethodSpec::Preset,
        ],
        seeds: vec![settings.seed, settings.seed + 1],
        policies: SchedulePolicy::ALL.to_vec(),
        scale: settings.scale,
        drift: None,
        sim,
    };
    println!(
        "sweep: {} cells ({} workflows x {} methods x {} seeds x {} policies)\n",
        spec.len(),
        spec.workflows.len(),
        spec.methods.len(),
        spec.seeds.len(),
        spec.policies.len()
    );

    let cells = run_sweep(&spec);
    let rows: Vec<Vec<String>> = aggregate_sweep(&cells)
        .into_iter()
        .map(|row| {
            vec![
                row.method.name().to_string(),
                row.policy.name().to_string(),
                fmt(row.wastage_gbh, 2),
                fmt(row.failures, 1),
                fmt(row.makespan_hours, 2),
                fmt(row.mean_queue_delay_seconds, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Method",
                "Policy",
                "Wastage GBh",
                "Failures",
                "Makespan h",
                "Mean queue delay s",
            ],
            &rows
        )
    );

    // Headline comparison: the queue-delay gap between the best-sized and
    // the preset-sized replays under first fit.
    let delay = |method: &MethodSpec| {
        cells
            .iter()
            .filter(|c| c.method == *method && c.policy == SchedulePolicy::FirstFit)
            .map(|c| c.mean_queue_delay_seconds)
            .sum::<f64>()
            / spec.workflows.len() as f64
            / spec.seeds.len() as f64
    };
    let sizey = delay(&MethodSpec::sizey_defaults());
    let presets = delay(&MethodSpec::Preset);
    println!(
        "mean queue delay per attempt (first fit): Sizey {} s, Workflow-Presets {} s",
        fmt(sizey, 1),
        fmt(presets, 1)
    );
    if presets > sizey {
        println!("over-allocation costs makespan, not just GBh: presets wait longer for the same cluster.");
    }
}
