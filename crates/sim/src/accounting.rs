//! Wastage, failure and runtime accounting for replayed workflows.
//!
//! The paper's evaluation reports everything in terms of these aggregates:
//! memory wastage over time in gigabyte-hours (Fig. 8a/8b, Table II), the
//! distribution of task failures per task type (Fig. 8c), aggregated task
//! runtimes (Fig. 8d), the share of selected model classes (Fig. 11) and the
//! relative prediction error over time (Fig. 12). All of them are derived
//! from the per-attempt events collected here.

use sizey_provenance::TaskTypeId;
use std::collections::BTreeMap;

/// One attempt of one task instance, as observed by the replay engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptEvent {
    /// Task type of the instance.
    pub task_type: TaskTypeId,
    /// Submission sequence of the instance within the workflow.
    pub sequence: u64,
    /// Attempt number (0 = first submission).
    pub attempt: u32,
    /// Memory allocated for this attempt, in bytes.
    pub allocated_bytes: f64,
    /// Ground-truth peak memory of the task, in bytes.
    pub true_peak_bytes: f64,
    /// Duration of this attempt in seconds (full runtime on success,
    /// time-to-failure fraction on failure).
    pub duration_seconds: f64,
    /// Whether the attempt succeeded.
    pub success: bool,
    /// Memory wastage of this attempt in gigabyte-hours.
    pub wastage_gbh: f64,
    /// The raw model estimate before offsets, when the method reports one.
    pub raw_estimate_bytes: Option<f64>,
    /// The model (class) selected for this prediction, when reported.
    pub selected_model: Option<String>,
    /// Simulated start time of the attempt (when resources were granted), in
    /// seconds since replay start.
    pub submit_time_seconds: f64,
    /// Time the attempt spent waiting in the pending queue before resources
    /// were granted, in seconds.
    pub queue_delay_seconds: f64,
}

impl AttemptEvent {
    /// Relative prediction error of the raw estimate, `|raw - true| / true`,
    /// when a raw estimate was reported (Fig. 12).
    pub fn relative_prediction_error(&self) -> Option<f64> {
        self.raw_estimate_bytes.map(|raw| {
            if self.true_peak_bytes <= 0.0 {
                0.0
            } else {
                (raw - self.true_peak_bytes).abs() / self.true_peak_bytes
            }
        })
    }
}

/// Complete result of replaying one workflow with one sizing method.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Name of the sizing method.
    pub method: String,
    /// Name of the workflow.
    pub workflow: String,
    /// Time-to-failure value used.
    pub time_to_failure: f64,
    /// Every attempt in replay order.
    pub events: Vec<AttemptEvent>,
    /// Number of task instances replayed.
    pub instances: usize,
    /// Number of instances that never succeeded within the attempt budget.
    pub unfinished_instances: usize,
    /// Simulated makespan in seconds (end of the last attempt).
    pub makespan_seconds: f64,
}

impl ReplayReport {
    /// Total memory wastage over time in gigabyte-hours.
    pub fn total_wastage_gbh(&self) -> f64 {
        self.events.iter().map(|e| e.wastage_gbh).sum()
    }

    /// Total task runtime (all attempts) in hours — the Fig. 8d metric.
    pub fn total_runtime_hours(&self) -> f64 {
        self.events.iter().map(|e| e.duration_seconds).sum::<f64>() / 3600.0
    }

    /// Total number of failed attempts.
    pub fn total_failures(&self) -> usize {
        self.events.iter().filter(|e| !e.success).count()
    }

    /// Total time attempts spent waiting for cluster resources, in seconds —
    /// the contention cost the occupancy sketch could not see.
    pub fn total_queue_delay_seconds(&self) -> f64 {
        self.events.iter().map(|e| e.queue_delay_seconds).sum()
    }

    /// Mean queue delay per attempt in seconds (zero for an empty replay).
    pub fn mean_queue_delay_seconds(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.total_queue_delay_seconds() / self.events.len() as f64
        }
    }

    /// Number of failed attempts per task type (Fig. 8c).
    pub fn failures_by_task_type(&self) -> BTreeMap<TaskTypeId, usize> {
        let mut map = BTreeMap::new();
        for e in &self.events {
            if !e.success {
                *map.entry(e.task_type.clone()).or_insert(0) += 1;
            }
        }
        map
    }

    /// Memory wastage per task type in gigabyte-hours.
    pub fn wastage_by_task_type(&self) -> BTreeMap<TaskTypeId, f64> {
        let mut map = BTreeMap::new();
        for e in &self.events {
            *map.entry(e.task_type.clone()).or_insert(0.0) += e.wastage_gbh;
        }
        map
    }

    /// Share of selected models among first attempts that reported one
    /// (Fig. 11). Returns (model name, fraction) sorted by descending share.
    pub fn model_selection_share(&self) -> Vec<(String, f64)> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut total = 0usize;
        for e in &self.events {
            if e.attempt == 0 {
                if let Some(model) = &e.selected_model {
                    *counts.entry(model.clone()).or_insert(0) += 1;
                    total += 1;
                }
            }
        }
        let mut shares: Vec<(String, f64)> = counts
            .into_iter()
            .map(|(m, c)| (m, c as f64 / total.max(1) as f64))
            .collect();
        shares.sort_by(|a, b| b.1.total_cmp(&a.1));
        shares
    }

    /// Relative prediction error of the raw estimates over the course of the
    /// replay, restricted to one task type (Fig. 12). Returns
    /// `(execution index, relative error)` pairs for first attempts.
    pub fn prediction_error_over_time(&self, task_type: &str) -> Vec<(usize, f64)> {
        self.events
            .iter()
            .filter(|e| e.attempt == 0 && e.task_type.as_str() == task_type)
            .filter_map(|e| e.relative_prediction_error())
            .enumerate()
            .collect()
    }

    /// Number of successfully finished instances.
    pub fn finished_instances(&self) -> usize {
        self.instances - self.unfinished_instances
    }
}

/// Where the replay engines deliver per-attempt events.
///
/// The streaming pipeline aggregates online and only retains full event
/// traces when a collecting sink is supplied — `Vec<AttemptEvent>` collects,
/// [`NullSink`] discards, and closures `FnMut(&AttemptEvent)` adapt to
/// arbitrary destinations (e.g. an incremental trace file writer).
pub trait AttemptSink {
    /// Called once per attempt, in replay order.
    fn record(&mut self, event: &AttemptEvent);
}

/// Discards every event — the bounded-memory default of the streaming
/// pipeline (aggregates are maintained separately and online).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl AttemptSink for NullSink {
    fn record(&mut self, _event: &AttemptEvent) {}
}

impl AttemptSink for Vec<AttemptEvent> {
    fn record(&mut self, event: &AttemptEvent) {
        self.push(event.clone());
    }
}

impl<F: FnMut(&AttemptEvent)> AttemptSink for F {
    fn record(&mut self, event: &AttemptEvent) {
        self(event);
    }
}

/// Where the streaming engines deliver finished provenance records (the
/// exact records fed to `observe`). The opt-in `--trace` sink forwards them
/// to an incremental
/// [`TraceWriter`](sizey_provenance::trace_io::TraceWriter); the default
/// [`NullRecordSink`] discards them.
pub trait RecordSink {
    /// Called once per finished attempt, in completion order.
    fn record(&mut self, record: &sizey_provenance::TaskRecord);
}

/// Discards every record — the default when no trace is requested.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecordSink;

impl RecordSink for NullRecordSink {
    fn record(&mut self, _record: &sizey_provenance::TaskRecord) {}
}

impl<F: FnMut(&sizey_provenance::TaskRecord)> RecordSink for F {
    fn record(&mut self, record: &sizey_provenance::TaskRecord) {
        self(record);
    }
}

/// Online replay aggregates: every headline metric of a [`ReplayReport`],
/// computed incrementally from the event stream in `O(#task_types)` memory
/// instead of `O(#attempts)`.
///
/// Folding the events **in replay order** produces bit-identical sums to the
/// corresponding `ReplayReport` derivations (same `f64` additions in the
/// same order); the differential harness pins
/// `ReplayAggregates::from_report(&report) == streaming_aggregates`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayAggregates {
    /// Number of attempts observed.
    pub attempts: u64,
    /// Number of failed attempts.
    pub failures: u64,
    /// Sum of per-attempt wastage in GBh (Fig. 8a/8b).
    pub total_wastage_gbh: f64,
    /// Sum of attempt durations in seconds (Fig. 8d is this over 3600).
    pub total_duration_seconds: f64,
    /// Sum of queue delays in seconds.
    pub total_queue_delay_seconds: f64,
    /// Largest single queue delay in seconds.
    pub max_queue_delay_seconds: f64,
    /// Failed attempts per task type (Fig. 8c).
    pub failures_by_task_type: BTreeMap<TaskTypeId, usize>,
    /// Wastage per task type in GBh.
    pub wastage_by_task_type: BTreeMap<TaskTypeId, f64>,
    /// Selected-model counts over first attempts that reported one (Fig. 11).
    pub model_selections: BTreeMap<String, usize>,
    /// Number of first attempts that reported a selected model.
    pub model_selection_total: usize,
    /// Number of task instances replayed (maintained by the engine).
    pub instances: usize,
    /// Instances that never succeeded within the attempt budget.
    pub unfinished_instances: usize,
    /// End of the latest attempt seen, in simulated seconds.
    pub makespan_seconds: f64,
}

impl ReplayAggregates {
    /// An empty accumulator.
    pub fn new() -> Self {
        ReplayAggregates::default()
    }

    /// Folds one attempt event into the aggregates. Must be called in
    /// replay order for bit-identity with the materialised report.
    pub fn observe_event(&mut self, e: &AttemptEvent) {
        self.attempts += 1;
        self.total_wastage_gbh += e.wastage_gbh;
        self.total_duration_seconds += e.duration_seconds;
        self.total_queue_delay_seconds += e.queue_delay_seconds;
        self.max_queue_delay_seconds = self.max_queue_delay_seconds.max(e.queue_delay_seconds);
        *self
            .wastage_by_task_type
            .entry(e.task_type.clone())
            .or_insert(0.0) += e.wastage_gbh;
        if !e.success {
            self.failures += 1;
            *self
                .failures_by_task_type
                .entry(e.task_type.clone())
                .or_insert(0) += 1;
        }
        if e.attempt == 0 {
            if let Some(model) = &e.selected_model {
                *self.model_selections.entry(model.clone()).or_insert(0) += 1;
                self.model_selection_total += 1;
            }
        }
        self.makespan_seconds = self
            .makespan_seconds
            .max(e.submit_time_seconds + e.duration_seconds);
    }

    /// Records the terminal state of one instance (the engine calls this once
    /// per instance).
    pub fn observe_instance(&mut self, finished: bool) {
        self.instances += 1;
        if !finished {
            self.unfinished_instances += 1;
        }
    }

    /// Rebuilds the aggregates from a materialised report by folding its
    /// events in order — the reference the streaming pipeline is pinned
    /// against.
    pub fn from_report(report: &ReplayReport) -> Self {
        let mut agg = ReplayAggregates::new();
        for e in &report.events {
            agg.observe_event(e);
        }
        agg.instances = report.instances;
        agg.unfinished_instances = report.unfinished_instances;
        agg.makespan_seconds = report.makespan_seconds;
        agg
    }

    /// Total task runtime (all attempts) in hours — the Fig. 8d metric.
    pub fn total_runtime_hours(&self) -> f64 {
        self.total_duration_seconds / 3600.0
    }

    /// Mean queue delay per attempt in seconds (zero for an empty replay).
    pub fn mean_queue_delay_seconds(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.total_queue_delay_seconds / self.attempts as f64
        }
    }

    /// Share of selected models among first attempts that reported one,
    /// sorted by descending share (Fig. 11).
    pub fn model_selection_share(&self) -> Vec<(String, f64)> {
        let mut shares: Vec<(String, f64)> = self
            .model_selections
            .iter()
            .map(|(m, c)| {
                (
                    m.clone(),
                    *c as f64 / self.model_selection_total.max(1) as f64,
                )
            })
            .collect();
        shares.sort_by(|a, b| b.1.total_cmp(&a.1));
        shares
    }

    /// Number of successfully finished instances.
    pub fn finished_instances(&self) -> usize {
        self.instances - self.unfinished_instances
    }
}

/// Aggregates reports of the same method across workflows (Fig. 8a/8b/8d).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodAggregate {
    /// Method name.
    pub method: String,
    /// Total wastage over all workflows in GBh.
    pub total_wastage_gbh: f64,
    /// Total runtime over all workflows in hours.
    pub total_runtime_hours: f64,
    /// Total number of failed attempts over all workflows.
    pub total_failures: usize,
    /// Total queue delay over all workflows in seconds.
    pub total_queue_delay_seconds: f64,
    /// Wastage per workflow in GBh (Table II row).
    pub wastage_per_workflow: BTreeMap<String, f64>,
}

/// Builds the per-method aggregate from per-workflow reports.
pub fn aggregate_method(reports: &[ReplayReport]) -> MethodAggregate {
    let method = reports
        .first()
        .map(|r| r.method.clone())
        .unwrap_or_else(|| "unknown".to_string());
    let mut wastage_per_workflow = BTreeMap::new();
    for r in reports {
        *wastage_per_workflow
            .entry(r.workflow.clone())
            .or_insert(0.0) += r.total_wastage_gbh();
    }
    MethodAggregate {
        method,
        total_wastage_gbh: reports.iter().map(ReplayReport::total_wastage_gbh).sum(),
        total_runtime_hours: reports.iter().map(ReplayReport::total_runtime_hours).sum(),
        total_failures: reports.iter().map(ReplayReport::total_failures).sum(),
        total_queue_delay_seconds: reports
            .iter()
            .map(ReplayReport::total_queue_delay_seconds)
            .sum(),
        wastage_per_workflow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(task: &str, attempt: u32, success: bool, wastage: f64) -> AttemptEvent {
        AttemptEvent {
            task_type: TaskTypeId::new(task),
            sequence: 0,
            attempt,
            allocated_bytes: 4e9,
            true_peak_bytes: 2e9,
            duration_seconds: 3600.0,
            success,
            wastage_gbh: wastage,
            raw_estimate_bytes: Some(3e9),
            selected_model: Some(if attempt == 0 { "mlp" } else { "linear" }.to_string()),
            submit_time_seconds: 0.0,
            queue_delay_seconds: 30.0,
        }
    }

    fn report() -> ReplayReport {
        ReplayReport {
            method: "test".into(),
            workflow: "wf".into(),
            time_to_failure: 1.0,
            events: vec![
                event("a", 0, false, 4.0),
                event("a", 1, true, 2.0),
                event("b", 0, true, 1.0),
            ],
            instances: 2,
            unfinished_instances: 0,
            makespan_seconds: 7200.0,
        }
    }

    #[test]
    fn totals_sum_over_events() {
        let r = report();
        assert!((r.total_wastage_gbh() - 7.0).abs() < 1e-12);
        assert!((r.total_runtime_hours() - 3.0).abs() < 1e-12);
        assert_eq!(r.total_failures(), 1);
        assert_eq!(r.finished_instances(), 2);
        assert!((r.total_queue_delay_seconds() - 90.0).abs() < 1e-12);
        assert!((r.mean_queue_delay_seconds() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn failures_and_wastage_group_by_task_type() {
        let r = report();
        let fails = r.failures_by_task_type();
        assert_eq!(fails.get(&TaskTypeId::new("a")), Some(&1));
        assert_eq!(fails.get(&TaskTypeId::new("b")), None);
        let wastage = r.wastage_by_task_type();
        assert!((wastage[&TaskTypeId::new("a")] - 6.0).abs() < 1e-12);
        assert!((wastage[&TaskTypeId::new("b")] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn model_share_counts_first_attempts_only() {
        let r = report();
        let share = r.model_selection_share();
        assert_eq!(share.len(), 1);
        assert_eq!(share[0].0, "mlp");
        assert!((share[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_error_over_time_filters_task_type() {
        let r = report();
        let errors = r.prediction_error_over_time("a");
        assert_eq!(errors.len(), 1);
        // raw 3e9 vs true 2e9 => 50% error.
        assert!((errors[0].1 - 0.5).abs() < 1e-12);
        assert!(r.prediction_error_over_time("zzz").is_empty());
    }

    #[test]
    fn relative_error_handles_zero_truth() {
        let mut e = event("a", 0, true, 0.0);
        e.true_peak_bytes = 0.0;
        assert_eq!(e.relative_prediction_error(), Some(0.0));
        e.raw_estimate_bytes = None;
        assert_eq!(e.relative_prediction_error(), None);
    }

    #[test]
    fn aggregate_sums_across_workflows() {
        let mut r1 = report();
        r1.workflow = "wf1".into();
        let mut r2 = report();
        r2.workflow = "wf2".into();
        let agg = aggregate_method(&[r1, r2]);
        assert_eq!(agg.method, "test");
        assert!((agg.total_wastage_gbh - 14.0).abs() < 1e-12);
        assert!((agg.total_runtime_hours - 6.0).abs() < 1e-12);
        assert_eq!(agg.total_failures, 2);
        assert_eq!(agg.wastage_per_workflow.len(), 2);
    }

    #[test]
    fn aggregate_of_empty_is_unknown() {
        let agg = aggregate_method(&[]);
        assert_eq!(agg.method, "unknown");
        assert_eq!(agg.total_wastage_gbh, 0.0);
    }
}
