//! Multi-tenant contention: two workflows sharing one cluster through the
//! event-driven scheduler.
//!
//! A Sizey-sized iwd tenant shares one node with an rnaseq tenant that uses
//! the workflow developers' generous memory presets. The experiment shows
//! what the paper's single-workflow capacity model cannot: the co-tenant's
//! over-allocation does not just waste GB·h on its own bill — it queues the
//! lean tenant's tasks and stretches its makespan, compared to the same iwd
//! replay running alone on the same cluster.
//!
//! The later runs replace both tenants' private predictors with clones of
//! **one** shared concurrent Sizey service ([`SharedSizey`]): every tenant's
//! completions train the shards every tenant predicts from, the deployment
//! model of a cluster-wide sizing service. The final run upgrades that
//! service to the **async front-end** ([`AsyncSizey`]): observes flow
//! through bounded per-shard request queues into micro-batching workers,
//! predictions come off lock-free model snapshots, and the service reports
//! its queue/batch/snapshot telemetry at the end.
//!
//! Run with `cargo run --release --example multi_tenant [scale]`.

use sizey_suite::prelude::*;

fn iwd_tenant(scale: f64) -> WorkflowTenant {
    let iwd = generate_workflow(
        &sizey_workflows::profiles::iwd(),
        &GeneratorConfig::scaled(scale, 42),
    );
    WorkflowTenant::new("iwd", iwd, MethodSpec::sizey_defaults().build())
}

fn rnaseq_tenant(scale: f64) -> WorkflowTenant {
    let rnaseq = generate_workflow(
        &sizey_workflows::profiles::rnaseq(),
        &GeneratorConfig::scaled(scale, 42),
    );
    WorkflowTenant::new("rnaseq", rnaseq, MethodSpec::Preset.build())
}

fn print_run(label: &str, result: &MultiReplayReport) {
    println!("=== {label} ===");
    for report in &result.reports {
        println!(
            "  {:<8} {:<18} wastage {:>8.2} GBh  failures {:>3}  \
             queue delay {:>8.0} s  makespan {:>5.2} h",
            report.workflow,
            report.method,
            report.total_wastage_gbh(),
            report.total_failures(),
            report.total_queue_delay_seconds(),
            report.makespan_seconds / 3600.0,
        );
    }
    println!(
        "  cluster: makespan {:.2} h, peak {} running tasks, \
         peak {:.0} GB allocated, mean queue delay {:.0} s\n",
        result.makespan_seconds / 3600.0,
        result.stats.peak_running_tasks,
        result.stats.peak_allocated_bytes / 1e9,
        result.stats.mean_queue_delay_seconds(),
    );
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05_f64)
        .clamp(0.01, 1.0);

    // A deliberately tight cluster: one node, memory is the binding
    // resource. Allocations are decided at submission, so arrivals are
    // spread out (10 s apart per tenant) rather than all landing at t = 0.
    let mut sim = SimulationConfig::default().with_nodes(1, 128e9, 64);
    sim.submit_interval_seconds = 10.0;
    println!(
        "cluster: 1 x 128 GB x 64 slots, policy {}, scale {scale}, arrivals 10 s apart\n",
        sim.policy.name()
    );

    let shared = schedule_workflows(vec![rnaseq_tenant(scale), iwd_tenant(scale)], &sim);
    print_run("iwd (Sizey) sharing with rnaseq (presets)", &shared);

    let alone = schedule_workflows(vec![iwd_tenant(scale)], &sim);
    print_run("iwd (Sizey) alone on the same cluster", &alone);

    let shared_iwd = &shared.reports[1];
    let alone_iwd = &alone.reports[0];
    println!(
        "co-tenant over-allocation costs iwd {:.0} s of extra queue delay and {:.2} h of makespan",
        shared_iwd.total_queue_delay_seconds() - alone_iwd.total_queue_delay_seconds(),
        (shared_iwd.makespan_seconds - alone_iwd.makespan_seconds) / 3600.0,
    );
    println!("— contention the paper's queue-free capacity model cannot express.\n");

    // Cluster-wide sizing service: both tenants share ONE concurrent Sizey
    // instance (sharded by task type × machine behind read-write locks), so
    // rnaseq benefits from the provenance iwd produced and vice versa.
    let service = SharedSizey::sizey(SizeyConfig::default(), 8);
    let mk = |name: &str, spec: &WorkflowSpec| {
        WorkflowTenant::new(
            name,
            generate_workflow(spec, &GeneratorConfig::scaled(scale, 42)),
            Box::new(service.clone()),
        )
    };
    let pooled = schedule_workflows(
        vec![
            mk("rnaseq", &sizey_workflows::profiles::rnaseq()),
            mk("iwd", &sizey_workflows::profiles::iwd()),
        ],
        &sim,
    );
    print_run(
        "both tenants on ONE shared concurrent Sizey service",
        &pooled,
    );
    let records: usize = service
        .service()
        .map_shards(|p| p.provenance().len())
        .iter()
        .sum();
    println!(
        "shared service observed {records} records across {} shards",
        service.service().shard_count()
    );

    // Warm start: checkpoint the trained service and hand the learned state
    // to a brand-new service instance — the restored tenants replay the same
    // workloads without a cold-start phase, and the decisions are
    // bit-identical to re-running on the original (still-trained) service.
    let checkpoint = service.checkpoint();
    let warm =
        SharedSizey::from_checkpoint(&checkpoint, |_| SizeyPredictor::new(SizeyConfig::default()))
            .expect("checkpoint restores on a fresh service");
    let mk_warm = |name: &str, spec: &WorkflowSpec| {
        WorkflowTenant::new(
            name,
            generate_workflow(spec, &GeneratorConfig::scaled(scale, 42)),
            Box::new(warm.clone()),
        )
    };
    let warmed = schedule_workflows(
        vec![
            mk_warm("rnaseq", &sizey_workflows::profiles::rnaseq()),
            mk_warm("iwd", &sizey_workflows::profiles::iwd()),
        ],
        &sim,
    );
    print_run(
        "same tenants warm-started from the service checkpoint",
        &warmed,
    );
    println!(
        "warm start carried over {} journaled records; second-run wastage {:.2} GBh vs \
         cold-run {:.2} GBh",
        checkpoint.merged().journal.len(),
        warmed
            .reports
            .iter()
            .map(|r| r.total_wastage_gbh())
            .sum::<f64>(),
        pooled
            .reports
            .iter()
            .map(|r| r.total_wastage_gbh())
            .sum::<f64>(),
    );

    // The async serving front-end: same shared service, but observes now
    // flow through bounded per-shard queues into micro-batching workers and
    // predictions read lock-free model snapshots. The tenants flush after
    // each observe so the replay keeps the simulator's observe-then-predict
    // contract (and stays bit-identical to the locked runs above); a live
    // deployment would skip the flush and accept one micro-batch of
    // snapshot staleness in exchange for never blocking a predict.
    let async_handle =
        AsyncSizey::sizey(SizeyConfig::default(), 8, ServiceConfig::default()).into_handle();
    struct SyncedTenant(AsyncSizeyHandle);
    impl MemoryPredictor for SyncedTenant {
        fn name(&self) -> String {
            self.0.name()
        }
        fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
            self.0.predict(task, ctx)
        }
        fn observe(&mut self, record: &TaskRecord) {
            self.0.service().observe(record);
            self.0.service().flush();
        }
    }
    let mk_async = |name: &str, spec: &WorkflowSpec| {
        WorkflowTenant::new(
            name,
            generate_workflow(spec, &GeneratorConfig::scaled(scale, 42)),
            Box::new(SyncedTenant(async_handle.clone())),
        )
    };
    let asynced = schedule_workflows(
        vec![
            mk_async("rnaseq", &sizey_workflows::profiles::rnaseq()),
            mk_async("iwd", &sizey_workflows::profiles::iwd()),
        ],
        &sim,
    );
    print_run(
        "both tenants on the ASYNC queue/snapshot front-end",
        &asynced,
    );
    let stats = async_handle.service().stats();
    println!(
        "async service: {} observes accepted ({} shed), {} micro-batches, \
         {} snapshots published, {} predicts served lock-free",
        stats.accepted, stats.shed, stats.batches, stats.snapshots_published, stats.predicts
    );
    let locked_wastage: f64 = pooled.reports.iter().map(|r| r.total_wastage_gbh()).sum();
    let async_wastage: f64 = asynced.reports.iter().map(|r| r.total_wastage_gbh()).sum();
    println!(
        "async-run wastage {async_wastage:.2} GBh vs locked-run {locked_wastage:.2} GBh \
         — the front-end changes the serving mechanics, not the decisions"
    );
}
