//! The per-(task type, machine) model pool.
//!
//! Sizey's model granularity is the finest of Fig. 4: every (task type,
//! machine) combination gets its own pool containing one model of every
//! configured class. The pool keeps
//!
//! * the successful observation history (the training data),
//! * each model's prequential accuracy contributions — scored from the
//!   `(prediction, actual)` pairs it produced *before* seeing each task,
//!   feeding the accuracy score of Eq. 1,
//! * the aggregate-estimate history feeding the offset selection,
//!
//! and performs the online-learning update (incremental or full retrain,
//! optionally with hyper-parameter optimisation).
//!
//! The pool is on the predictor hot path and is **panic-free by
//! construction**: every model call goes through `Result`/`Option`
//! (fallible fits fall back to a refit or keep the previous model, window
//! slices use saturating arithmetic), so a misbehaving model class can
//! degrade a pool's estimates but never abort a replay or a serving thread.

// Every prediction funnels through this module's gated pipeline; the
// marker opts it into the no-panic-hot-path lint rule.
#![doc = "lint:hot-path"]

use crate::config::{DriftPolicy, OnlineMode, SizeyConfig};
use crate::gating::{gate_with, GatingDecision};
use crate::offset::OffsetScratch;
use crate::raq::{accuracy_score_cached, pair_accuracy, pool_raq_scores_into};
use sizey_ml::dataset::Dataset;
use sizey_ml::forest::{ForestConfig, RandomForestRegression};
use sizey_ml::hpo::{grid_search, ModelSpec};
use sizey_ml::knn::KnnRegression;
use sizey_ml::linear::LinearRegression;
use sizey_ml::mlp::{MlpConfig, MlpRegression};
use sizey_ml::model::{ModelClass, PredictScratch, Regressor};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Number of most recent prequential accuracy contributions entering the
/// Eq. 1 accuracy score: the score follows the model's *current* quality, so
/// only a sliding window of cached pair scores is ever summed.
pub(crate) const ACCURACY_WINDOW: usize = 50;

/// Number of most recent `(aggregate estimate, actual)` pairs the offset
/// selection considers: a sliding window keeps the offsets tracking the
/// pool's current prediction quality instead of long-gone early errors.
pub(crate) const OFFSET_HISTORY_WINDOW: usize = 40;

/// When the periodic full retrain (and its optional HPO grid search) runs
/// relative to the observe hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetrainPolicy {
    /// Retrain synchronously inside `observe_success` (the historical
    /// behaviour; serial engines keep this so replays stay bit-identical).
    #[default]
    Inline,
    /// Stage a [`RetrainJob`] instead; the caller drains it with
    /// [`ModelPool::take_retrain_job`], trains off the hot path and commits
    /// via [`ModelPool::install_retrain`]. Predictions keep serving the old
    /// models until the install.
    Deferred,
}

/// A staged full retrain: cloned models plus a snapshot of the training data,
/// executable away from the pool (and its locks). The `epoch` ties the result
/// back to the model state it was staged from.
pub struct RetrainJob {
    members: Vec<(ModelClass, Box<dyn Regressor>)>,
    data: Dataset,
    hyperparameter_optimization: bool,
    epoch: u64,
}

/// The output of [`RetrainJob::execute`], ready for
/// [`ModelPool::install_retrain`].
pub struct RetrainedModels {
    members: Vec<(ModelClass, Box<dyn Regressor>)>,
    epoch: u64,
}

impl RetrainJob {
    /// Trains the cloned members on the snapshot. Runs the exact same
    /// HPO-or-refit procedure as an inline full retrain, so draining a job
    /// immediately after each observe reproduces inline retraining bit for
    /// bit. Takes `&self` so jobs can run on a shared thread pool.
    pub fn execute(&self) -> RetrainedModels {
        let members = self
            .members
            .iter()
            .map(|(class, model)| {
                if self.hyperparameter_optimization && self.data.len() >= 6 {
                    let specs = ModelSpec::default_grid(*class);
                    if let Ok(result) = grid_search(&specs, &self.data, 3) {
                        return (*class, result.model);
                    }
                }
                let mut model = model.clone_box();
                // `fit` is transactional: a failed refit keeps the previous
                // fitted state, which is still the best information we have.
                let _ = model.fit(&self.data);
                (*class, model)
            })
            .collect();
        RetrainedModels {
            members,
            epoch: self.epoch,
        }
    }
}

/// One pool member: a model plus its prequential accuracy history.
struct PoolMember {
    class: ModelClass,
    model: Box<dyn Regressor>,
    /// Each prequential `(prediction, actual)` pair's contribution to the
    /// Eq. 1 accuracy score ([`pair_accuracy`]), computed once when the
    /// pair is observed. The predict path sums a window of these cached
    /// values instead of re-scoring raw pairs on every call — the pairs
    /// themselves are not retained (the score is the only thing Eq. 1
    /// ever reads).
    accuracy_scores: Vec<f64>,
}

impl Clone for PoolMember {
    fn clone(&self) -> Self {
        PoolMember {
            class: self.class,
            model: self.model.clone_box(),
            accuracy_scores: self.accuracy_scores.clone(),
        }
    }
}

/// Reusable buffers for one full prediction pipeline pass
/// ([`ModelPool::gated_estimate_with`]) plus the offset computation that
/// follows it — everything the read path needs, owned by the caller and
/// recycled across predictions so the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct PoolScratch {
    /// Per-model buffers shared by every member's
    /// [`Regressor::predict_with`].
    pub(crate) ml: PredictScratch,
    /// `(class, estimate)` pairs of the members that produced an estimate.
    pub(crate) estimates: Vec<(ModelClass, f64)>,
    /// Windowed Eq. 1 accuracy score per estimating member.
    pub(crate) accuracies: Vec<f64>,
    /// Bare estimate values, aligned with `accuracies`.
    pub(crate) values: Vec<f64>,
    /// Eq. 3 RAQ scores.
    pub(crate) raq: Vec<f64>,
    /// Gating weights (Eq. 4).
    pub(crate) weights: Vec<f64>,
    /// Offset-strategy working buffers.
    pub(crate) offset: OffsetScratch,
}

/// The allocation-free result of [`ModelPool::gated_estimate_with`]: the
/// aggregate estimate plus the dominant model class, with no owned
/// per-member vectors (those stay in the [`PoolScratch`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatedOutcome {
    /// The aggregated memory estimate in bytes.
    pub estimate: f64,
    /// The model class holding the largest gating weight.
    pub dominant: ModelClass,
}

/// The model pool of one (task type, machine) combination.
pub struct ModelPool {
    members: Vec<PoolMember>,
    /// Successful observations: features → peak bytes.
    data: Dataset,
    /// History of `(aggregate raw estimate, actual)` pairs for the offset
    /// selection.
    aggregate_history: Vec<(f64, f64)>,
    /// Completions since the last full retrain (drives incremental mode).
    since_full_retrain: usize,
    /// Completions since the MLP's last warm-start update (drives the
    /// `mlp_update_interval` cadence of incremental mode).
    since_mlp_update: usize,
    /// Whether periodic retrains run inline or are staged for the caller.
    retrain_policy: RetrainPolicy,
    /// A staged-but-not-yet-drained retrain request.
    pending_retrain: bool,
    /// Bumped on every installed or inline full retrain; a staged job
    /// carries the epoch it saw, and a stale job is discarded on install.
    model_epoch: u64,
    /// Largest peak ever observed (successful or exhausted allocation).
    max_observed: Option<f64>,
    /// Rolling under-prediction flags of the drift detector (empty and
    /// untouched while [`DriftPolicy::Off`] is configured).
    drift_flags: VecDeque<bool>,
    /// Wall-clock time spent in the most recent model update.
    last_training_time: Duration,
    /// Reused buffer for the single-observation update dataset.
    point_scratch: Dataset,
    /// Reused buffer for the recent-window dataset of the MLP's warm-start
    /// update.
    tail_scratch: Dataset,
}

/// Cloning a pool deep-copies its models (via [`Regressor::clone_box`]) and
/// histories. This is the basis of the serving layer's immutable predictor
/// snapshots: the clone predicts bit-identically to the original because
/// every input to the prediction pipeline — models, training data, accuracy
/// and offset histories — is carried over. The transient scratch buffers are
/// reset to empty; they are recycled capacity, not state.
impl Clone for ModelPool {
    fn clone(&self) -> Self {
        ModelPool {
            members: self.members.clone(),
            data: self.data.clone(),
            aggregate_history: self.aggregate_history.clone(),
            since_full_retrain: self.since_full_retrain,
            since_mlp_update: self.since_mlp_update,
            retrain_policy: self.retrain_policy,
            pending_retrain: self.pending_retrain,
            model_epoch: self.model_epoch,
            max_observed: self.max_observed,
            drift_flags: self.drift_flags.clone(),
            last_training_time: self.last_training_time,
            point_scratch: Dataset::new(),
            tail_scratch: Dataset::new(),
        }
    }
}

impl std::fmt::Debug for ModelPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelPool")
            .field("members", &self.members.len())
            .field("observations", &self.data.len())
            .field("max_observed", &self.max_observed)
            .finish()
    }
}

fn build_model(class: ModelClass, seed: u64) -> Box<dyn Regressor> {
    match class {
        ModelClass::Linear => Box::new(LinearRegression::with_defaults()),
        ModelClass::Knn => Box::new(KnnRegression::with_defaults()),
        ModelClass::Mlp => Box::new(MlpRegression::new(MlpConfig {
            hidden_layers: vec![16],
            max_epochs: 120,
            // The warm start runs on every completion (the network goes
            // stale fast enough that thinning the cadence measurably hurts
            // sizing quality on small workloads), so it must be shallow: a
            // few Adam epochs over the recent tail keep the per-observe cost
            // bounded in the tens of microseconds.
            incremental_epochs: 5,
            seed,
            ..MlpConfig::default()
        })),
        ModelClass::RandomForest => Box::new(RandomForestRegression::new(ForestConfig {
            n_trees: 24,
            max_depth: 8,
            // Bank a quarter tree of refresh credit per observation (one tree
            // refit every four completions) and train refreshed trees on a
            // bounded recent window: per-observe work stays O(window), not
            // O(history).
            incremental_refresh_fraction: 0.25 / 24.0,
            incremental_window: 256,
            seed,
            ..ForestConfig::default()
        })),
    }
}

impl ModelPool {
    /// Creates an empty pool with one model per configured class.
    pub fn new(config: &SizeyConfig) -> Self {
        ModelPool {
            members: config
                .model_classes
                .iter()
                .map(|&class| PoolMember {
                    class,
                    model: build_model(class, config.seed),
                    accuracy_scores: Vec::new(),
                })
                .collect(),
            data: Dataset::new(),
            aggregate_history: Vec::new(),
            since_full_retrain: 0,
            since_mlp_update: 0,
            retrain_policy: RetrainPolicy::default(),
            pending_retrain: false,
            model_epoch: 0,
            max_observed: None,
            drift_flags: VecDeque::new(),
            last_training_time: Duration::ZERO,
            point_scratch: Dataset::new(),
            tail_scratch: Dataset::new(),
        }
    }

    /// Number of successful observations.
    pub fn n_observations(&self) -> usize {
        self.data.len()
    }

    /// The largest peak memory (or exhausted allocation) ever observed.
    pub fn max_observed(&self) -> Option<f64> {
        self.max_observed
    }

    /// Wall-clock duration of the most recent online-learning step.
    pub fn last_training_time(&self) -> Duration {
        self.last_training_time
    }

    /// The aggregate-estimate history used for offset selection.
    pub fn aggregate_history(&self) -> &[(f64, f64)] {
        &self.aggregate_history
    }

    /// Completions since the last full retrain of the whole pool.
    pub fn since_full_retrain(&self) -> usize {
        self.since_full_retrain
    }

    /// The current model epoch (bumped on every full retrain that lands).
    pub fn model_epoch(&self) -> u64 {
        self.model_epoch
    }

    /// Sets whether periodic full retrains run inline or are staged as
    /// [`RetrainJob`]s for the caller to execute off the hot path.
    pub fn set_retrain_policy(&mut self, policy: RetrainPolicy) {
        self.retrain_policy = policy;
    }

    /// True when a retrain has been staged but not yet drained.
    pub fn has_pending_retrain(&self) -> bool {
        self.pending_retrain
    }

    /// Drains the staged retrain request, if any, into an executable job.
    /// The job snapshots the current models and training data; run it with
    /// [`RetrainJob::execute`] and commit via
    /// [`ModelPool::install_retrain`].
    pub fn take_retrain_job(&mut self, config: &SizeyConfig) -> Option<RetrainJob> {
        if !self.pending_retrain {
            return None;
        }
        self.pending_retrain = false;
        Some(RetrainJob {
            members: self
                .members
                .iter()
                .map(|m| (m.class, m.model.clone_box()))
                .collect(),
            data: self.data.clone(),
            hyperparameter_optimization: config.hyperparameter_optimization,
            epoch: self.model_epoch,
        })
    }

    /// Commits the models trained by a [`RetrainJob`]. Returns `false` (and
    /// discards the result) when the pool's models were fully retrained after
    /// the job was staged — the freshly trained models would be staler than
    /// what is already serving.
    pub fn install_retrain(&mut self, trained: RetrainedModels) -> bool {
        if trained.epoch != self.model_epoch {
            return false;
        }
        for (class, model) in trained.members {
            if let Some(member) = self.members.iter_mut().find(|m| m.class == class) {
                member.model = model;
            }
        }
        self.model_epoch += 1;
        true
    }

    /// True once the pool has enough data and fitted models to predict.
    pub fn is_ready(&self, min_history: usize) -> bool {
        self.data.len() >= min_history.max(1) && self.members.iter().any(|m| m.model.is_fitted())
    }

    /// Produces each fitted member's estimate for the given features,
    /// clamped to be non-negative. Returns `None` when no member can predict.
    pub fn individual_estimates(&self, features: &[f64]) -> Option<Vec<(ModelClass, f64)>> {
        let mut scratch = PoolScratch::default();
        self.individual_estimates_into(features, &mut scratch)?;
        Some(std::mem::take(&mut scratch.estimates))
    }

    /// Fills `scratch.estimates` with each fitted member's non-negative
    /// estimate. Returns `None` (leaving the buffer empty) when no member
    /// can predict — same filtering as [`ModelPool::individual_estimates`].
    fn individual_estimates_into(&self, features: &[f64], scratch: &mut PoolScratch) -> Option<()> {
        scratch.estimates.clear();
        for m in &self.members {
            if !m.model.is_fitted() {
                continue;
            }
            if let Some(p) = m
                .model
                .predict_with(features, &mut scratch.ml)
                .ok()
                .filter(|p| p.is_finite())
            {
                scratch.estimates.push((m.class, p.max(0.0)));
            }
        }
        if scratch.estimates.is_empty() {
            None
        } else {
            Some(())
        }
    }

    /// Runs the full prediction pipeline for one query: individual estimates,
    /// RAQ scores, gating. Returns `None` when the pool is not ready.
    ///
    /// Reference entry point delegating to
    /// [`ModelPool::gated_estimate_with`]; the hot path calls the latter
    /// directly with a recycled [`PoolScratch`].
    pub fn gated_estimate(
        &self,
        features: &[f64],
        config: &SizeyConfig,
    ) -> Option<(GatingDecision, Vec<(ModelClass, f64)>)> {
        let mut scratch = PoolScratch::default();
        let outcome = self.gated_estimate_with(features, config, &mut scratch)?;
        let dominant_model = scratch
            .estimates
            .iter()
            .position(|(class, _)| *class == outcome.dominant)?;
        Some((
            GatingDecision {
                estimate: outcome.estimate,
                weights: std::mem::take(&mut scratch.weights),
                dominant_model,
            },
            std::mem::take(&mut scratch.estimates),
        ))
    }

    /// [`ModelPool::gated_estimate`] over caller-owned buffers — the
    /// allocation-free pipeline the predict hot path runs. Identical
    /// arithmetic at every stage (estimates, accuracy window, RAQ, gating);
    /// the per-member details stay in `scratch` instead of being returned.
    pub fn gated_estimate_with(
        &self,
        features: &[f64],
        config: &SizeyConfig,
        scratch: &mut PoolScratch,
    ) -> Option<GatedOutcome> {
        if !self.is_ready(config.min_history) {
            return None;
        }
        self.individual_estimates_into(features, scratch)?;
        // The accuracy score follows the model's *current* quality: only the
        // most recent prequential errors enter Eq. 1, so a model that drifts
        // (or recovers) is re-rated quickly. The per-pair contributions were
        // cached when the pairs were recorded (`accuracy_scores`), so this
        // sums a bounded window of cached values — no per-predict re-scoring
        // of the history, no cloned window buffers.
        scratch.accuracies.clear();
        for (class, _) in &scratch.estimates {
            let accuracy = self
                .members
                .iter()
                .find(|m| m.class == *class)
                .map(|m| {
                    let s = &m.accuracy_scores;
                    // lint:allow(no-panic-hot-path): the range start is
                    // saturating_sub-clamped to at most s.len(), so the
                    // window slice cannot be out of bounds.
                    accuracy_score_cached(&s[s.len().saturating_sub(ACCURACY_WINDOW)..])
                })
                .unwrap_or(0.0);
            scratch.accuracies.push(accuracy);
        }
        scratch.values.clear();
        scratch
            .values
            .extend(scratch.estimates.iter().map(|(_, v)| *v));
        pool_raq_scores_into(
            &scratch.accuracies,
            &scratch.values,
            config.alpha,
            &mut scratch.raq,
        );
        let (estimate, dominant_idx) = gate_with(
            config.gating,
            &scratch.values,
            &scratch.raq,
            &mut scratch.weights,
        );
        let dominant = scratch.estimates.get(dominant_idx).map(|(c, _)| *c)?;
        Some(GatedOutcome { estimate, dominant })
    }

    /// Records the observed peak of a *failed* attempt (the exhausted
    /// allocation) so that failure handling can escalate above it. An
    /// out-of-memory failure is an under-prediction by definition, so it
    /// also feeds the drift detector — but only once the pool is ready
    /// (during the cold start the preset drives allocations and a failure
    /// says nothing about the models).
    pub fn observe_failure(&mut self, exhausted_allocation: f64, config: &SizeyConfig) {
        self.max_observed = Some(
            self.max_observed
                .map_or(exhausted_allocation, |m| m.max(exhausted_allocation)),
        );
        if self.is_ready(config.min_history) && self.note_drift_observation(true, config) {
            self.drift_retrain(config);
        }
    }

    /// Feeds one under-prediction flag to the rolling drift detector and
    /// reports whether it fired. A no-op returning `false` while
    /// [`DriftPolicy::Off`] is configured, so the off path stays
    /// bit-identical. Firing clears the window, so consecutive triggers are
    /// at least one full window apart.
    fn note_drift_observation(&mut self, under_predicted: bool, config: &SizeyConfig) -> bool {
        let DriftPolicy::Retrain {
            window, threshold, ..
        } = config.drift
        else {
            return false;
        };
        let window = window.max(1);
        self.drift_flags.push_back(under_predicted);
        while self.drift_flags.len() > window {
            self.drift_flags.pop_front();
        }
        if self.drift_flags.len() < window {
            return false;
        }
        let under = self.drift_flags.iter().filter(|&&f| f).count();
        if (under as f64) < threshold * window as f64 {
            return false;
        }
        self.drift_flags.clear();
        true
    }

    /// The drift response: optionally drop the stale pre-drift history so
    /// the refit tracks the new regime, then force a full retrain through
    /// the configured [`RetrainPolicy`] (inline trains now; deferred stages
    /// a [`RetrainJob`] that snapshots the already-trimmed data when
    /// drained).
    fn drift_retrain(&mut self, config: &SizeyConfig) {
        if let DriftPolicy::Retrain { keep_recent, .. } = config.drift {
            if keep_recent > 0 && self.data.len() > keep_recent {
                self.data.drain_front(self.data.len() - keep_recent);
            }
        }
        match self.retrain_policy {
            RetrainPolicy::Inline => self.full_retrain(config),
            RetrainPolicy::Deferred => self.stage_retrain(),
        }
    }

    /// Incorporates a successful execution: prequential score bookkeeping,
    /// dataset growth and the online model update. Returns the time spent
    /// training.
    pub fn observe_success(
        &mut self,
        features: &[f64],
        peak_bytes: f64,
        config: &SizeyConfig,
    ) -> Duration {
        // 1. Prequential accuracy update: ask every fitted member what it
        //    would have predicted *before* learning from this task. The
        //    pair's Eq. 1 contribution is scored once, here, so predictions
        //    only ever sum cached values.
        for member in &mut self.members {
            if member.model.is_fitted() {
                if let Ok(pred) = member.model.predict(features) {
                    if pred.is_finite() {
                        member
                            .accuracy_scores
                            .push(pair_accuracy(pred.max(0.0), peak_bytes));
                    }
                }
            }
        }
        // 2. Offset bookkeeping with the aggregate estimate. The same
        // pre-learning estimate feeds the drift detector: the observation is
        // under-predicted when the raw aggregate fell below the actual peak.
        // No estimate (cold start) → no detector update.
        let mut drift_under = None;
        if let Some((decision, _)) = self.gated_estimate(features, config) {
            self.aggregate_history.push((decision.estimate, peak_bytes));
            drift_under = Some(decision.estimate < peak_bytes);
        }

        // 3. Grow the training data.
        self.data.push(features.to_vec(), peak_bytes);
        self.max_observed = Some(self.max_observed.map_or(peak_bytes, |m| m.max(peak_bytes)));

        // 3b. Opt-in bounded history: once the training set doubles the
        // configured window it is drained back to the window (amortised
        // O(1) per observation), and the models are fully retrained on the
        // trimmed window so they never depend on dropped rows. The
        // prequential and offset histories are trimmed to their fixed read
        // windows — the scores only ever read the most recent
        // `ACCURACY_WINDOW` / `OFFSET_HISTORY_WINDOW` entries, so this is
        // invisible to predictions. Everything is deterministic in the
        // observation count, preserving replay reproducibility.
        let mut trimmed = false;
        if let Some(window) = config.history_window {
            let window = window.max(1);
            if self.data.len() >= 2 * window {
                self.data.drain_front(self.data.len() - window);
                trimmed = true;
            }
            for member in &mut self.members {
                let scores = &mut member.accuracy_scores;
                if scores.len() >= 2 * ACCURACY_WINDOW {
                    let excess = scores.len() - ACCURACY_WINDOW;
                    scores.drain(..excess);
                }
            }
            if self.aggregate_history.len() >= 2 * OFFSET_HISTORY_WINDOW {
                let excess = self.aggregate_history.len() - OFFSET_HISTORY_WINDOW;
                self.aggregate_history.drain(..excess);
            }
        }

        // 4. Online model update. The single-point and recent-window update
        // datasets live in pool-owned scratch buffers, reused across
        // observations instead of being reallocated on every completion.
        // lint:allow(no-wallclock-in-sim): measures real training latency for
        // the fig. 9 diagnostics only — the value never feeds back into
        // predictions or the virtual clock, so determinism is unaffected.
        let start = Instant::now();
        self.data.tail_into(1, &mut self.point_scratch);
        if trimmed {
            // The window boundary is a de-facto full retrain, whatever the
            // online mode asked for.
            match self.retrain_policy {
                RetrainPolicy::Inline => self.full_retrain(config),
                RetrainPolicy::Deferred => self.stage_retrain(),
            }
        } else {
            match config.online {
                OnlineMode::FullRetrain => match self.retrain_policy {
                    RetrainPolicy::Inline => self.full_retrain(config),
                    RetrainPolicy::Deferred => self.stage_retrain(),
                },
                OnlineMode::Incremental {
                    retrain_interval,
                    mlp_update_interval,
                } => {
                    self.since_full_retrain += 1;
                    if retrain_interval > 0 && self.since_full_retrain >= retrain_interval {
                        match self.retrain_policy {
                            RetrainPolicy::Inline => self.full_retrain(config),
                            RetrainPolicy::Deferred => self.stage_retrain(),
                        }
                    } else {
                        self.incremental_update(mlp_update_interval);
                    }
                }
            }
        }
        // 5. Drift response: runs after the regular online update so the
        // triggered retrain supersedes whatever lighter update just
        // happened, on data that already includes this observation.
        if let Some(under) = drift_under {
            if self.note_drift_observation(under, config) {
                self.drift_retrain(config);
            }
        }
        self.last_training_time = start.elapsed();
        self.last_training_time
    }

    /// The light (non-retrain) update of incremental mode: exact or
    /// append-style `partial_fit`s for the cheap members, and a warm-start
    /// update for the MLP every `mlp_update_interval`-th completion.
    fn incremental_update(&mut self, mlp_update_interval: usize) {
        self.since_mlp_update += 1;
        let update_mlp = mlp_update_interval > 0 && self.since_mlp_update >= mlp_update_interval;
        if update_mlp {
            // The MLP's warm-start update runs on a recent window of the data
            // rather than the single new observation; a gradient step on one
            // point would drag the network towards it and destabilise the
            // pool between full retrains.
            self.data.tail_into(16, &mut self.tail_scratch);
            self.since_mlp_update = 0;
        }
        // Track whether this update degenerated into refitting *every* member
        // on the complete history (cold start, or every incremental update
        // failing): that is a de-facto full retrain and restarts the interval
        // counter, so the next scheduled retrain is not fired spuriously.
        let mut pool_fully_refit = true;
        for member in &mut self.members {
            if member.class == ModelClass::Mlp && member.model.is_fitted() && !update_mlp {
                pool_fully_refit = false;
                continue;
            }
            let was_fitted = member.model.is_fitted();
            let result = if was_fitted {
                let update = if member.class == ModelClass::Mlp {
                    &self.tail_scratch
                } else {
                    &self.point_scratch
                };
                member.model.partial_fit(update)
            } else {
                member.model.fit(&self.data)
            };
            match result {
                // A failed incremental update falls back to a refit on the
                // complete history; `fit` is transactional, so even a failed
                // fallback keeps the previous fitted model serving.
                Err(_) => {
                    if member.model.fit(&self.data).is_err() {
                        pool_fully_refit = false;
                    }
                }
                Ok(()) if was_fitted => pool_fully_refit = false,
                Ok(()) => {}
            }
        }
        if pool_fully_refit && !self.members.is_empty() {
            self.since_full_retrain = 0;
        }
    }

    /// Stages a deferred full retrain and restarts the interval counter (the
    /// staging *is* the scheduled retrain; training happens when the caller
    /// drains the job).
    fn stage_retrain(&mut self) {
        self.pending_retrain = true;
        self.since_full_retrain = 0;
    }

    fn full_retrain(&mut self, config: &SizeyConfig) {
        for member in &mut self.members {
            if config.hyperparameter_optimization && self.data.len() >= 6 {
                let specs = ModelSpec::default_grid(member.class);
                if let Ok(result) = grid_search(&specs, &self.data, 3) {
                    member.model = result.model;
                    continue;
                }
            }
            if member.model.fit(&self.data).is_err() {
                // Keep the previous model if the refit fails; `fit` is
                // transactional, so the previous fitted state still serves.
            }
        }
        // A full retrain ran, whatever triggered it (interval, FullRetrain
        // mode, or an explicit call) — restart the interval counter and
        // invalidate any in-flight deferred job.
        self.since_full_retrain = 0;
        self.model_epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GatingStrategy;

    fn config() -> SizeyConfig {
        SizeyConfig::default()
    }

    fn feed_linear(pool: &mut ModelPool, cfg: &SizeyConfig, n: usize) {
        for i in 1..=n {
            let input = i as f64 * 1e9;
            pool.observe_success(&[input], 2.0 * input + 1e9, cfg);
        }
    }

    #[test]
    fn empty_pool_is_not_ready() {
        let cfg = config();
        let pool = ModelPool::new(&cfg);
        assert!(!pool.is_ready(cfg.min_history));
        assert!(pool.individual_estimates(&[1e9]).is_none());
        assert!(pool.gated_estimate(&[1e9], &cfg).is_none());
        assert_eq!(pool.max_observed(), None);
    }

    #[test]
    fn pool_becomes_ready_after_min_history() {
        let cfg = config();
        let mut pool = ModelPool::new(&cfg);
        feed_linear(&mut pool, &cfg, 3);
        assert!(pool.is_ready(cfg.min_history));
        assert_eq!(pool.n_observations(), 3);
    }

    #[test]
    fn estimates_cover_all_configured_classes() {
        let cfg = config();
        let mut pool = ModelPool::new(&cfg);
        feed_linear(&mut pool, &cfg, 8);
        let estimates = pool.individual_estimates(&[4e9]).unwrap();
        assert_eq!(estimates.len(), 4);
        for (_, value) in &estimates {
            assert!(*value > 0.0);
        }
    }

    #[test]
    fn gated_estimate_is_reasonable_on_linear_data() {
        let cfg = config();
        let mut pool = ModelPool::new(&cfg);
        feed_linear(&mut pool, &cfg, 15);
        let (decision, _) = pool.gated_estimate(&[8e9], &cfg).unwrap();
        let truth = 2.0 * 8e9 + 1e9;
        assert!(
            (decision.estimate - truth).abs() / truth < 0.5,
            "estimate {} vs truth {}",
            decision.estimate,
            truth
        );
        let weight_sum: f64 = decision.weights.iter().sum();
        assert!((weight_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn argmax_gating_reports_a_dominant_model() {
        let cfg = config().with_gating(GatingStrategy::Argmax);
        let mut pool = ModelPool::new(&cfg);
        feed_linear(&mut pool, &cfg, 12);
        let (decision, estimates) = pool.gated_estimate(&[5e9], &cfg).unwrap();
        assert!(decision.dominant_model < estimates.len());
        assert_eq!(
            decision.weights.iter().filter(|&&w| w == 1.0).count(),
            1,
            "argmax puts all weight on one model"
        );
    }

    #[test]
    fn accuracy_scores_grow_prequentially() {
        let cfg = config();
        let mut pool = ModelPool::new(&cfg);
        feed_linear(&mut pool, &cfg, 6);
        // The first observation fits unfitted models, so accuracy history
        // starts with the second observation.
        for member in &pool.members {
            assert!(member.accuracy_scores.len() >= 4);
            assert!(member.accuracy_scores.len() < 6);
        }
        assert!(!pool.aggregate_history().is_empty());
    }

    #[test]
    fn max_observed_tracks_successes_and_failures() {
        let cfg = config();
        let mut pool = ModelPool::new(&cfg);
        pool.observe_success(&[1e9], 3e9, &cfg);
        assert_eq!(pool.max_observed(), Some(3e9));
        pool.observe_failure(8e9, &cfg);
        assert_eq!(pool.max_observed(), Some(8e9));
        pool.observe_success(&[1e9], 5e9, &cfg);
        assert_eq!(pool.max_observed(), Some(8e9));
    }

    #[test]
    fn full_retrain_mode_trains_every_time() {
        let cfg = SizeyConfig {
            online: OnlineMode::FullRetrain,
            ..SizeyConfig::default()
        };
        let mut pool = ModelPool::new(&cfg);
        feed_linear(&mut pool, &cfg, 5);
        assert!(pool.is_ready(cfg.min_history));
        assert!(pool.last_training_time() > Duration::ZERO);
    }

    #[test]
    fn restricted_pool_only_builds_requested_classes() {
        let cfg = config().with_model_classes(vec![ModelClass::Linear, ModelClass::Knn]);
        let mut pool = ModelPool::new(&cfg);
        feed_linear(&mut pool, &cfg, 6);
        let estimates = pool.individual_estimates(&[3e9]).unwrap();
        assert_eq!(estimates.len(), 2);
        let classes: Vec<ModelClass> = estimates.iter().map(|(c, _)| *c).collect();
        assert!(classes.contains(&ModelClass::Linear));
        assert!(classes.contains(&ModelClass::Knn));
    }

    #[test]
    fn incremental_mode_periodically_retrains() {
        let cfg = SizeyConfig {
            online: OnlineMode::incremental(3),
            ..SizeyConfig::default()
        };
        let mut pool = ModelPool::new(&cfg);
        feed_linear(&mut pool, &cfg, 10);
        // After 10 observations with interval 3 the counter must have cycled.
        assert!(pool.since_full_retrain < 3);
    }

    #[test]
    fn full_retrain_mode_resets_the_interval_counter() {
        // Switching a pool that ran in FullRetrain mode over to incremental
        // mode must not fire an immediate spurious full retrain: every
        // FullRetrain-mode observe really did retrain, so the counter is 0.
        let full = SizeyConfig {
            online: OnlineMode::FullRetrain,
            ..SizeyConfig::default()
        };
        let mut pool = ModelPool::new(&full);
        feed_linear(&mut pool, &full, 5);
        assert_eq!(pool.since_full_retrain(), 0);
        let epoch_before = pool.model_epoch();
        assert!(
            epoch_before > 0,
            "every FullRetrain observe bumps the epoch"
        );
    }

    #[test]
    fn history_window_bounds_training_data_and_histories() {
        let cfg = config().with_history_window(16);
        let mut pool = ModelPool::new(&cfg);
        for i in 1..=300 {
            let input = (i % 20 + 1) as f64 * 1e9;
            pool.observe_success(&[input], 2.0 * input + 1e9, &cfg);
        }
        // Amortised trim: the dataset never doubles the window.
        assert!(pool.n_observations() < 32, "kept {}", pool.n_observations());
        for member in &pool.members {
            assert!(member.accuracy_scores.len() < 2 * ACCURACY_WINDOW);
        }
        assert!(pool.aggregate_history().len() < 2 * OFFSET_HISTORY_WINDOW);
        // The pool still predicts from the retained window.
        assert!(pool.is_ready(cfg.min_history));
        let (decision, _) = pool.gated_estimate(&[10e9], &cfg).unwrap();
        let truth = 2.0 * 10e9 + 1e9;
        assert!(
            (decision.estimate - truth).abs() / truth < 0.5,
            "estimate {} vs truth {}",
            decision.estimate,
            truth
        );
    }

    #[test]
    fn unbounded_default_retains_everything() {
        let cfg = config();
        let mut pool = ModelPool::new(&cfg);
        feed_linear(&mut pool, &cfg, 120);
        assert_eq!(pool.n_observations(), 120);
    }

    #[test]
    fn deferred_retrains_stage_instead_of_training_inline() {
        let cfg = SizeyConfig {
            online: OnlineMode::incremental(3),
            ..SizeyConfig::default()
        };
        let mut pool = ModelPool::new(&cfg);
        pool.set_retrain_policy(RetrainPolicy::Deferred);
        // The very first observe cold-start-fits every member on the full
        // history, which counts as a full retrain; the interval then needs
        // three further completions to elapse.
        feed_linear(&mut pool, &cfg, 3);
        assert!(!pool.has_pending_retrain());
        feed_linear(&mut pool, &cfg, 1);
        assert!(pool.has_pending_retrain(), "interval hit must stage a job");
        assert_eq!(pool.since_full_retrain(), 0);

        let job = pool.take_retrain_job(&cfg).expect("staged job");
        assert!(!pool.has_pending_retrain());
        assert!(pool.take_retrain_job(&cfg).is_none());

        let trained = job.execute();
        assert!(pool.install_retrain(trained));
        assert_eq!(pool.model_epoch(), 1);
        assert!(pool.is_ready(cfg.min_history));
    }

    #[test]
    fn stale_retrain_results_are_discarded() {
        let cfg = SizeyConfig {
            online: OnlineMode::incremental(2),
            ..SizeyConfig::default()
        };
        let mut pool = ModelPool::new(&cfg);
        pool.set_retrain_policy(RetrainPolicy::Deferred);
        feed_linear(&mut pool, &cfg, 3);
        let job = pool.take_retrain_job(&cfg).expect("staged job");
        // An inline full retrain lands while the job is in flight.
        pool.full_retrain(&cfg);
        let stale_epoch = job.epoch;
        assert!(pool.model_epoch() > stale_epoch);
        assert!(
            !pool.install_retrain(job.execute()),
            "a job staged before the inline retrain must be discarded"
        );
    }

    #[test]
    fn deferred_drain_after_each_observe_matches_inline_retraining() {
        let cfg = SizeyConfig {
            online: OnlineMode::incremental(3),
            ..SizeyConfig::default()
        };
        let mut inline = ModelPool::new(&cfg);
        let mut deferred = ModelPool::new(&cfg);
        deferred.set_retrain_policy(RetrainPolicy::Deferred);
        for i in 1..=9 {
            let input = i as f64 * 1e9;
            let peak = 2.0 * input + 1e9;
            inline.observe_success(&[input], peak, &cfg);
            deferred.observe_success(&[input], peak, &cfg);
            if let Some(job) = deferred.take_retrain_job(&cfg) {
                assert!(deferred.install_retrain(job.execute()));
            }
            let query = [input + 5e8];
            let a = inline.gated_estimate(&query, &cfg).map(|(d, _)| d.estimate);
            let b = deferred
                .gated_estimate(&query, &cfg)
                .map(|(d, _)| d.estimate);
            assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "draining immediately after each observe must be bit-identical to inline retrains (observe {i})"
            );
        }
    }

    /// Online mode with no scheduled full retrains: the model epoch can only
    /// move when the drift detector fires, which makes triggers observable.
    fn no_scheduled_retrains() -> OnlineMode {
        OnlineMode::Incremental {
            retrain_interval: 0,
            mlp_update_interval: 1,
        }
    }

    #[test]
    fn unreachable_drift_detector_is_bit_identical_to_off() {
        let off = config();
        // threshold > 1 can never be reached (at most window of window flags
        // are under-predictions), so only the detector bookkeeping runs.
        let armed = config().with_drift_policy(DriftPolicy::Retrain {
            window: 5,
            threshold: 1.1,
            keep_recent: 1,
        });
        let mut a = ModelPool::new(&off);
        let mut b = ModelPool::new(&armed);
        for i in 1..=20 {
            let input = i as f64 * 1e9;
            // A drifting regime: plenty of genuine under-predictions.
            let peak = if i <= 10 {
                2.0 * input + 1e9
            } else {
                6.0 * input + 8e9
            };
            a.observe_success(&[input], peak, &off);
            b.observe_success(&[input], peak, &armed);
            let query = [input + 5e8];
            let ea = a.gated_estimate(&query, &off).map(|(d, _)| d.estimate);
            let eb = b.gated_estimate(&query, &armed).map(|(d, _)| d.estimate);
            assert_eq!(
                ea.map(f64::to_bits),
                eb.map(f64::to_bits),
                "an unfired detector must not perturb predictions (observe {i})"
            );
        }
        assert_eq!(a.model_epoch(), b.model_epoch());
        assert_eq!(a.n_observations(), b.n_observations());
    }

    #[test]
    fn underprediction_burst_triggers_a_full_retrain() {
        let cfg = SizeyConfig {
            online: no_scheduled_retrains(),
            ..SizeyConfig::default()
        }
        .with_drift_policy(DriftPolicy::Retrain {
            window: 4,
            threshold: 0.75,
            keep_recent: 0,
        });
        let off = SizeyConfig {
            online: no_scheduled_retrains(),
            ..SizeyConfig::default()
        };
        let mut drifting = ModelPool::new(&cfg);
        let mut control = ModelPool::new(&off);
        feed_linear(&mut drifting, &cfg, 10);
        feed_linear(&mut control, &off, 10);
        let epoch_before = drifting.model_epoch();
        // Regime change: peaks jump far above anything the regime-A models
        // predict, so every observation is an under-prediction.
        for i in 11..=18 {
            let input = i as f64 * 1e9;
            let peak = 6.0 * input + 8e9;
            drifting.observe_success(&[input], peak, &cfg);
            control.observe_success(&[input], peak, &off);
        }
        assert!(
            drifting.model_epoch() > epoch_before,
            "the under-prediction burst must force a full retrain"
        );
        assert_eq!(
            control.model_epoch(),
            0,
            "without a drift policy nothing retrains in this online mode"
        );
    }

    #[test]
    fn drift_trigger_trims_history_to_keep_recent() {
        let cfg = SizeyConfig {
            online: no_scheduled_retrains(),
            ..SizeyConfig::default()
        }
        .with_drift_policy(DriftPolicy::Retrain {
            window: 3,
            threshold: 0.5,
            keep_recent: 5,
        });
        let mut pool = ModelPool::new(&cfg);
        feed_linear(&mut pool, &cfg, 10);
        let epoch_before = pool.model_epoch();
        let mut fired = false;
        for i in 11..=20 {
            let input = i as f64 * 1e9;
            pool.observe_success(&[input], 6.0 * input + 8e9, &cfg);
            if pool.model_epoch() > epoch_before {
                fired = true;
                assert_eq!(
                    pool.n_observations(),
                    5,
                    "the trigger must trim the training data to keep_recent"
                );
                break;
            }
        }
        assert!(fired, "the regime change must fire the detector");
    }

    #[test]
    fn oom_failures_feed_the_detector_once_the_pool_is_ready() {
        let cfg = SizeyConfig {
            online: no_scheduled_retrains(),
            ..SizeyConfig::default()
        }
        .with_drift_policy(DriftPolicy::Retrain {
            window: 3,
            threshold: 1.0,
            keep_recent: 0,
        });
        // Cold pool: failures say nothing about the models and must not
        // accumulate detector state.
        let mut cold = ModelPool::new(&cfg);
        for _ in 0..5 {
            cold.observe_failure(64e9, &cfg);
        }
        assert_eq!(cold.model_epoch(), 0);
        // Ready pool: three consecutive OOMs fill the window at rate 1.0.
        let mut ready = ModelPool::new(&cfg);
        feed_linear(&mut ready, &cfg, 6);
        let epoch_before = ready.model_epoch();
        for _ in 0..3 {
            ready.observe_failure(64e9, &cfg);
        }
        assert!(ready.model_epoch() > epoch_before);
    }

    #[test]
    fn drift_trigger_respects_the_deferred_retrain_policy() {
        let cfg = SizeyConfig {
            online: no_scheduled_retrains(),
            ..SizeyConfig::default()
        }
        .with_drift_policy(DriftPolicy::Retrain {
            window: 3,
            threshold: 1.0,
            keep_recent: 0,
        });
        let mut pool = ModelPool::new(&cfg);
        pool.set_retrain_policy(RetrainPolicy::Deferred);
        feed_linear(&mut pool, &cfg, 6);
        // The warm-up itself may under-predict enough to fire; drain any
        // staged job so the next trigger is unambiguously the failure burst.
        if let Some(job) = pool.take_retrain_job(&cfg) {
            assert!(pool.install_retrain(job.execute()));
        }
        let epoch_before = pool.model_epoch();
        assert!(!pool.has_pending_retrain());
        for _ in 0..3 {
            pool.observe_failure(64e9, &cfg);
        }
        assert!(
            pool.has_pending_retrain(),
            "a deferred pool stages the drift retrain instead of training inline"
        );
        assert_eq!(pool.model_epoch(), epoch_before);
        let job = pool.take_retrain_job(&cfg).expect("staged drift retrain");
        assert!(pool.install_retrain(job.execute()));
        assert_eq!(pool.model_epoch(), epoch_before + 1);
    }
}
