//! Differential property tests pinning the streaming replay pipeline
//! **bit-identical** to the materialised one: iterator-based workload
//! generation, the single-workflow streaming replay, and the multi-tenant
//! streaming scheduler must reproduce the materialised engines' outputs
//! exactly — same instances, same attempt events, same aggregates (exact
//! `f64` equality), same scheduler telemetry and node peaks, and the same
//! learned predictor state — for any workload, seed, arrival layout and
//! scheduling policy.

use proptest::prelude::*;
use sizey_sim::AttemptEvent;
use sizey_suite::prelude::*;
use std::sync::{Arc, Mutex};

fn workload(wf_idx: usize, seed: u64) -> (WorkflowSpec, GeneratorConfig) {
    let name = sizey_workflows::WORKFLOW_NAMES[wf_idx % 6];
    let spec = sizey_workflows::workflow_by_name(name).expect("known workflow");
    let config = GeneratorConfig {
        scale: 0.01,
        seed,
        min_instances: 10,
        interleave: true,
        drift: None,
    };
    (spec, config)
}

/// A predictor handle that survives the replay consuming its tenant, so the
/// test can compare the learned state of both engines after the run. The
/// replay itself is single-threaded; the mutex only satisfies the ownership
/// story.
struct SharedCheckpoint(Arc<Mutex<SizeyPredictor>>);

impl MemoryPredictor for SharedCheckpoint {
    fn name(&self) -> String {
        self.0.lock().expect("predictor lock").name()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        self.0.lock().expect("predictor lock").predict(task, ctx)
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.0.lock().expect("predictor lock").observe(record)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The streaming generator yields exactly the instances the materialised
    /// generator produces, in the same order.
    #[test]
    fn stream_workflow_matches_materialised_generation(
        seed in 0u64..5000,
        wf_idx in 0usize..6,
    ) {
        let (spec, config) = workload(wf_idx, seed);
        let materialised = generate_workflow(&spec, &config);
        let streamed: Vec<TaskInstance> = stream_workflow(&spec, &config).collect();
        prop_assert_eq!(streamed, materialised);
    }

    /// The single-workflow streaming replay reproduces the materialised
    /// report exactly: same attempt events, same aggregates, and the two
    /// online-learning predictors end in bit-identical state.
    #[test]
    fn streaming_replay_matches_materialised_report(
        seed in 0u64..5000,
        wf_idx in 0usize..6,
    ) {
        let (spec, config) = workload(wf_idx, seed);
        let sim = SimulationConfig::default();

        let instances = generate_workflow(&spec, &config);
        let mut materialised_predictor = SizeyPredictor::with_defaults();
        let report = replay_workflow(&spec.name, &instances, &mut materialised_predictor, &sim);

        let mut streaming_predictor = SizeyPredictor::with_defaults();
        let mut events: Vec<AttemptEvent> = Vec::new();
        let aggregates = replay_workflow_streaming(
            &spec.name,
            stream_workflow(&spec, &config),
            &mut streaming_predictor,
            &sim,
            &mut events,
        );

        prop_assert_eq!(&aggregates, &ReplayAggregates::from_report(&report));
        prop_assert_eq!(events, report.events);
        prop_assert_eq!(
            streaming_predictor.snapshot(),
            materialised_predictor.snapshot(),
            "learned state diverged between the engines"
        );
    }

    /// The multi-tenant streaming scheduler makes the same scheduling
    /// decisions as the materialised one under every policy: makespan,
    /// telemetry, per-node peaks, per-tenant aggregates and the learned
    /// predictor state all match exactly, and no in-flight state leaks.
    #[test]
    fn streaming_scheduler_matches_materialised_scheduler(
        seed in 0u64..5000,
        policy_idx in 0usize..3,
        tenant_count in 1usize..4,
        stagger in 0usize..3,
    ) {
        let policy = SchedulePolicy::ALL[policy_idx];
        let sim = SimulationConfig::default().with_policy(policy);
        let stagger_seconds = stagger as f64 * 45.0;

        let predictors_m: Vec<Arc<Mutex<SizeyPredictor>>> = (0..tenant_count)
            .map(|_| Arc::new(Mutex::new(SizeyPredictor::with_defaults())))
            .collect();
        let predictors_s: Vec<Arc<Mutex<SizeyPredictor>>> = (0..tenant_count)
            .map(|_| Arc::new(Mutex::new(SizeyPredictor::with_defaults())))
            .collect();

        let materialised_tenants: Vec<WorkflowTenant> = (0..tenant_count)
            .map(|i| {
                let (spec, config) = workload(wf_seed(seed, i), seed + i as u64);
                WorkflowTenant::new(
                    format!("{}-{i}", spec.name),
                    generate_workflow(&spec, &config),
                    Box::new(SharedCheckpoint(Arc::clone(&predictors_m[i]))),
                )
                .with_arrival_offset(i as f64 * stagger_seconds)
            })
            .collect();
        let streaming_tenants: Vec<StreamingTenant> = (0..tenant_count)
            .map(|i| {
                let (spec, config) = workload(wf_seed(seed, i), seed + i as u64);
                StreamingTenant::new(
                    format!("{}-{i}", spec.name),
                    stream_workflow(&spec, &config),
                    Box::new(SharedCheckpoint(Arc::clone(&predictors_s[i]))),
                )
                .with_arrival_offset(i as f64 * stagger_seconds)
            })
            .collect();

        let materialised = schedule_workflows(materialised_tenants, &sim);
        let mut events: Vec<AttemptEvent> = Vec::new();
        let streaming = schedule_workflows_streaming(
            streaming_tenants,
            &sim,
            &mut events,
            &mut NullRecordSink,
        );

        prop_assert_eq!(streaming.makespan_seconds, materialised.makespan_seconds);
        prop_assert_eq!(&streaming.stats, &materialised.stats);
        prop_assert_eq!(&streaming.nodes, &materialised.nodes);
        prop_assert_eq!(streaming.leaked_inflight_instances, 0);
        for (s, m) in streaming.reports.iter().zip(&materialised.reports) {
            prop_assert_eq!(&s.workflow, &m.workflow);
            prop_assert_eq!(&s.method, &m.method);
            prop_assert_eq!(&s.aggregates, &ReplayAggregates::from_report(m));
        }
        for (ps, pm) in predictors_s.iter().zip(&predictors_m) {
            prop_assert_eq!(
                ps.lock().expect("predictor lock").snapshot(),
                pm.lock().expect("predictor lock").snapshot(),
                "learned state diverged between the engines"
            );
        }
        let total_events: usize = materialised.reports.iter().map(|r| r.events.len()).sum();
        prop_assert_eq!(events.len(), total_events);
    }
}

/// Mixes the run seed into the workflow choice so tenant layouts vary
/// across cases without an extra proptest dimension.
fn wf_seed(seed: u64, tenant: usize) -> usize {
    seed as usize + tenant
}
