//! Property tests for the predictor snapshot/restore lifecycle: a predictor
//! restored from a [`PredictorState`] checkpoint must be **bit-identical**
//! to the uninterrupted original — same predictions (exact `f64` equality),
//! same state — for any workload, seed and mid-workflow cut point, and the
//! text codec must round-trip states losslessly.

use proptest::prelude::*;
use sizey_suite::prelude::*;

fn small_workload(name: &str, seed: u64) -> Vec<TaskInstance> {
    let spec = sizey_workflows::workflow_by_name(name).expect("known workflow");
    generate_workflow(
        &spec,
        &GeneratorConfig {
            scale: 0.01,
            seed,
            min_instances: 8,
            interleave: true,
            drift: None,
        },
    )
}

/// Drives one instance through a predictor the way the replay engine does —
/// predict, retry on (simulated) OOM up to three attempts, observe the
/// outcome — and returns every prediction made. Failures exercise the
/// journal's failed-record path.
fn drive(predictor: &mut dyn CheckpointPredictor, inst: &TaskInstance) -> Vec<Prediction> {
    drive_with(predictor, inst, |_| {})
}

/// [`drive`], additionally offering every observed record to `on_record`
/// just before the predictor sees it — the hook the compaction tests use to
/// append the post-checkpoint journal tail.
fn drive_with(
    predictor: &mut dyn CheckpointPredictor,
    inst: &TaskInstance,
    mut on_record: impl FnMut(&TaskRecord),
) -> Vec<Prediction> {
    let submission = TaskSubmission {
        workflow: inst.workflow.clone(),
        task_type: inst.task_type.clone(),
        machine: inst.machine.clone(),
        sequence: inst.sequence,
        input_bytes: inst.input_bytes,
        preset_memory_bytes: inst.preset_memory_bytes,
    };
    let mut predictions = Vec::new();
    let mut last_allocation: Option<f64> = None;
    for attempt in 0..3u32 {
        let ctx = AttemptContext {
            attempt,
            last_allocation_bytes: last_allocation,
        };
        let prediction = predictor.predict(&submission, ctx);
        let allocation = prediction.allocation_bytes.max(128e6);
        predictions.push(prediction);
        let success = allocation >= inst.true_peak_bytes;
        let record = TaskRecord {
            workflow: inst.workflow.clone(),
            task_type: inst.task_type.clone(),
            machine: inst.machine.clone(),
            sequence: inst.sequence,
            input_bytes: inst.input_bytes,
            peak_memory_bytes: if success {
                inst.true_peak_bytes
            } else {
                allocation
            },
            allocated_memory_bytes: allocation,
            runtime_seconds: inst.base_runtime_seconds,
            concurrent_tasks: 1,
            queue_delay_seconds: 0.0,
            outcome: if success {
                TaskOutcome::Succeeded
            } else {
                TaskOutcome::FailedOutOfMemory
            },
        };
        on_record(&record);
        predictor.observe(&record);
        last_allocation = Some(allocation);
        if success {
            break;
        }
    }
    predictions
}

/// Checkpoints `spec`'s predictor mid-workflow at `cut` and asserts the
/// restored copy stays in lockstep with the uninterrupted original for the
/// rest of the workload — predictions equal bit for bit, final snapshots
/// equal.
fn assert_checkpoint_is_bit_identical(
    method: &MethodSpec,
    instances: &[TaskInstance],
    cut: usize,
) -> Result<(), TestCaseError> {
    let mut original = method.build();
    for inst in &instances[..cut] {
        drive(original.as_mut(), inst);
    }
    let state = original.snapshot();

    // The codec is part of the contract: restore from the *serialised* form.
    let text = state.to_state_string();
    let parsed = PredictorState::from_state_string(&text)
        .map_err(|e| TestCaseError::fail(format!("codec failed: {e}")))?;
    prop_assert_eq!(&parsed, &state, "text codec round-trip changed the state");

    let mut restored = method
        .restore(&parsed)
        .map_err(|e| TestCaseError::fail(format!("restore failed: {e}")))?;
    prop_assert_eq!(
        restored.snapshot(),
        state,
        "restored predictor does not reproduce the checkpoint"
    );

    for inst in &instances[cut..] {
        let a = drive(original.as_mut(), inst);
        let b = drive(restored.as_mut(), inst);
        prop_assert_eq!(
            a,
            b,
            "post-restore predictions diverged for {}/{}",
            inst.task_type.as_str(),
            inst.sequence
        );
    }
    prop_assert_eq!(
        original.snapshot(),
        restored.snapshot(),
        "final states diverged after lockstep continuation"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sizey: model pools, offset histories and diagnostics all survive a
    /// mid-workflow checkpoint bit for bit.
    #[test]
    fn sizey_mid_workflow_checkpoint_is_bit_identical(
        seed in 0u64..3000,
        wf_idx in 0usize..6,
        cut_permille in 0usize..1000,
    ) {
        let name = sizey_workflows::WORKFLOW_NAMES[wf_idx];
        let instances = small_workload(name, seed);
        let cut = cut_permille * instances.len() / 1000;
        assert_checkpoint_is_bit_identical(
            &MethodSpec::sizey_defaults(),
            &instances,
            cut,
        )?;
    }

    /// Same property for a baseline (Witt-Percentile journals through the
    /// shared `History`, so this covers the path all four baselines use).
    #[test]
    fn baseline_mid_workflow_checkpoint_is_bit_identical(
        seed in 0u64..3000,
        wf_idx in 0usize..6,
        cut_permille in 0usize..1000,
    ) {
        let name = sizey_workflows::WORKFLOW_NAMES[wf_idx];
        let instances = small_workload(name, seed);
        let cut = cut_permille * instances.len() / 1000;
        assert_checkpoint_is_bit_identical(
            &MethodSpec::WittPercentile(Default::default()),
            &instances,
            cut,
        )?;
    }

    /// Satellite regression: `since_full_retrain` is learned state — a
    /// restored predictor must reconstruct every pool's retrain counter from
    /// the journal replay, or its next periodic full retrain fires at the
    /// wrong observation and predictions drift from the original thereafter.
    #[test]
    fn since_full_retrain_counters_survive_snapshot_restore(
        seed in 0u64..3000,
        wf_idx in 0usize..6,
    ) {
        let name = sizey_workflows::WORKFLOW_NAMES[wf_idx];
        let spec = sizey_workflows::workflow_by_name(name).expect("known workflow");
        let instances = generate_workflow(
            &spec,
            &GeneratorConfig {
                scale: 0.01,
                seed,
                min_instances: 30,
                interleave: true,
                drift: None,
            },
        );
        let mut original = SizeyPredictor::with_defaults();
        for inst in &instances {
            drive(&mut original, inst);
        }
        let counters = original.since_full_retrain();
        prop_assert!(!counters.is_empty());
        let state = original.snapshot();
        let mut restored = SizeyPredictor::with_defaults();
        restored
            .restore(&state)
            .map_err(|e| TestCaseError::fail(format!("restore failed: {e}")))?;
        prop_assert_eq!(restored.since_full_retrain(), counters);
    }

    /// Satellite: journal compaction. For **every** predictor class in the
    /// default suite, restoring from a mid-workflow base checkpoint plus the
    /// journal tail observed afterwards is bit-identical to restoring from
    /// the full journal — same resolved state (for journaling predictors),
    /// same lockstep predictions, same final snapshots.
    #[test]
    fn compacted_checkpoint_restore_is_bit_identical(
        seed in 0u64..3000,
        wf_idx in 0usize..6,
        cut_permille in 0usize..1000,
        method_idx in 0usize..6,
    ) {
        let suite = MethodSpec::default_suite();
        let method = &suite[method_idx];
        let name = sizey_workflows::WORKFLOW_NAMES[wf_idx];
        let instances = small_workload(name, seed);
        let cut = cut_permille * instances.len() / 1000;

        let mut original = method.build();
        for inst in &instances[..cut] {
            drive(original.as_mut(), inst);
        }
        let mut compacted = CompactedCheckpoint::new(original.snapshot());
        for inst in &instances[cut..] {
            drive_with(original.as_mut(), inst, |record| {
                compacted.append(std::sync::Arc::new(record.clone()));
            });
        }
        let full = original.snapshot();
        compacted.seal_counters(full.counters.clone());

        // Journaling predictors: base + tail resolves to the exact full
        // state. (The stateless preset baseline journals nothing, so its
        // resolved tail is deliberately richer than its empty snapshot.)
        if method.id() != "preset" {
            prop_assert_eq!(
                compacted.resolve(),
                full.clone(),
                "base + tail did not resolve to the full journal"
            );
        }

        let mut from_full = method
            .restore(&full)
            .map_err(|e| TestCaseError::fail(format!("full restore failed: {e}")))?;
        let mut from_compacted = method.build();
        compacted
            .restore_into(from_compacted.as_mut())
            .map_err(|e| TestCaseError::fail(format!("compacted restore failed: {e}")))?;
        prop_assert_eq!(
            from_compacted.snapshot(),
            from_full.snapshot(),
            "restored snapshots diverged"
        );

        // Lockstep continuation: both restored predictors must keep making
        // identical predictions on further work.
        for inst in instances.iter().take(24) {
            let a = drive(from_full.as_mut(), inst);
            let b = drive(from_compacted.as_mut(), inst);
            prop_assert_eq!(a, b, "post-restore predictions diverged");
        }
        prop_assert_eq!(from_full.snapshot(), from_compacted.snapshot());
    }

    /// The serialised text form itself round-trips losslessly for states
    /// with arbitrary finite floats in the journal.
    #[test]
    fn state_codec_round_trips_arbitrary_records(
        peaks in proptest::collection::vec(1e6f64..1e12, 1..20),
        counter in 0u64..1000,
    ) {
        let journal: Vec<std::sync::Arc<TaskRecord>> = peaks
            .iter()
            .enumerate()
            .map(|(i, peak)| std::sync::Arc::new(TaskRecord {
                workflow: "wf".to_string(),
                task_type: TaskTypeId::new("t"),
                machine: MachineId::new("m"),
                sequence: i as u64,
                input_bytes: peak / 3.0,
                peak_memory_bytes: *peak,
                allocated_memory_bytes: peak * 1.37,
                runtime_seconds: peak % 977.0,
                concurrent_tasks: (i % 7) as u32,
                queue_delay_seconds: peak % 13.0,
                outcome: if i % 4 == 0 {
                    TaskOutcome::FailedOutOfMemory
                } else {
                    TaskOutcome::Succeeded
                },
            }))
            .collect();
        let state = PredictorState {
            journal,
            counters: vec![("offset-selected.std-dev".to_string(), counter)],
        };
        let parsed = PredictorState::from_state_string(&state.to_state_string()).unwrap();
        prop_assert_eq!(parsed, state);
    }
}
