//! Property tests for the async serving front-end.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Snapshot ≡ locked ≡ SharedSizey.** After a
//!    [`flush`](sizey_core::AsyncService::flush), the lock-free snapshot
//!    predict path is bit-identical to the locked path on the same service,
//!    and both are bit-identical to a locked [`SharedSizey`] fed the same
//!    records directly — for any record stream, shard count and micro-batch
//!    geometry. This holds because per-shard queues preserve per-key
//!    submission order and a predictor's state is a pure function of its
//!    per-key record sequence; snapshots are deep clones of that state.
//! 2. **Backpressure invariants.** Queue depths never exceed the configured
//!    capacity and every submission is accounted for:
//!    `accepted + shed == submitted`, and after shutdown
//!    `observed == accepted`.
//! 3. **Shutdown drains.** Closing the service never deadlocks and never
//!    loses an accepted observe, whatever is still queued.

use proptest::prelude::*;
use sizey_core::{AdmissionPolicy, AsyncSizey, ServiceConfig, SharedSizey, SizeyConfig};
use sizey_provenance::{MachineId, TaskOutcome, TaskRecord, TaskTypeId};
use sizey_sim::{AttemptContext, MemoryPredictor, TaskSubmission};
use std::time::Duration;

const TASK_TYPES: [&str; 5] = ["align", "sort", "merge", "variant-call", "qc"];
const MACHINES: [&str; 3] = ["node-a", "node-b", "gpu-17"];

fn record(type_idx: usize, machine_idx: usize, seq: u64, input_gb: f64, factor: f64) -> TaskRecord {
    let input = input_gb * 1e9;
    let peak = factor * input + 5e8;
    TaskRecord {
        workflow: "wf".into(),
        task_type: TaskTypeId::new(TASK_TYPES[type_idx % TASK_TYPES.len()]),
        machine: MachineId::new(MACHINES[machine_idx % MACHINES.len()]),
        sequence: seq,
        input_bytes: input,
        peak_memory_bytes: peak,
        allocated_memory_bytes: peak * 1.5,
        runtime_seconds: 30.0 + input_gb,
        concurrent_tasks: 1,
        queue_delay_seconds: 0.0,
        outcome: TaskOutcome::Succeeded,
    }
}

fn submission(type_idx: usize, machine_idx: usize, input_gb: f64) -> TaskSubmission {
    TaskSubmission {
        workflow: "wf".into(),
        task_type: TaskTypeId::new(TASK_TYPES[type_idx % TASK_TYPES.len()]),
        machine: MachineId::new(MACHINES[machine_idx % MACHINES.len()]),
        sequence: 9_000,
        input_bytes: input_gb * 1e9,
        preset_memory_bytes: 20e9,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Guarantee 1: for any record stream and service geometry, the
    /// flushed snapshot path, the locked path and a directly-driven
    /// `SharedSizey` agree bitwise on every prediction.
    #[test]
    fn snapshot_locked_and_shared_paths_are_bit_identical_after_flush(
        stream in proptest::collection::vec(
            (0usize..5, 0usize..3, 1.0f64..12.0, 1.2f64..3.0),
            10..80,
        ),
        shards in 1usize..7,
        batch_max in 1usize..33,
        window_us in 0u64..500,
    ) {
        let config = ServiceConfig {
            batch_max,
            batch_window: Duration::from_micros(window_us),
            ..ServiceConfig::default()
        };
        let service = AsyncSizey::sizey(SizeyConfig::default(), shards, config);
        let mut reference = SharedSizey::sizey(SizeyConfig::default(), shards);

        for (seq, &(t, m, input, factor)) in stream.iter().enumerate() {
            let rec = record(t, m, seq as u64 + 1, input, factor);
            prop_assert!(service.observe(&rec), "Block admission must accept");
            reference.observe(&rec);
        }
        service.flush();

        for t in 0..TASK_TYPES.len() {
            for m in 0..MACHINES.len() {
                for input_gb in [0.5, 4.0, 25.0] {
                    let task = submission(t, m, input_gb);
                    for ctx in [AttemptContext::first(), AttemptContext::retry(2, 8e9)] {
                        let snap = service.predict(&task, ctx);
                        let locked = service.predict_locked(&task, ctx);
                        let shared = reference.predict(&task, ctx);
                        prop_assert_eq!(&snap, &locked,
                            "snapshot vs locked diverged on {}/{}", t, m);
                        // Bitwise equality, not tolerance: the async service
                        // must run the exact same arithmetic on the exact
                        // same state as the locked reference.
                        prop_assert_eq!(&snap, &shared,
                            "async vs SharedSizey diverged on {}/{}", t, m);
                    }
                }
            }
        }
        let stats = service.shutdown();
        prop_assert_eq!(stats.accepted, stream.len() as u64);
        prop_assert_eq!(stats.observed, stream.len() as u64);
        prop_assert_eq!(stats.shed, 0);
    }

    /// Guarantee 2: under shed admission the queue bound is an invariant
    /// and every submission is accounted as accepted or shed.
    #[test]
    fn backpressure_bounds_queues_and_accounts_for_every_submission(
        stream in proptest::collection::vec(
            (0usize..5, 0usize..3),
            20..150,
        ),
        capacity in 1usize..9,
        shards in 1usize..4,
    ) {
        let config = ServiceConfig {
            queue_capacity: capacity,
            // A long window keeps the workers busy waiting so queues
            // actually fill and shed under the test's submission burst.
            batch_max: 256,
            batch_window: Duration::from_millis(20),
            admission: AdmissionPolicy::Shed,
            ..ServiceConfig::default()
        };
        let service = AsyncSizey::sizey(SizeyConfig::default(), shards, config);
        let mut accepted = 0u64;
        for (seq, &(t, m)) in stream.iter().enumerate() {
            if service.observe(&record(t, m, seq as u64 + 1, 2.0, 2.0)) {
                accepted += 1;
            }
            for depth in service.queue_depths() {
                prop_assert!(depth <= capacity, "queue depth {} > bound {}", depth, capacity);
            }
        }
        let mid = service.stats();
        prop_assert_eq!(mid.submitted, stream.len() as u64);
        prop_assert_eq!(mid.accepted, accepted);
        prop_assert_eq!(mid.accepted + mid.shed, mid.submitted);

        let fin = service.shutdown();
        prop_assert_eq!(fin.observed, fin.accepted, "accepted observes were lost");
    }

    /// Guarantee 3: shutdown with arbitrarily full queues neither
    /// deadlocks nor drops accepted work, and post-shutdown submissions
    /// are shed, not silently swallowed.
    #[test]
    fn shutdown_drains_everything_accepted_without_deadlock(
        n in 1usize..120,
        shards in 1usize..5,
        batch_max in 1usize..17,
    ) {
        let config = ServiceConfig {
            batch_max,
            batch_window: Duration::from_micros(50),
            ..ServiceConfig::default()
        };
        let service = AsyncSizey::sizey(SizeyConfig::default(), shards, config);
        for seq in 0..n {
            service.observe(&record(seq, seq, seq as u64 + 1, 1.0, 2.0));
        }
        // No flush on purpose: shutdown itself must drain the queues.
        let stats = service.shutdown();
        prop_assert_eq!(stats.accepted, n as u64);
        prop_assert_eq!(stats.observed, n as u64);
    }
}

/// A shed-mode handle keeps serving predictions while its queues overflow:
/// the read path is independent of write-path congestion.
#[test]
fn predicts_keep_flowing_while_queues_overflow() {
    let config = ServiceConfig {
        queue_capacity: 2,
        batch_max: 512,
        batch_window: Duration::from_millis(50),
        admission: AdmissionPolicy::Shed,
        ..ServiceConfig::default()
    };
    let service = AsyncSizey::sizey(SizeyConfig::default(), 2, config);
    let mut sheds = 0u64;
    for seq in 0..500u64 {
        if !service.observe(&record(0, 0, seq + 1, 2.0, 2.0)) {
            sheds += 1;
        }
        // Predicts must complete regardless of queue congestion.
        let pred = service.predict(&submission(0, 0, 2.0), AttemptContext::first());
        assert!(pred.allocation_bytes > 0.0);
    }
    assert!(sheds > 0, "the test never actually congested the queues");
    let stats = service.shutdown();
    assert_eq!(stats.predicts, 500);
    assert_eq!(stats.observed, stats.accepted);
}
