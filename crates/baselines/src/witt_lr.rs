//! The Witt-LR baseline.
//!
//! The second method of Witt et al. (HPCS 2019): a per-task-type linear
//! regression of peak memory on input size, offset by the observed difference
//! between actual and predicted peaks so that underestimation becomes
//! unlikely. Before enough history exists, the user preset is used; a failed
//! attempt doubles the previous allocation.

use crate::history::History;
use sizey_ml::dataset::Dataset;
use sizey_ml::linear::LinearRegression;
use sizey_ml::metrics::std_dev;
use sizey_ml::model::Regressor;
use sizey_provenance::{TaskMachineKey, TaskRecord};
use sizey_sim::{AttemptContext, MemoryPredictor, Prediction, TaskSubmission};

/// Configuration of [`WittLr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WittLrConfig {
    /// Minimum number of historical observations before the regression is
    /// trusted; below this the preset is used.
    pub min_history: usize,
    /// Multiplier on the residual standard deviation added as the safety
    /// offset.
    pub offset_sigmas: f64,
}

impl Default for WittLrConfig {
    fn default() -> Self {
        WittLrConfig {
            min_history: 3,
            offset_sigmas: 1.0,
        }
    }
}

/// Linear-regression-with-offset peak memory predictor.
#[derive(Debug, Default, Clone)]
pub struct WittLr {
    config: WittLrConfig,
    history: History,
}

impl WittLr {
    /// Creates the predictor with default configuration.
    pub fn new() -> Self {
        WittLr::default()
    }

    /// Creates the predictor with a custom configuration.
    pub fn with_config(config: WittLrConfig) -> Self {
        WittLr {
            config,
            history: History::new(),
        }
    }

    fn key(task: &TaskSubmission) -> TaskMachineKey {
        TaskMachineKey {
            task_type: task.task_type.clone(),
            machine: task.machine.clone(),
        }
    }

    /// Fits the regression on the current history and returns the offset
    /// prediction for the submitted input size, or `None` when there is not
    /// enough history.
    fn estimate(&self, task: &TaskSubmission) -> Option<f64> {
        let key = Self::key(task);
        let observations = self.history.get(&key);
        if observations.len() < self.config.min_history {
            return None;
        }
        let xs: Vec<f64> = observations.iter().map(|o| o.input_bytes).collect();
        let ys: Vec<f64> = observations.iter().map(|o| o.peak_bytes).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut model = LinearRegression::with_defaults();
        model.fit(&data).ok()?;
        let prediction = model.predict(&[task.input_bytes]).ok()?;

        // Offset: the spread of the residuals on the training data.
        let residuals: Vec<f64> = observations
            .iter()
            .filter_map(|o| {
                model
                    .predict(&[o.input_bytes])
                    .ok()
                    .map(|p| o.peak_bytes - p)
            })
            .collect();
        let offset = std_dev(&residuals) * self.config.offset_sigmas;
        // Floor at a small positive allocation so the doubling-based failure
        // handling always escalates.
        Some((prediction + offset).max(128e6))
    }
}

impl MemoryPredictor for WittLr {
    fn name(&self) -> String {
        "Witt-LR".to_string()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        let raw = self.estimate(task);
        let base = raw.unwrap_or(task.preset_memory_bytes);
        Prediction {
            allocation_bytes: base * 2.0_f64.powi(ctx.attempt as i32),
            raw_estimate_bytes: raw,
            selected_model: None,
        }
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.history.observe(record);
    }
}

crate::history::impl_history_checkpoint!(WittLr);

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::{MachineId, TaskOutcome, TaskTypeId};

    fn submission(input: f64) -> TaskSubmission {
        TaskSubmission {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: input,
            preset_memory_bytes: 20e9,
        }
    }

    fn success(input: f64, peak: f64) -> TaskRecord {
        TaskRecord {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: input,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 2.0,
            runtime_seconds: 60.0,
            concurrent_tasks: 0,
            queue_delay_seconds: 0.0,
            outcome: TaskOutcome::Succeeded,
        }
    }

    #[test]
    fn uses_preset_before_enough_history() {
        let mut p = WittLr::new();
        p.observe(&success(1e9, 2e9));
        let pred = p.predict(&submission(1e9), AttemptContext::first());
        assert_eq!(pred.allocation_bytes, 20e9);
        assert!(pred.raw_estimate_bytes.is_none());
    }

    #[test]
    fn learns_linear_relationship() {
        let mut p = WittLr::new();
        // peak = 2 * input + 1 GB, noiseless.
        for i in 1..=10 {
            let input = i as f64 * 1e9;
            p.observe(&success(input, 2.0 * input + 1e9));
        }
        let pred = p.predict(&submission(20e9), AttemptContext::first());
        // Noiseless data => zero residual spread => no offset.
        assert!(
            (pred.allocation_bytes - 41e9).abs() < 0.5e9,
            "{}",
            pred.allocation_bytes
        );
    }

    #[test]
    fn offset_grows_with_noise() {
        let mut noisy = WittLr::new();
        let mut clean = WittLr::new();
        for i in 1..=20 {
            let input = i as f64 * 1e9;
            clean.observe(&success(input, input + 1e9));
            let noise = if i % 2 == 0 { 2e9 } else { -2e9 };
            noisy.observe(&success(input, input + 1e9 + noise));
        }
        let clean_alloc = clean
            .predict(&submission(10.5e9), AttemptContext::first())
            .allocation_bytes;
        let noisy_alloc = noisy
            .predict(&submission(10.5e9), AttemptContext::first())
            .allocation_bytes;
        assert!(
            noisy_alloc > clean_alloc + 1e9,
            "noisy {noisy_alloc} should exceed clean {clean_alloc}"
        );
    }

    #[test]
    fn doubles_on_retry() {
        let mut p = WittLr::new();
        for i in 1..=5 {
            p.observe(&success(i as f64 * 1e9, i as f64 * 1e9));
        }
        let base = p
            .predict(&submission(3e9), AttemptContext::first())
            .allocation_bytes;
        let retried = p
            .predict(&submission(3e9), AttemptContext::retry(2, base * 2.0))
            .allocation_bytes;
        assert!((retried - base * 4.0).abs() < 1e-3);
    }
}
