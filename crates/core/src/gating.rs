//! The gating mechanism combining pool outputs (Section II-D).
//!
//! Given the pool's individual estimates and their RAQ scores, the gating
//! mechanism assigns each predictor a weight and produces a single aggregate
//! estimate — either by picking the best model (Argmax) or by a softmax
//! consensus over the RAQ scores (Interpolation, Eq. 4).

use crate::config::GatingStrategy;

/// Result of gating: the aggregate estimate, the per-model weights, and the
/// index of the dominant model (used for the Fig. 11 model-share analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct GatingDecision {
    /// The aggregated memory estimate in bytes.
    pub estimate: f64,
    /// One weight per pool member, summing to 1.
    pub weights: Vec<f64>,
    /// Index of the model with the largest weight.
    pub dominant_model: usize,
}

/// Applies the gating strategy to the pool estimates and their RAQ scores.
///
/// # Panics
/// Panics if `estimates` and `raq_scores` have different lengths or are
/// empty — the pool never calls the gate without at least one fitted model.
pub fn gate(strategy: GatingStrategy, estimates: &[f64], raq_scores: &[f64]) -> GatingDecision {
    let mut weights = Vec::new();
    let (estimate, dominant_model) = gate_with(strategy, estimates, raq_scores, &mut weights);
    GatingDecision {
        estimate,
        weights,
        dominant_model,
    }
}

/// [`gate`] into a caller-owned weights buffer — the allocation-free twin
/// used by the predict hot path. On return `weights` holds one weight per
/// pool member; the aggregate estimate and the index of the dominant model
/// are returned directly. Identical arithmetic to [`gate`].
///
/// # Panics
/// Same contract as [`gate`].
pub fn gate_with(
    strategy: GatingStrategy,
    estimates: &[f64],
    raq_scores: &[f64],
    weights: &mut Vec<f64>,
) -> (f64, usize) {
    assert_eq!(
        estimates.len(),
        raq_scores.len(),
        "one RAQ score per estimate required"
    );
    assert!(!estimates.is_empty(), "cannot gate an empty pool");

    match strategy {
        GatingStrategy::Argmax => {
            let best = argmax(raq_scores);
            weights.clear();
            weights.resize(estimates.len(), 0.0);
            weights[best] = 1.0;
            (estimates[best], best)
        }
        GatingStrategy::Interpolation { beta } => {
            let beta = beta.max(1.0);
            softmax_into(raq_scores, beta, weights);
            let estimate = estimates
                .iter()
                .zip(weights.iter())
                .map(|(e, w)| e * w)
                .sum();
            (estimate, argmax(weights))
        }
    }
}

/// Index of the maximum value (first one wins ties).
fn argmax(values: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, v) in values.iter().enumerate() {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable softmax with sharpness `beta` (Eq. 4), written into a
/// caller-owned buffer. Same values and summation order as collecting the
/// exponentials into a fresh vector.
fn softmax_into(scores: &[f64], beta: f64, out: &mut Vec<f64>) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    out.clear();
    out.extend(scores.iter().map(|s| (beta * (s - max)).exp()));
    let sum: f64 = out.iter().sum();
    for w in out.iter_mut() {
        *w /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_strategy_selects_highest_raq() {
        let d = gate(GatingStrategy::Argmax, &[1e9, 2e9, 3e9], &[0.2, 0.9, 0.5]);
        assert_eq!(d.estimate, 2e9);
        assert_eq!(d.dominant_model, 1);
        assert_eq!(d.weights, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn argmax_ties_pick_the_first() {
        let d = gate(GatingStrategy::Argmax, &[1e9, 2e9], &[0.5, 0.5]);
        assert_eq!(d.dominant_model, 0);
    }

    #[test]
    fn interpolation_weights_form_a_simplex() {
        let d = gate(
            GatingStrategy::Interpolation { beta: 3.0 },
            &[1e9, 2e9, 4e9],
            &[0.3, 0.6, 0.1],
        );
        let sum: f64 = d.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(d.weights.iter().all(|&w| (0.0..=1.0).contains(&w)));
        assert_eq!(d.dominant_model, 1);
    }

    #[test]
    fn interpolation_estimate_is_between_extremes() {
        let estimates = [1e9, 5e9];
        let d = gate(
            GatingStrategy::Interpolation { beta: 2.0 },
            &estimates,
            &[0.5, 0.5],
        );
        assert!(d.estimate > 1e9 && d.estimate < 5e9);
        // Equal scores => simple average.
        assert!((d.estimate - 3e9).abs() < 1e-3);
    }

    #[test]
    fn large_beta_approaches_argmax() {
        let estimates = [1e9, 5e9];
        let raq = [0.4, 0.6];
        let soft = gate(
            GatingStrategy::Interpolation { beta: 200.0 },
            &estimates,
            &raq,
        );
        let hard = gate(GatingStrategy::Argmax, &estimates, &raq);
        assert!((soft.estimate - hard.estimate).abs() / hard.estimate < 1e-6);
    }

    #[test]
    fn beta_below_one_is_clamped() {
        let a = gate(
            GatingStrategy::Interpolation { beta: 0.0 },
            &[1e9, 2e9],
            &[0.2, 0.8],
        );
        let b = gate(
            GatingStrategy::Interpolation { beta: 1.0 },
            &[1e9, 2e9],
            &[0.2, 0.8],
        );
        assert!((a.estimate - b.estimate).abs() < 1e-6);
    }

    #[test]
    fn interpolation_matches_hand_computed_softmax() {
        // Eq. 4 with beta = 2 over RAQ scores [0.9, 0.5]: the weight of the
        // better model is the logistic of beta * (0.9 - 0.5) = 0.8,
        //   w0 = 1 / (1 + e^-0.8) = 0.6899744811276125,
        // and the aggregate over estimates [2, 6] GB is
        //   0.6899744811276125 * 2e9 + 0.3100255188723875 * 6e9
        //   = 3.24010207548955e9.
        let d = gate(
            GatingStrategy::Interpolation { beta: 2.0 },
            &[2.0e9, 6.0e9],
            &[0.9, 0.5],
        );
        assert!((d.weights[0] - 0.6899744811276125).abs() < 1e-12);
        assert!((d.weights[1] - 0.3100255188723875).abs() < 1e-12);
        assert!((d.estimate - 3.24010207548955e9).abs() < 0.5);
        assert_eq!(d.dominant_model, 0);
    }

    #[test]
    fn argmax_and_interpolation_agree_on_the_dominant_model() {
        // Softmax is monotone, so whenever the RAQ maximum is unique the two
        // strategies must name the same dominant model even though their
        // aggregate estimates differ.
        let estimates = [1.0e9, 2.0e9, 3.0e9];
        let raq = [0.2, 0.8, 0.6];
        let hard = gate(GatingStrategy::Argmax, &estimates, &raq);
        let soft = gate(
            GatingStrategy::Interpolation { beta: 4.0 },
            &estimates,
            &raq,
        );
        assert_eq!(hard.dominant_model, 1);
        assert_eq!(soft.dominant_model, 1);
        // Argmax returns the winner's estimate verbatim; interpolation blends.
        assert_eq!(hard.estimate, 2.0e9);
        assert!(soft.estimate > 1.0e9 && soft.estimate < 3.0e9);
    }

    #[test]
    fn equal_raq_scores_average_the_estimates() {
        // With identical scores every weight is 1/n, so the interpolated
        // estimate is the plain mean while Argmax falls back to the first.
        let estimates = [1.0e9, 2.0e9, 6.0e9];
        let raq = [0.4, 0.4, 0.4];
        let soft = gate(
            GatingStrategy::Interpolation { beta: 8.0 },
            &estimates,
            &raq,
        );
        assert!((soft.estimate - 3.0e9).abs() < 1e-3);
        for w in &soft.weights {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
        let hard = gate(GatingStrategy::Argmax, &estimates, &raq);
        assert_eq!(hard.dominant_model, 0);
        assert_eq!(hard.estimate, 1.0e9);
    }

    #[test]
    #[should_panic(expected = "cannot gate an empty pool")]
    fn gating_empty_pool_panics() {
        let _ = gate(GatingStrategy::Argmax, &[], &[]);
    }

    #[test]
    #[should_panic(expected = "one RAQ score per estimate")]
    fn mismatched_lengths_panic() {
        let _ = gate(GatingStrategy::Argmax, &[1.0], &[0.1, 0.2]);
    }
}
