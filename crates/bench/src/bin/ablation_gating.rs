//! Ablation — gating strategy: Argmax vs. Interpolation with a β sweep
//! (DESIGN.md §5). The paper states that Argmax is more opportunistic while
//! Interpolation seeks a consensus; its experiments use Interpolation.
//!
//! Run with `cargo run -p sizey-bench --release --bin ablation_gating`.

use sizey_bench::{banner, fmt, generate_workloads, render_table, HarnessSettings, MethodSpec};
use sizey_core::{GatingStrategy, SizeyConfig};
use sizey_sim::{replay_workflow, SimulationConfig};

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Ablation: gating strategy (Argmax vs Interpolation beta sweep)",
        &settings,
    );

    let workloads = generate_workloads(&HarnessSettings {
        scale: settings.scale.min(0.1),
        ..settings
    });
    let sim = SimulationConfig::default();

    let variants: Vec<(String, GatingStrategy)> = vec![
        ("Argmax".to_string(), GatingStrategy::Argmax),
        (
            "Interpolation beta=1".to_string(),
            GatingStrategy::Interpolation { beta: 1.0 },
        ),
        (
            "Interpolation beta=4".to_string(),
            GatingStrategy::Interpolation { beta: 4.0 },
        ),
        (
            "Interpolation beta=16".to_string(),
            GatingStrategy::Interpolation { beta: 16.0 },
        ),
    ];

    let mut rows = Vec::new();
    for (label, gating) in variants {
        let mut wastage = 0.0;
        let mut failures = 0usize;
        for workload in &workloads {
            let mut sizey = MethodSpec::Sizey(SizeyConfig::default().with_gating(gating)).build();
            let report = replay_workflow(
                &workload.spec.name,
                &workload.instances,
                sizey.as_mut(),
                &sim,
            );
            wastage += report.total_wastage_gbh();
            failures += report.total_failures();
        }
        rows.push(vec![label, fmt(wastage, 2), failures.to_string()]);
    }

    println!(
        "{}",
        render_table(&["Gating", "Total Wastage GBh", "Failures"], &rows)
    );
    println!("Expected shape: both strategies land in the same wastage range; Argmax reacts");
    println!("faster to a single well-fitting model, Interpolation smooths over divergent");
    println!("predictors (the paper's default).");
}
