//! Training data containers shared by all regressors.

use crate::matrix::Matrix;

/// A supervised regression dataset: a design matrix of feature rows and a
/// response vector of targets (peak memory in bytes for the Sizey use case).
#[derive(Debug, Default)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl Clone for Dataset {
    fn clone(&self) -> Self {
        Dataset {
            features: self.features.clone(),
            targets: self.targets.clone(),
        }
    }

    /// Reuses the destination's row buffers (outer and inner vectors) —
    /// models that retrain on a growing history call this on every update,
    /// so the copy must not reallocate the whole training set each time.
    fn clone_from(&mut self, source: &Self) {
        self.features.clone_from(&source.features);
        self.targets.clone_from(&source.targets);
    }
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Creates a dataset from parallel feature/target vectors.
    ///
    /// # Panics
    /// Panics if the two vectors have different lengths or the feature rows
    /// have inconsistent widths.
    pub fn from_parts(features: Vec<Vec<f64>>, targets: Vec<f64>) -> Self {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same number of rows"
        );
        if let Some(first) = features.first() {
            let w = first.len();
            assert!(
                features.iter().all(|f| f.len() == w),
                "all feature rows must have the same width"
            );
        }
        Dataset { features, targets }
    }

    /// Convenience constructor for single-feature data (the common Sizey case:
    /// input size → peak memory).
    pub fn from_univariate(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len());
        Dataset {
            features: xs.iter().map(|&x| vec![x]).collect(),
            targets: ys.to_vec(),
        }
    }

    /// Appends one observation.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        if let Some(first) = self.features.first() {
            assert_eq!(
                first.len(),
                features.len(),
                "feature width must be consistent"
            );
        }
        self.features.push(features);
        self.targets.push(target);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when there are no observations.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of feature columns (0 for an empty dataset).
    pub fn n_features(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Borrow the feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Borrow the targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Returns the i-th observation.
    pub fn get(&self, i: usize) -> (&[f64], f64) {
        (&self.features[i], self.targets[i])
    }

    /// Builds the design matrix (one row per observation). The flat
    /// row-major buffer is filled directly — no intermediate per-row
    /// vectors.
    pub fn design_matrix(&self) -> Matrix {
        if self.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = self.n_features();
        let mut data = Vec::with_capacity(self.len() * cols);
        for row in &self.features {
            data.extend_from_slice(row);
        }
        Matrix::from_vec(self.len(), cols, data)
    }

    /// Builds the design matrix with a leading intercept column of ones,
    /// writing the flat buffer directly (the former implementation built a
    /// temporary `Vec` per row and then copied the lot again).
    pub fn design_matrix_with_intercept(&self) -> Matrix {
        if self.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = self.n_features() + 1;
        let mut data = Vec::with_capacity(self.len() * cols);
        for row in &self.features {
            data.push(1.0);
            data.extend_from_slice(row);
        }
        Matrix::from_vec(self.len(), cols, data)
    }

    /// Returns a new dataset containing only the observations at `indices`.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            targets: indices.iter().map(|&i| self.targets[i]).collect(),
        }
    }

    /// Removes the first `n` observations (all of them when `n >= len`),
    /// preserving the order of the remainder — the primitive behind bounded
    /// training histories (`SizeyConfig::history_window`): the dataset is
    /// drained from the front once it doubles the window, so the cost is
    /// amortised `O(1)` per observation.
    pub fn drain_front(&mut self, n: usize) {
        let n = n.min(self.len());
        self.features.drain(..n);
        self.targets.drain(..n);
    }

    /// Returns the last `n` observations (or all of them when fewer exist).
    pub fn tail(&self, n: usize) -> Dataset {
        let start = self.len().saturating_sub(n);
        Dataset {
            features: self.features[start..].to_vec(),
            targets: self.targets[start..].to_vec(),
        }
    }

    /// Copies the last `n` observations into `out`, reusing its buffers —
    /// the allocation-free variant of [`Dataset::tail`] for callers that
    /// extract a recent window on every online-learning step.
    pub fn tail_into(&self, n: usize, out: &mut Dataset) {
        let start = self.len().saturating_sub(n);
        let rows = &self.features[start..];
        out.features.truncate(rows.len());
        let reused = out.features.len();
        for (dst, src) in out.features.iter_mut().zip(rows) {
            dst.clone_from(src);
        }
        for src in &rows[reused..] {
            out.features.push(src.clone());
        }
        out.targets.clear();
        out.targets.extend_from_slice(&self.targets[start..]);
    }

    /// Splits into `(train, test)` where the first `train_len` observations go
    /// into the training part. Order is preserved (important for online
    /// replay-style evaluation).
    pub fn split_at(&self, train_len: usize) -> (Dataset, Dataset) {
        let train_len = train_len.min(self.len());
        (
            Dataset {
                features: self.features[..train_len].to_vec(),
                targets: self.targets[..train_len].to_vec(),
            },
            Dataset {
                features: self.features[train_len..].to_vec(),
                targets: self.targets[train_len..].to_vec(),
            },
        )
    }

    /// Iterates over `(features, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> {
        self.features
            .iter()
            .map(Vec::as_slice)
            .zip(self.targets.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_and_accessors() {
        let ds = Dataset::from_parts(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![10.0, 20.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.get(1), (&[3.0, 4.0][..], 20.0));
        assert!(!ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "same number of rows")]
    fn from_parts_rejects_length_mismatch() {
        let _ = Dataset::from_parts(vec![vec![1.0]], vec![1.0, 2.0]);
    }

    #[test]
    fn from_univariate_wraps_each_value() {
        let ds = Dataset::from_univariate(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(ds.n_features(), 1);
        assert_eq!(ds.features()[1], vec![2.0]);
    }

    #[test]
    fn push_appends_and_checks_width() {
        let mut ds = Dataset::new();
        ds.push(vec![1.0, 2.0], 5.0);
        ds.push(vec![3.0, 4.0], 6.0);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn push_rejects_inconsistent_width() {
        let mut ds = Dataset::new();
        ds.push(vec![1.0, 2.0], 5.0);
        ds.push(vec![3.0], 6.0);
    }

    #[test]
    fn design_matrix_with_intercept_prepends_ones() {
        let ds = Dataset::from_univariate(&[2.0, 3.0], &[1.0, 1.0]);
        let m = ds.design_matrix_with_intercept();
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 3.0);
    }

    #[test]
    fn subset_selects_indices() {
        let ds = Dataset::from_univariate(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.targets(), &[30.0, 10.0]);
    }

    #[test]
    fn tail_returns_last_n() {
        let ds = Dataset::from_univariate(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
        let t = ds.tail(2);
        assert_eq!(t.targets(), &[20.0, 30.0]);
        let all = ds.tail(10);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn drain_front_drops_oldest_and_preserves_order() {
        let mut ds = Dataset::from_univariate(&[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0, 30.0, 40.0]);
        ds.drain_front(2);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.targets(), &[30.0, 40.0]);
        assert_eq!(ds.features()[0], vec![3.0]);
        ds.drain_front(10);
        assert!(ds.is_empty());
    }

    #[test]
    fn split_at_preserves_order() {
        let ds = Dataset::from_univariate(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]);
        let (train, test) = ds.split_at(3);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(test.targets()[0], 4.0);
    }
}
