//! The [`Regressor`] trait implemented by every model class in the Sizey pool.

use crate::dataset::Dataset;
use std::fmt;

/// Errors produced while fitting or predicting with a regressor.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The model has not been fitted yet.
    NotFitted,
    /// The training data is empty or otherwise unusable.
    InvalidTrainingData(String),
    /// The query point has the wrong number of features.
    FeatureMismatch {
        /// Number of features the model was trained with.
        expected: usize,
        /// Number of features in the query.
        got: usize,
    },
    /// A numerical problem occurred (singular system, divergence, ...).
    Numerical(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotFitted => write!(f, "model has not been fitted"),
            ModelError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            ModelError::FeatureMismatch { expected, got } => {
                write!(f, "feature mismatch: expected {expected}, got {got}")
            }
            ModelError::Numerical(msg) => write!(f, "numerical error: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Identifier for the model classes Sizey uses (Fig. 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelClass {
    /// Ordinary least squares / ridge linear regression.
    Linear,
    /// k-nearest-neighbour regression.
    Knn,
    /// Multi-layer perceptron regression.
    Mlp,
    /// Random-forest regression.
    RandomForest,
}

impl ModelClass {
    /// All model classes in the default Sizey pool.
    pub const ALL: [ModelClass; 4] = [
        ModelClass::Linear,
        ModelClass::Knn,
        ModelClass::Mlp,
        ModelClass::RandomForest,
    ];

    /// A short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelClass::Linear => "linear-regression",
            ModelClass::Knn => "knn-regression",
            ModelClass::Mlp => "mlp-regression",
            ModelClass::RandomForest => "random-forest-regression",
        }
    }
}

impl fmt::Display for ModelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Reusable buffers for [`Regressor::predict_with`]: every intermediate
/// vector a model prediction needs, owned by the caller and recycled across
/// calls so the steady-state predict path performs zero heap allocations.
///
/// The fields are per-model working sets, not a shared pool — a single
/// prediction may use several of them at once (e.g. the MLP borrows
/// `scaled_query` and both activation buffers simultaneously), so they must
/// stay distinct.
#[derive(Debug, Default, Clone)]
pub struct PredictScratch {
    /// Scaled copy of the query row (KNN and MLP feature scalers).
    pub scaled_query: Vec<f64>,
    /// `(row index, squared distance)` table for KNN neighbour selection.
    pub dists: Vec<(usize, f64)>,
    /// MLP forward-pass activation ping buffer.
    pub act_a: Vec<f64>,
    /// MLP forward-pass activation pong buffer.
    pub act_b: Vec<f64>,
    /// Augmented regression row (`[1, features…]`) for the linear model.
    pub row: Vec<f64>,
}

/// A trainable regression model mapping a feature vector to a scalar target.
///
/// All Sizey pool members implement this trait. The contract mirrors the
/// paper's online-learning loop:
///
/// * [`Regressor::fit`] performs a full (re)training on the given dataset.
/// * [`Regressor::partial_fit`] performs a lightweight incremental update
///   with newly observed task executions; implementations fall back to a full
///   refit when they cannot update incrementally.
/// * [`Regressor::predict`] produces a point estimate for one query.
pub trait Regressor: Send + Sync {
    /// Fully (re)trains the model on `data`.
    fn fit(&mut self, data: &Dataset) -> Result<(), ModelError>;

    /// Incrementally updates the model with additional observations.
    ///
    /// The default implementation is a full refit on the new data only, which
    /// is rarely what a caller wants; every pool model overrides this.
    fn partial_fit(&mut self, data: &Dataset) -> Result<(), ModelError> {
        self.fit(data)
    }

    /// Predicts the target for a single feature vector.
    fn predict(&self, features: &[f64]) -> Result<f64, ModelError>;

    /// Predicts the target for a single feature vector using caller-owned
    /// scratch buffers — the allocation-free twin of [`Regressor::predict`].
    ///
    /// Implementations that need intermediate vectors (scaled queries,
    /// distance tables, layer activations) borrow them from `scratch`
    /// instead of allocating, and must return bit-identical results to
    /// `predict` (asserted by per-model equivalence tests and the dynamic
    /// `cargo xtask lint --dynamic` harness). The default delegates to
    /// `predict` for models whose prediction is naturally allocation-free.
    fn predict_with(
        &self,
        features: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<f64, ModelError> {
        let _ = scratch;
        self.predict(features)
    }

    /// Predicts the targets for a batch of feature vectors.
    fn predict_batch(&self, features: &[Vec<f64>]) -> Result<Vec<f64>, ModelError> {
        features.iter().map(|f| self.predict(f)).collect()
    }

    /// True once the model has been fitted and can predict.
    fn is_fitted(&self) -> bool;

    /// The model class this regressor belongs to.
    fn class(&self) -> ModelClass;

    /// A short human readable name (defaults to the class name).
    fn name(&self) -> String {
        self.class().name().to_string()
    }

    /// Creates a boxed clone of this regressor (trait objects cannot use
    /// `Clone` directly).
    fn clone_box(&self) -> Box<dyn Regressor>;
}

impl Clone for Box<dyn Regressor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Validates a dataset before fitting: it must be non-empty, contain at least
/// one feature column and only finite values.
pub fn validate_training_data(data: &Dataset) -> Result<(), ModelError> {
    if data.is_empty() {
        return Err(ModelError::InvalidTrainingData(
            "dataset is empty".to_string(),
        ));
    }
    if data.n_features() == 0 {
        return Err(ModelError::InvalidTrainingData(
            "dataset has no feature columns".to_string(),
        ));
    }
    for (features, target) in data.iter() {
        if !target.is_finite() {
            return Err(ModelError::InvalidTrainingData(format!(
                "non-finite target value {target}"
            )));
        }
        if features.iter().any(|f| !f.is_finite()) {
            return Err(ModelError::InvalidTrainingData(
                "non-finite feature value".to_string(),
            ));
        }
    }
    Ok(())
}

/// Validates a query point against the expected feature width.
pub fn validate_query(features: &[f64], expected: usize) -> Result<(), ModelError> {
    if features.len() != expected {
        return Err(ModelError::FeatureMismatch {
            expected,
            got: features.len(),
        });
    }
    if features.iter().any(|f| !f.is_finite()) {
        return Err(ModelError::Numerical(
            "non-finite query feature".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_class_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            ModelClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), ModelClass::ALL.len());
    }

    #[test]
    fn validate_training_data_rejects_empty() {
        let ds = Dataset::new();
        assert!(matches!(
            validate_training_data(&ds),
            Err(ModelError::InvalidTrainingData(_))
        ));
    }

    #[test]
    fn validate_training_data_rejects_nan_target() {
        let ds = Dataset::from_univariate(&[1.0], &[f64::NAN]);
        assert!(validate_training_data(&ds).is_err());
    }

    #[test]
    fn validate_training_data_rejects_infinite_feature() {
        let ds = Dataset::from_univariate(&[f64::INFINITY], &[1.0]);
        assert!(validate_training_data(&ds).is_err());
    }

    #[test]
    fn validate_training_data_accepts_clean_data() {
        let ds = Dataset::from_univariate(&[1.0, 2.0], &[3.0, 4.0]);
        assert!(validate_training_data(&ds).is_ok());
    }

    #[test]
    fn validate_query_checks_width_and_finiteness() {
        assert!(validate_query(&[1.0, 2.0], 2).is_ok());
        assert!(matches!(
            validate_query(&[1.0], 2),
            Err(ModelError::FeatureMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(validate_query(&[f64::NAN, 1.0], 2).is_err());
    }

    #[test]
    fn model_error_display_is_informative() {
        let e = ModelError::FeatureMismatch {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(ModelError::NotFitted
            .to_string()
            .contains("not been fitted"));
    }
}
