//! Dynamic allocation gate for the predict hot path, run by
//! `cargo xtask lint --dynamic`.
//!
//! The static lint rules prove the hot path never panics and never iterates
//! a hash map; this harness proves the stronger *dynamic* property the
//! PR 8 refactor establishes: once a serving thread is warm, a
//! `SizeyPredictor::predict` call performs **zero heap allocations** —
//! first-attempt predictions (model pool, RAQ scores, gating, offset
//! selection), retry escalations and unknown-task preset fallbacks alike.
//!
//! The measurement instrument is a counting `#[global_allocator]`
//! (allocation *count*, not bytes: a single stray `Vec` or `String` of any
//! size is a failure). Everything runs inside one `#[test]` so no parallel
//! test thread can pollute the counter, and the harness deliberately runs
//! in the default debug profile — the release optimiser can elide dead
//! allocations, which would make the gate vacuous.

use sizey_core::{AsyncSizey, ServiceConfig, SizeyConfig, SizeyPredictor};
use sizey_provenance::{MachineId, TaskOutcome, TaskRecord, TaskTypeId};
use sizey_sim::{AttemptContext, MemoryPredictor, TaskSubmission};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A passthrough [`System`] allocator that counts every allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a pure passthrough to the [`System`] allocator — layout contracts
// are forwarded untouched, so the GlobalAlloc invariants hold exactly as
// they do for `System` itself; the atomic counter never allocates and
// cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.alloc_zeroed` with the caller's layout.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: delegates to `System.dealloc` with the caller's pointer and
    // layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to `System.realloc` with the caller's pointer,
    // layout and new size. A grow-in-place still hands out fresh capacity,
    // so it counts as an allocation.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn submission(sequence: u64, input: f64) -> TaskSubmission {
    TaskSubmission {
        workflow: "wf".into(),
        task_type: TaskTypeId::new("align"),
        machine: MachineId::new("node-a"),
        sequence,
        input_bytes: input,
        preset_memory_bytes: 20e9,
    }
}

fn success(sequence: u64, input: f64, peak: f64) -> TaskRecord {
    TaskRecord {
        workflow: "wf".into(),
        task_type: TaskTypeId::new("align"),
        machine: MachineId::new("node-a"),
        sequence,
        input_bytes: input,
        peak_memory_bytes: peak,
        allocated_memory_bytes: peak * 1.5,
        runtime_seconds: 60.0,
        concurrent_tasks: 1,
        queue_delay_seconds: 0.0,
        outcome: TaskOutcome::Succeeded,
    }
}

/// Allocations performed by `f`, measured on the global counter. The
/// closure's return value is kept alive past the measurement so its drop
/// cannot be optimised into the window.
fn allocations_during<T>(f: impl FnOnce() -> T) -> (usize, T) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (after - before, out)
}

#[test]
fn steady_state_predict_performs_zero_heap_allocations() {
    let mut predictor = SizeyPredictor::with_defaults();
    // Train one (task type, machine) pool far enough that every model class
    // is fitted, the offset histories are populated and the cold-start
    // guard has disengaged.
    for i in 1..=30u64 {
        let input = (i % 10 + 1) as f64 * 1e9;
        predictor.observe(&success(i, input, 2.0 * input + 1e9));
    }

    // Warm-up: the first predictions on this thread initialise the
    // thread-local scratch, grow its buffers to the workload's widest shape
    // and run the linear model's one lazy normal-equation solve (observe
    // marks the coefficients stale; the next predict re-solves, once).
    let mut tasks: Vec<TaskSubmission> = (0..8u64)
        .map(|i| submission(100 + i, (i % 10 + 1) as f64 * 1e9 + 0.5e9))
        .collect();
    let unknown = TaskSubmission {
        task_type: TaskTypeId::new("never-observed"),
        ..submission(999, 3e9)
    };
    for task in &tasks {
        let p = predictor.predict(task, AttemptContext::first());
        assert!(p.raw_estimate_bytes.is_some(), "pool must be warm");
    }
    let _ = predictor.predict(&tasks[0], AttemptContext::retry(1, 20e9));
    let _ = predictor.predict(&unknown, AttemptContext::first());

    // The gate: steady-state first-attempt predictions allocate nothing —
    // not per call, not across varying inputs.
    let (allocs, last) = allocations_during(|| {
        let mut last = None;
        for round in 0..50u64 {
            for task in &mut tasks {
                task.input_bytes += round as f64 * 1e7;
                last = Some(predictor.predict(task, AttemptContext::first()));
            }
        }
        last
    });
    let last = last.expect("predictions ran");
    assert!(
        last.raw_estimate_bytes.is_some(),
        "gate must exercise the model path"
    );
    assert_eq!(
        allocs, 0,
        "steady-state predict must not touch the heap ({allocs} allocations in 400 calls)"
    );

    // Retry escalation and the unknown-task preset fallback are hot-path
    // branches too.
    let (allocs, _) = allocations_during(|| {
        for attempt in 1..=4u32 {
            let _ = predictor.predict(&tasks[0], AttemptContext::retry(attempt, 20e9));
        }
        for _ in 0..100 {
            let _ = predictor.predict(&unknown, AttemptContext::first());
        }
    });
    assert_eq!(
        allocs, 0,
        "retry and preset-fallback predictions must not touch the heap"
    );

    // The async serving front-end's snapshot path is the same predict hot
    // path behind a wait-free snapshot load: once the service is quiescent
    // (flushed, workers parked) and this thread is warm, a snapshot predict
    // must be allocation-free too — the load is two atomic bumps and an
    // `Arc` refcount, never a clone of model state.
    let service = AsyncSizey::sizey(SizeyConfig::default(), 2, ServiceConfig::default());
    for i in 1..=30u64 {
        let input = (i % 10 + 1) as f64 * 1e9;
        assert!(service.observe(&success(i, input, 2.0 * input + 1e9)));
    }
    service.flush();
    // Warm-up: scratch growth and the published snapshot's lazy re-solve.
    for task in &tasks {
        let p = service.predict(task, AttemptContext::first());
        assert!(p.raw_estimate_bytes.is_some(), "snapshot must be warm");
    }
    let _ = service.predict(&unknown, AttemptContext::first());
    let (allocs, _) = allocations_during(|| {
        for _ in 0..100 {
            for task in &tasks {
                let _ = service.predict(task, AttemptContext::first());
            }
            let _ = service.predict(&unknown, AttemptContext::first());
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state snapshot predicts must not touch the heap ({allocs} allocations in 900 calls)"
    );
    drop(service);

    // Sanity check on the instrument itself: the counter must actually see
    // heap traffic, or the assertions above prove nothing.
    let (allocs, v) = allocations_during(|| vec![1u8, 2, 3]);
    assert!(allocs >= 1, "counting allocator failed to observe a Vec");
    drop(v);
}
