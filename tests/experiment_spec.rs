//! Integration tests for the spec-driven experiment entry point: the
//! `ExperimentSpec` path (TOML or builder) must reproduce `run_sweep` on the
//! equivalent `SweepSpec` bit for bit, and its checkpoints must restore
//! bit-identically — the contract the `experiment` binary relies on.

use sizey_suite::prelude::*;

const SMOKE_TOML: &str = r#"
name = "parity"
scale = 0.02
seeds = [3, 4]
profiles = ["iwd"]
policies = ["first-fit", "best-fit"]

[[method]]
kind = "sizey"

[[method]]
kind = "preset"
"#;

fn assert_cells_equal(a: &[SweepCell], b: &[SweepCell]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.workflow, y.workflow);
        assert_eq!(x.method, y.method);
        assert_eq!(x.seed, y.seed);
        assert_eq!(x.policy, y.policy);
        assert_eq!(x.wastage_gbh, y.wastage_gbh, "{}/{}", x.workflow, x.seed);
        assert_eq!(x.failures, y.failures);
        assert_eq!(x.makespan_hours, y.makespan_hours);
        assert_eq!(x.unfinished, y.unfinished);
    }
}

/// Acceptance criterion: the spec-driven runner reproduces `run_sweep` for
/// an equivalent spec.
#[test]
fn experiment_spec_reproduces_run_sweep() {
    let spec = ExperimentSpec::from_toml(SMOKE_TOML).unwrap();
    let from_spec = spec.run().unwrap();

    let sweep = SweepSpec {
        workflows: vec!["iwd".to_string()],
        methods: vec![MethodSpec::sizey_defaults(), MethodSpec::Preset],
        seeds: vec![3, 4],
        policies: vec![SchedulePolicy::FirstFit, SchedulePolicy::BestFit],
        scale: 0.02,
        drift: None,
        sim: SimulationConfig::default(),
    };
    let from_sweep = run_sweep(&sweep);
    assert_cells_equal(&from_spec, &from_sweep);

    // The builder route produces the same spec, hence the same cells.
    let built = Experiment::builder()
        .name("parity")
        .method(MethodSpec::sizey_defaults())
        .method(MethodSpec::Preset)
        .profile("iwd")
        .seeds([3, 4])
        .policies([SchedulePolicy::FirstFit, SchedulePolicy::BestFit])
        .scale(0.02)
        .build()
        .unwrap();
    assert_eq!(built.sweep_spec().methods, spec.methods);
    assert_cells_equal(&built.run().unwrap(), &from_spec);
}

/// The checkpointed variant returns the same cells plus states that restore
/// bit-identically through the registry — what the `experiment` binary
/// writes to its checkpoint directory.
#[test]
fn experiment_checkpoints_restore_bit_identically() {
    let spec = ExperimentSpec::from_toml(SMOKE_TOML).unwrap();
    let plain = spec.run().unwrap();
    let checkpointed = spec.run_checkpointed().unwrap();
    let cells: Vec<SweepCell> = checkpointed.iter().map(|(c, _)| c.clone()).collect();
    assert_cells_equal(&cells, &plain);
    for (cell, state) in &checkpointed {
        // Codec + registry restore round trip, exactly as the binary does.
        let text = state.to_state_string();
        let parsed = PredictorState::from_state_string(&text).unwrap();
        assert_eq!(&parsed, state);
        let restored = cell.method.restore(&parsed).unwrap();
        assert_eq!(
            restored.snapshot(),
            *state,
            "{} checkpoint did not restore bit-identically",
            cell.method.id()
        );
    }
}

/// The aggregate table over an experiment's cells is deterministically
/// ordered (method figure order, then policy order) — sweep tables diff
/// cleanly across runs.
#[test]
fn experiment_aggregate_rows_are_ordered() {
    let spec = ExperimentSpec::from_toml(SMOKE_TOML).unwrap();
    let rows = aggregate_sweep(&spec.run().unwrap());
    let order: Vec<(&str, &str)> = rows
        .iter()
        .map(|r| (r.method.name(), r.policy.name()))
        .collect();
    assert_eq!(
        order,
        vec![
            ("Sizey", "first-fit"),
            ("Sizey", "best-fit"),
            ("Workflow-Presets", "first-fit"),
            ("Workflow-Presets", "best-fit"),
        ]
    );
}

/// The four checked-in fault/drift scenario specs stay loadable, and each
/// actually exercises the axis it is named for.
#[test]
fn checked_in_scenario_specs_parse() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/bench/specs");
    let drift = ExperimentSpec::from_toml_file(format!("{dir}/drift.toml")).unwrap();
    assert!(drift.drift.is_some(), "drift.toml carries a [drift] table");
    assert_eq!(
        ExperimentSpec::from_toml(&drift.to_toml()).unwrap(),
        drift,
        "drift spec round-trips"
    );
    for name in ["crash_storm", "spot_pool", "diurnal"] {
        let spec = ExperimentSpec::from_toml_file(format!("{dir}/{name}.toml")).unwrap();
        let faults = spec
            .sim
            .faults
            .as_ref()
            .unwrap_or_else(|| panic!("{name}.toml injects faults"));
        assert!(!faults.is_empty(), "{name}.toml has a non-empty fault plan");
        assert_eq!(
            ExperimentSpec::from_toml(&spec.to_toml()).unwrap(),
            spec,
            "{name} spec round-trips"
        );
    }
}

/// The checked-in CI smoke spec stays loadable and small.
#[test]
fn checked_in_smoke_spec_parses() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/bench/specs/smoke.toml");
    let spec = ExperimentSpec::from_toml_file(path).unwrap();
    assert_eq!(spec.name, "smoke");
    assert_eq!(spec.methods.len(), 2);
    assert_eq!(spec.profiles, vec!["iwd".to_string()]);
    assert_eq!(spec.seeds.len(), 2);
    assert_eq!(spec.len(), 4);
    // Round-trip: the spec the `experiment` bin stamps into its checkpoint
    // directory reparses to the same spec.
    assert_eq!(ExperimentSpec::from_toml(&spec.to_toml()).unwrap(), spec);
}
