//! Bit-equality pin for the mechanical fixes the `cargo xtask lint` rules
//! forced through the tree (PR 8): `partial_cmp` → `total_cmp` conversions,
//! the `HashMap` → `BTreeMap` migration of Sizey's pool index, and the
//! allocation-free predict-path rework (scratch-buffer gating/offset/model
//! kernels).
//!
//! The other equivalence suites (`perf_equivalence`, `streaming_equivalence`,
//! `concurrent_equivalence`) compare two *current* engines against each
//! other, so a numeric change that hits both sides equally slips through
//! them. This suite pins replay output across **commits**: the golden
//! digests below were computed on the tree immediately before the lint
//! fixes landed (`GOLDEN_PRINT=1 cargo test --release --test
//! lint_fix_equivalence -- --nocapture` prints the current values), so any
//! bit-level drift introduced by a "mechanical" migration fails loudly.
//!
//! The digest is FNV-1a over the exact bit patterns (`f64::to_bits`) of
//! every attempt event and aggregate the scenarios produce — if a single
//! allocation, estimate, queue delay or model-selection string changes
//! anywhere, the digest changes.

use sizey_core::select_dynamic_offset;
use sizey_suite::prelude::*;

/// FNV-1a, 64 bit: simple, dependency-free, stable across platforms.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf29ce484222325)
    }

    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bytes(&mut self, s: &[u8]) {
        for &byte in s {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.u64(1);
                self.f64(v);
            }
            None => self.u64(0),
        }
    }
}

fn digest_report(d: &mut Digest, report: &ReplayReport) {
    d.bytes(report.method.as_bytes());
    d.bytes(report.workflow.as_bytes());
    d.u64(report.instances as u64);
    d.u64(report.unfinished_instances as u64);
    d.f64(report.makespan_seconds);
    d.u64(report.events.len() as u64);
    for e in &report.events {
        d.bytes(e.task_type.as_str().as_bytes());
        d.u64(e.sequence);
        d.u64(e.attempt as u64);
        d.f64(e.allocated_bytes);
        d.f64(e.true_peak_bytes);
        d.f64(e.duration_seconds);
        d.u64(e.success as u64);
        d.f64(e.wastage_gbh);
        d.opt_f64(e.raw_estimate_bytes);
        match &e.selected_model {
            Some(m) => {
                d.u64(1);
                d.bytes(m.as_bytes());
            }
            None => d.u64(0),
        }
        d.f64(e.submit_time_seconds);
        d.f64(e.queue_delay_seconds);
    }
}

/// Compares a freshly computed digest against its golden value, or prints it
/// when `GOLDEN_PRINT` is set (used to capture the pre-change goldens).
fn check(name: &str, digest: Digest, golden: u64) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN {name} = 0x{:016x}", digest.0);
        return;
    }
    assert_eq!(
        digest.0, golden,
        "{name}: replay output diverged from the pre-lint-fix tree \
         (got 0x{:016x}, expected 0x{golden:016x})",
        digest.0
    );
}

/// Single-tenant serial replays across two workflow profiles: exercises the
/// full Sizey predict path (gating, RAQ, offsets, all four model classes)
/// plus the `total_cmp` conversions in the accounting sorts.
#[test]
fn serial_replay_output_is_pinned() {
    let mut d = Digest::new();
    for (name, scale, seed) in [("iwd", 0.06, 17), ("chipseq", 0.05, 3)] {
        let spec = sizey_workflows::workflow_by_name(name).expect("known workflow");
        let instances = generate_workflow(&spec, &GeneratorConfig::scaled(scale, seed));
        let sim = SimulationConfig::default();
        let mut sizey = SizeyPredictor::with_defaults();
        let report = replay_workflow(&spec.name, &instances, &mut sizey, &sim);
        digest_report(&mut d, &report);
        // The model-selection shares run through the descending share sort
        // (one of the partial_cmp → total_cmp conversions).
        for (model, share) in report.model_selection_share() {
            d.bytes(model.as_bytes());
            d.f64(share);
        }
        // Offset-selection diagnostics pin the dynamic-offset rework.
        let mut selections: Vec<(&'static str, usize)> = sizey
            .offset_selections()
            .into_iter()
            .map(|(s, n)| (s.name(), n))
            .collect();
        selections.sort();
        for (strategy, count) in selections {
            d.bytes(strategy.as_bytes());
            d.u64(count as u64);
        }
    }
    check("serial_replay", d, GOLDEN_SERIAL_REPLAY);
}

/// Multi-tenant event-driven scheduling under BestFit and Backfill:
/// exercises the event-heap ordering (`total_cmp` in `queue.rs`), the
/// scheduler's retry ledger, and the BTreeMap pool-index migration under
/// interleaved multi-pool traffic.
#[test]
fn scheduled_multi_tenant_output_is_pinned() {
    let mut d = Digest::new();
    for policy in [
        SchedulePolicy::FirstFit,
        SchedulePolicy::BestFit,
        SchedulePolicy::Backfill,
    ] {
        let config = SimulationConfig::default().with_policy(policy);
        let tenants: Vec<WorkflowTenant> = [("mag", 0.03, 9u64, 0.0), ("rnaseq", 0.04, 5, 120.0)]
            .into_iter()
            .map(|(name, scale, seed, offset)| {
                let spec = sizey_workflows::workflow_by_name(name).expect("known workflow");
                let instances = generate_workflow(&spec, &GeneratorConfig::scaled(scale, seed));
                WorkflowTenant::new(
                    spec.name.clone(),
                    instances,
                    Box::new(SizeyPredictor::with_defaults()),
                )
                .with_arrival_offset(offset)
            })
            .collect();
        let multi = schedule_workflows(tenants, &config);
        d.f64(multi.makespan_seconds);
        d.u64(multi.stats.dispatched_attempts as u64);
        d.f64(multi.stats.total_queue_delay_seconds);
        d.f64(multi.stats.max_queue_delay_seconds);
        d.u64(multi.stats.peak_running_tasks as u64);
        d.f64(multi.stats.peak_allocated_bytes);
        d.u64(multi.stats.peak_inflight_retries as u64);
        d.u64(multi.stats.leaked_inflight_retries as u64);
        for report in &multi.reports {
            digest_report(&mut d, report);
        }
    }
    check("scheduled_multi_tenant", d, GOLDEN_SCHEDULED);
}

/// Kernel-level pin of the reworked predict-path pieces: offset strategies
/// and their dynamic selection, gating, percentile/median, and the
/// occupancy-model heap ordering — on synthetic fixtures independent of the
/// replay engines.
#[test]
fn predict_path_kernels_are_pinned() {
    let mut d = Digest::new();

    // Offset strategies over a history with under- and over-predictions of
    // varying magnitude (windows shorter and longer than the median buffer).
    let mut history: Vec<(f64, f64)> = Vec::new();
    let mut x = 1.0_f64;
    for i in 0..60 {
        x = (x * 1.3 + i as f64).rem_euclid(97.0);
        let pred = 1e9 + x * 1e8;
        let actual = pred + ((i % 7) as f64 - 3.0) * 2.5e8;
        history.push((pred, actual.max(1e6)));
        let window = &history[history.len().saturating_sub(40)..];
        for strategy in OffsetStrategy::ALL {
            d.f64(strategy.offset(window));
        }
        let (strategy, offset) = select_dynamic_offset(window);
        d.bytes(strategy.name().as_bytes());
        d.f64(offset);
    }

    // The occupancy replay engine (RunningTask heap ordering).
    let spec = sizey_workflows::workflow_by_name("eager").expect("known workflow");
    let instances = generate_workflow(&spec, &GeneratorConfig::scaled(0.05, 11));
    let mut sizey = SizeyPredictor::with_defaults();
    let occupancy = replay_workflow_occupancy(
        &spec.name,
        &instances,
        &mut sizey,
        &SimulationConfig::unbounded(),
    );
    digest_report(&mut d, &occupancy);

    check("predict_path_kernels", d, GOLDEN_KERNELS);
}

// Golden digests captured on the tree immediately before the PR-8 lint
// fixes (see module docs for the capture command).
const GOLDEN_SERIAL_REPLAY: u64 = 0xfbaee312f934df2d;
const GOLDEN_SCHEDULED: u64 = 0x861adc7d669c1355;
const GOLDEN_KERNELS: u64 = 0xfebf2add138eba3e;
