//! Configuration of the Sizey predictor.

use crate::offset::OffsetStrategy;
use sizey_ml::model::ModelClass;

/// How the gating mechanism combines the pool's individual predictions
/// (Section II-D of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GatingStrategy {
    /// Use only the model with the highest RAQ score.
    Argmax,
    /// Softmax-weight all models by `exp(beta * RAQ)` (Eq. 4).
    Interpolation {
        /// Sharpness of the softmax; larger values approach Argmax.
        beta: f64,
    },
}

impl Default for GatingStrategy {
    fn default() -> Self {
        // The paper's experiments use the Interpolation strategy.
        GatingStrategy::Interpolation { beta: 8.0 }
    }
}

/// How the safety offset added on top of the aggregated prediction is chosen
/// (Section II-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OffsetMode {
    /// Dynamically pick, per task type, the offset strategy that would have
    /// caused the least wastage on the history (the paper's default).
    #[default]
    Dynamic,
    /// Always use one fixed strategy.
    Fixed(OffsetStrategy),
    /// Do not add any offset (used for the raw-error analysis of Fig. 12).
    None,
}

/// How models are updated when new task measurements arrive (Section II-B /
/// Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineMode {
    /// Fully retrain every model (optionally with hyper-parameter
    /// optimisation) after every completed task.
    FullRetrain,
    /// Perform lightweight incremental updates, with a full retrain every
    /// `retrain_interval` completions (0 = never).
    Incremental {
        /// Completions between two full retrains (0 = never retrain fully).
        /// With deferred retrains enabled (see
        /// [`SizeyPredictor::set_deferred_retrains`](crate::SizeyPredictor::set_deferred_retrains))
        /// the interval still governs *when* a retrain is staged, but the
        /// training itself runs off the observe hot path.
        retrain_interval: usize,
        /// Completions between two warm-start MLP updates on the light
        /// (non-retrain) path. The MLP is by far the most expensive member to
        /// nudge per observation; updating it every `mlp_update_interval`-th
        /// completion (1 = every completion, 0 = only at full retrains)
        /// bounds the per-observe cost while the cheap members still update
        /// every time.
        mlp_update_interval: usize,
    },
}

impl OnlineMode {
    /// Incremental mode with the given full-retrain interval and the default
    /// MLP update cadence.
    pub fn incremental(retrain_interval: usize) -> Self {
        OnlineMode::Incremental {
            retrain_interval,
            mlp_update_interval: 1,
        }
    }
}

impl Default for OnlineMode {
    fn default() -> Self {
        OnlineMode::incremental(25)
    }
}

/// How the predictor responds to concept drift in a task type's memory
/// behaviour (a workload update shifting peaks mid-run).
///
/// The detector watches, per model pool, a rolling window of recent
/// observations and flags each as *under-predicted* (the pool's raw
/// aggregate estimate fell below the actual peak, or the attempt ran out of
/// memory). When the under-prediction rate over a full window reaches the
/// threshold, the pool discards its stale pre-drift history (optionally) and
/// forces a full retrain, then the window restarts. Detection state is a
/// deterministic function of the observation stream, so snapshot/restore by
/// journal replay reconstructs it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DriftPolicy {
    /// No drift detection (the paper's setup). Bit-identical to a detector
    /// that never fires.
    #[default]
    Off,
    /// Rolling under-prediction-rate detector with a triggered full retrain.
    Retrain {
        /// Number of recent observations the under-prediction rate is
        /// measured over (clamped to at least 1). The detector only fires on
        /// a full window, so it cannot trip during the first few
        /// observations after a reset.
        window: usize,
        /// Under-prediction rate in `[0, 1]` at or above which the detector
        /// fires. Values above 1 make the detector unreachable (useful for
        /// pinning the off-equivalence).
        threshold: f64,
        /// On trigger, keep only this many most recent successful
        /// observations as training data before retraining (0 keeps
        /// everything). Trimming is what lets the retrained models track the
        /// *new* regime instead of averaging it with the stale one.
        keep_recent: usize,
    },
}

impl DriftPolicy {
    /// A reasonable default detector: fires when 60 % of the last 20
    /// observations were under-predicted, retraining on the 30 most recent
    /// observations.
    pub fn retrain_defaults() -> Self {
        DriftPolicy::Retrain {
            window: 20,
            threshold: 0.6,
            keep_recent: 30,
        }
    }
}

/// Complete configuration of the Sizey predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeyConfig {
    /// The RAQ weighting hyper-parameter α ∈ [0, 1] (Eq. 3): 0 favours
    /// accurate models, 1 punishes large outlying estimates. The paper's
    /// experiments use 0.0.
    pub alpha: f64,
    /// Gating strategy combining the pool outputs.
    pub gating: GatingStrategy,
    /// Offset strategy protecting against under-prediction.
    pub offset: OffsetMode,
    /// Online learning mode.
    pub online: OnlineMode,
    /// Model classes in the pool (defaults to all four of Fig. 5).
    pub model_classes: Vec<ModelClass>,
    /// Minimum number of successful observations of a task type before the
    /// models are used; below this the user preset is allocated (the paper's
    /// behaviour for unknown task types).
    pub min_history: usize,
    /// While a task type has fewer successful observations than this, the
    /// allocation is floored at the largest peak observed so far. This guards
    /// the cold-start phase, where the offset histories are still too short
    /// to protect against under-prediction; once enough data exists the
    /// models and offsets take over completely.
    pub cold_start_observations: usize,
    /// Whether a full retrain runs grid-search hyper-parameter optimisation.
    pub hyperparameter_optimization: bool,
    /// Seed for the stochastic pool members (MLP, random forest).
    pub seed: u64,
    /// Memory capacity of the largest cluster node, when known. Failure
    /// handling saturates its max-then-double escalation at this ceiling
    /// (via [`failure_allocation_clamped`](crate::failure_allocation_clamped))
    /// instead of requesting unschedulable allocations; `None` leaves the
    /// clamp to the replay engine.
    pub node_capacity_bytes: Option<f64>,
    /// Opt-in bounded history for million-task streaming replays. When set,
    /// each pool keeps at most this many recent successful observations as
    /// training data (trimmed amortised, with a full retrain on the trimmed
    /// window so models never depend on dropped rows), the prequential and
    /// offset histories are trimmed to their fixed read windows, and the
    /// predictor's provenance store and training-time telemetry are bounded
    /// too — total predictor memory becomes `O(pools × window)` instead of
    /// `O(observations)`.
    ///
    /// `None` (the default) retains everything and reproduces the paper
    /// setup exactly. **Trade-off:** a bounded predictor's event-sourced
    /// snapshot only contains the retained journal suffix, so the
    /// full-journal restore contract requires the unbounded default (or an
    /// externally maintained
    /// [`CompactedCheckpoint`](sizey_sim::CompactedCheckpoint) capturing the
    /// stream from the start).
    pub history_window: Option<usize>,
    /// Drift response: off by default (bit-identical to the paper setup);
    /// see [`DriftPolicy`].
    pub drift: DriftPolicy,
}

impl Default for SizeyConfig {
    fn default() -> Self {
        SizeyConfig {
            alpha: 0.0,
            gating: GatingStrategy::default(),
            offset: OffsetMode::default(),
            online: OnlineMode::default(),
            model_classes: ModelClass::ALL.to_vec(),
            min_history: 3,
            cold_start_observations: 10,
            hyperparameter_optimization: false,
            seed: 42,
            node_capacity_bytes: None,
            history_window: None,
            drift: DriftPolicy::Off,
        }
    }
}

impl SizeyConfig {
    /// The paper's experimental configuration: α = 0, Interpolation gating,
    /// dynamic offset, all four model classes.
    pub fn paper_defaults() -> Self {
        SizeyConfig::default()
    }

    /// Configuration for the full-retraining variant of Fig. 9 ("Sizey-Full"),
    /// including hyper-parameter optimisation.
    pub fn full_retraining() -> Self {
        SizeyConfig {
            online: OnlineMode::FullRetrain,
            hyperparameter_optimization: true,
            ..SizeyConfig::default()
        }
    }

    /// Configuration for the incremental variant of Fig. 9
    /// ("Sizey-Incremental").
    pub fn incremental() -> Self {
        SizeyConfig::default()
    }

    /// Returns a copy with a different α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with a different gating strategy.
    pub fn with_gating(mut self, gating: GatingStrategy) -> Self {
        self.gating = gating;
        self
    }

    /// Returns a copy restricted to a subset of model classes (used by the
    /// pool-composition ablation).
    pub fn with_model_classes(mut self, classes: Vec<ModelClass>) -> Self {
        self.model_classes = classes;
        self
    }

    /// Returns a copy with bounded per-pool history (see
    /// [`history_window`](SizeyConfig::history_window)). A window of 0 is
    /// clamped to 1.
    pub fn with_history_window(mut self, window: usize) -> Self {
        self.history_window = Some(window.max(1));
        self
    }

    /// Returns a copy with a different drift-response policy.
    pub fn with_drift_policy(mut self, drift: DriftPolicy) -> Self {
        self.drift = drift;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_setup() {
        let c = SizeyConfig::default();
        assert_eq!(c.alpha, 0.0);
        assert!(matches!(c.gating, GatingStrategy::Interpolation { .. }));
        assert_eq!(c.offset, OffsetMode::Dynamic);
        assert_eq!(c.model_classes.len(), 4);
        assert_eq!(c.min_history, 3);
    }

    #[test]
    fn with_alpha_clamps_to_unit_interval() {
        assert_eq!(SizeyConfig::default().with_alpha(2.0).alpha, 1.0);
        assert_eq!(SizeyConfig::default().with_alpha(-1.0).alpha, 0.0);
        assert_eq!(SizeyConfig::default().with_alpha(0.3).alpha, 0.3);
    }

    #[test]
    fn named_configurations_differ_in_online_mode() {
        assert_eq!(
            SizeyConfig::full_retraining().online,
            OnlineMode::FullRetrain
        );
        assert!(matches!(
            SizeyConfig::incremental().online,
            OnlineMode::Incremental { .. }
        ));
        assert!(SizeyConfig::full_retraining().hyperparameter_optimization);
    }

    #[test]
    fn with_model_classes_restricts_pool() {
        let c = SizeyConfig::default().with_model_classes(vec![ModelClass::Linear]);
        assert_eq!(c.model_classes, vec![ModelClass::Linear]);
    }

    #[test]
    fn drift_response_is_off_by_default() {
        assert_eq!(SizeyConfig::default().drift, DriftPolicy::Off);
        let c = SizeyConfig::default().with_drift_policy(DriftPolicy::retrain_defaults());
        assert!(matches!(
            c.drift,
            DriftPolicy::Retrain {
                window: 20,
                keep_recent: 30,
                ..
            }
        ));
    }
}
