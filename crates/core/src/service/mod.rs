//! The serving subsystem: an async request-queue front-end with lock-free
//! snapshot predicts on top of the sharded
//! [`ConcurrentPredictor`](crate::serve::ConcurrentPredictor).
//!
//! The locked [`SharedSizey`](crate::serve::SharedSizey) path couples the
//! two halves of serving: a tenant's observe holds a shard write lock while
//! models retrain, so an unlucky predict on the same shard stalls for the
//! whole retrain (the millisecond-scale observe tail in `BENCH_replay.json`
//! bleeds into the microsecond predict path). This module decouples them:
//!
//! ```text
//!            submit                       micro-batch (≤ batch_max,
//! tenants ──observe──▶ per-shard bounded ──≤ batch_window)──▶ shard worker
//!    │                 queues (admission:                        │ observe +
//!    │                 Block | Shed)                             │ deferred
//!    │                                                           │ retrain
//!    └──predict──▶ SnapshotCell per shard ◀────publish clone─────┘
//!                  (wait-free epoch-swapped reads)
//! ```
//!
//! * [`queue`] — the bounded MPSC channel each shard consumes: blocking or
//!   shedding admission, time/size-windowed batch receive, drain-on-close.
//! * [`snapshot`] — the left-right [`SnapshotCell`]:
//!   readers take the current immutable model snapshot wait-free, the
//!   (serialized) writer pays the full cost of the swap.
//! * [`server`] — [`AsyncService`] wiring the two together, with worker
//!   threads, flush barriers, graceful drain-on-shutdown and counters.
//!
//! The serving layer runs on real OS threads with real time windows — it is
//! deliberately *outside* the simulator's virtual clock. Replays stay
//! deterministic by feeding the service through [`AsyncService::flush`]
//! barriers at the points where equivalence is asserted.

use crate::sizey::SizeyPredictor;
use sizey_sim::MemoryPredictor;

pub mod queue;
pub mod server;
pub mod snapshot;

pub use queue::{BoundedQueue, SendError};
pub use server::{
    AdmissionPolicy, AsyncHandle, AsyncService, AsyncSizey, AsyncSizeyHandle, ServiceConfig,
    ServiceStats,
};
pub use snapshot::SnapshotCell;

/// What a predictor must provide to be served by [`AsyncService`]:
/// the ordinary [`MemoryPredictor`] read/learn API, deep [`Clone`] for
/// snapshot publication, and (optionally) a deferred-retrain protocol so
/// the worker can cap retrain work per micro-batch.
///
/// The retrain hooks default to no-ops, so any cloneable predictor can be
/// served; [`SizeyPredictor`] wires them to its staged-retrain machinery.
pub trait ServePredictor: MemoryPredictor + Clone + Send + Sync + 'static {
    /// Switch the predictor between inline retrains (every observe pays for
    /// its own retrains — bit-identical to serial) and staged retrains the
    /// worker drains via [`run_deferred`](ServePredictor::run_deferred).
    fn set_deferred(&mut self, _enabled: bool) {}

    /// Execute at most `cap` staged retrains and install the results.
    /// Returns how many were installed. Called by the shard worker between
    /// micro-batches, under the shard write lock — predicts are unaffected
    /// (they read published snapshots), only observes on this shard wait.
    fn run_deferred(&mut self, _cap: usize) -> usize {
        0
    }

    /// Staged retrains not yet executed — the stall backlog surfaced in
    /// [`ServiceStats::retrain_backlog`].
    fn deferred_backlog(&self) -> usize {
        0
    }
}

impl ServePredictor for SizeyPredictor {
    fn set_deferred(&mut self, enabled: bool) {
        self.set_deferred_retrains(enabled);
    }

    fn run_deferred(&mut self, cap: usize) -> usize {
        let jobs = self.drain_retrain_jobs_capped(cap);
        let mut installed = 0;
        for (key, job) in jobs {
            let trained = job.execute();
            if self.install_retrain(&key, trained) {
                installed += 1;
            }
        }
        installed
    }

    fn deferred_backlog(&self) -> usize {
        self.pending_retrains()
    }
}
