//! # sizey-ml
//!
//! From-scratch machine-learning substrate for the Sizey reproduction.
//!
//! The crate provides everything the Sizey model pool needs without external
//! ML dependencies:
//!
//! * dense matrix/vector kernels ([`matrix`]),
//! * the [`model::Regressor`] trait and the four model classes of the paper's
//!   Fig. 5 — [`linear::LinearRegression`], [`knn::KnnRegression`],
//!   [`mlp::MlpRegression`] and [`forest::RandomForestRegression`],
//! * feature/target scaling ([`scaler`]),
//! * regression metrics and summary statistics ([`metrics`]),
//! * k-fold cross validation and grid-search hyper-parameter optimisation
//!   ([`hpo`]),
//! * scoped-thread parallel helpers ([`parallel`]).
//!
//! ## Example
//!
//! ```
//! use sizey_ml::dataset::Dataset;
//! use sizey_ml::linear::LinearRegression;
//! use sizey_ml::model::Regressor;
//!
//! // Peak memory grows linearly with input size for many workflow tasks.
//! let input_gb = [1.0, 2.0, 3.0, 4.0];
//! let peak_mem_gb = [2.5, 4.5, 6.5, 8.5];
//! let data = Dataset::from_univariate(&input_gb, &peak_mem_gb);
//!
//! let mut model = LinearRegression::with_defaults();
//! model.fit(&data).unwrap();
//! let estimate = model.predict(&[5.0]).unwrap();
//! assert!((estimate - 10.5).abs() < 0.1);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod forest;
pub mod hpo;
pub mod knn;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod parallel;
pub mod scaler;
pub mod tree;

pub use dataset::Dataset;
pub use forest::{ForestConfig, RandomForestRegression};
pub use hpo::{cross_validate, grid_search, grid_search_class, GridSearchResult, ModelSpec};
pub use knn::{KnnConfig, KnnRegression, KnnWeighting};
pub use linear::{LinearConfig, LinearRegression};
pub use metrics::SummaryStats;
pub use mlp::{Activation, MlpConfig, MlpRegression};
pub use model::{ModelClass, ModelError, PredictScratch, Regressor};
pub use scaler::{Scaler, ScalerKind, TargetScaler};
pub use tree::{RegressionTree, TreeConfig};

/// Builds an unfitted regressor of the given class with default
/// hyper-parameters — the four-member pool of the paper's Fig. 5.
pub fn default_model(class: ModelClass) -> Box<dyn Regressor> {
    match class {
        ModelClass::Linear => Box::new(LinearRegression::with_defaults()),
        ModelClass::Knn => Box::new(KnnRegression::with_defaults()),
        ModelClass::Mlp => Box::new(MlpRegression::with_defaults()),
        ModelClass::RandomForest => Box::new(RandomForestRegression::with_defaults()),
    }
}

/// Builds the full default model pool (one model per class).
pub fn default_pool() -> Vec<Box<dyn Regressor>> {
    ModelClass::ALL.iter().map(|&c| default_model(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_covers_all_classes() {
        for class in ModelClass::ALL {
            let m = default_model(class);
            assert_eq!(m.class(), class);
            assert!(!m.is_fitted());
        }
    }

    #[test]
    fn default_pool_has_four_distinct_classes() {
        let pool = default_pool();
        assert_eq!(pool.len(), 4);
        let classes: std::collections::HashSet<_> = pool.iter().map(|m| m.class()).collect();
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn pool_models_fit_and_predict_on_shared_data() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 10.0 * x + 100.0).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        for mut model in default_pool() {
            model.fit(&data).unwrap();
            let p = model.predict(&[15.0]).unwrap();
            assert!(p.is_finite());
            assert!(p > 0.0, "{} predicted {p}", model.name());
        }
    }
}
